#include "repair/conflict.h"

#include <algorithm>

#include "chase/support.h"
#include "repair/delta_conflicts.h"
#include "util/logging.h"
#include "util/trace.h"

namespace kbrepair {

namespace {

// Distinct matched atoms, ascending — the support of a naive conflict.
std::vector<AtomId> DistinctSorted(std::vector<AtomId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace

ConflictFinder::ConflictFinder(SymbolTable* symbols,
                               const std::vector<Tgd>* tgds,
                               const std::vector<Cdd>* cdds,
                               ChaseOptions chase_options)
    : symbols_(symbols),
      tgds_(tgds),
      cdds_(cdds),
      chase_options_(chase_options) {
  KBREPAIR_CHECK(symbols != nullptr);
  KBREPAIR_CHECK(tgds != nullptr);
  KBREPAIR_CHECK(cdds != nullptr);
}

StatusOr<std::vector<Conflict>> ConflictFinder::AllConflicts(
    const FactBase& facts) const {
  ChaseEngine engine(symbols_, tgds_, /*cdds=*/nullptr, chase_options_);
  KBREPAIR_ASSIGN_OR_RETURN(ChaseResult chased, engine.Run(facts));

  trace::ScopedSpan span("conflicts.enumerate", trace::Phase::kConflictScan);
  std::vector<Conflict> conflicts;
  HomomorphismFinder finder(symbols_, &chased.facts());
  // Supports go through the canonical resolver, not fire-time
  // provenance, so they are a function of the chased base alone and
  // comparable with the incremental engine's (see chase/support.h).
  CanonicalSupportResolver support(symbols_, tgds_, &chased.facts(),
                                   chased.num_original());
  for (size_t c = 0; c < cdds_->size(); ++c) {
    finder.FindAll((*cdds_)[c].body(), [&](const Homomorphism& hom) {
      Conflict conflict;
      conflict.cdd_index = c;
      conflict.matched = hom.matched;
      conflict.support = support.Support(hom.matched);
      conflicts.push_back(std::move(conflict));
      return true;
    });
  }
  return conflicts;
}

std::vector<Conflict> ConflictFinder::NaiveConflicts(
    const FactBase& facts) const {
  trace::ScopedSpan span("conflicts.naive", trace::Phase::kConflictScan);
  std::vector<Conflict> conflicts;
  HomomorphismFinder finder(symbols_, &facts);
  for (size_t c = 0; c < cdds_->size(); ++c) {
    finder.FindAll((*cdds_)[c].body(), [&](const Homomorphism& hom) {
      Conflict conflict;
      conflict.cdd_index = c;
      conflict.matched = hom.matched;
      conflict.support = DistinctSorted(hom.matched);
      conflicts.push_back(std::move(conflict));
      return true;
    });
  }
  return conflicts;
}

std::vector<Conflict> ConflictFinder::NaiveConflictsTouching(
    const FactBase& facts, AtomId anchor) const {
  std::vector<Conflict> conflicts;
  const PredicateId anchor_pred = facts.atom(anchor).predicate;
  HomomorphismFinder finder(symbols_, &facts);
  for (size_t c = 0; c < cdds_->size(); ++c) {
    const std::vector<Atom>& body = (*cdds_)[c].body();
    // Pin each body atom of the anchor's predicate to the anchor in
    // turn. A homomorphism using the anchor at several body positions
    // would be found once per pin, so keep it only when the pin is the
    // first body position mapped to the anchor.
    for (size_t pin = 0; pin < body.size(); ++pin) {
      if (body[pin].predicate != anchor_pred) continue;
      finder.FindAllPinned(body, pin, anchor, [&](const Homomorphism& hom) {
        for (size_t j = 0; j < pin; ++j) {
          if (hom.matched[j] == anchor) return true;  // counted earlier
        }
        Conflict conflict;
        conflict.cdd_index = c;
        conflict.matched = hom.matched;
        conflict.support = DistinctSorted(hom.matched);
        conflicts.push_back(std::move(conflict));
        return true;
      });
    }
  }
  return conflicts;
}

OverlapIndicators ComputeOverlapIndicators(
    const std::vector<Conflict>& conflicts) {
  OverlapIndicators indicators;

  std::unordered_set<AtomId> atoms;
  for (const Conflict& conflict : conflicts) {
    atoms.insert(conflict.support.begin(), conflict.support.end());
  }
  indicators.atoms_in_conflicts = atoms.size();

  if (conflicts.size() < 2) return indicators;

  size_t overlap_pairs = 0;
  size_t overlap_atoms_total = 0;
  std::vector<size_t> scope(conflicts.size(), 0);
  for (size_t i = 0; i < conflicts.size(); ++i) {
    for (size_t j = i + 1; j < conflicts.size(); ++j) {
      // Supports are sorted; count the intersection size.
      const std::vector<AtomId>& a = conflicts[i].support;
      const std::vector<AtomId>& b = conflicts[j].support;
      size_t ia = 0;
      size_t ib = 0;
      size_t common = 0;
      while (ia < a.size() && ib < b.size()) {
        if (a[ia] == b[ib]) {
          ++common;
          ++ia;
          ++ib;
        } else if (a[ia] < b[ib]) {
          ++ia;
        } else {
          ++ib;
        }
      }
      if (common > 0) {
        ++overlap_pairs;
        overlap_atoms_total += common;
        ++scope[i];
        ++scope[j];
      }
    }
  }
  if (overlap_pairs > 0) {
    indicators.avg_atoms_per_overlap =
        static_cast<double>(overlap_atoms_total) /
        static_cast<double>(overlap_pairs);
  }
  size_t scope_total = 0;
  for (size_t s : scope) scope_total += s;
  indicators.avg_scope =
      static_cast<double>(scope_total) / static_cast<double>(conflicts.size());
  return indicators;
}

std::string ExplainConflict(const Conflict& conflict,
                            const std::vector<Cdd>& cdds,
                            const FactBase& facts,
                            const SymbolTable& symbols,
                            const ChaseResult* chased) {
  const Cdd& violated = cdds[conflict.cdd_index];
  std::string out = "violated constraint";
  if (!violated.label().empty()) out += " [" + violated.label() + "]";
  out += ": " + violated.ToString(symbols) + "\n";
  const std::vector<Atom>& body = cdds[conflict.cdd_index].body();
  for (size_t j = 0; j < conflict.matched.size(); ++j) {
    const AtomId id = conflict.matched[j];
    out += "  " + body[j].ToString(symbols) + "  matched  ";
    if (id < facts.size()) {
      out += facts.atom(id).ToString(symbols);
    } else if (chased != nullptr && id < chased->facts().size()) {
      out += chased->facts().atom(id).ToString(symbols) +
             "  (derived by TGD #" +
             std::to_string(chased->derivation(id).tgd_index) + ")";
    } else {
      out += "<derived atom " + std::to_string(id) + ">";
    }
    out += "\n";
  }
  out += "  supported by original facts:";
  for (AtomId id : conflict.support) {
    out += " " + facts.atom(id).ToString(symbols);
  }
  out += "\n";
  return out;
}

namespace {

// DOT string literals need quotes escaped.
std::string DotEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string ConflictHypergraphToDot(const std::vector<Conflict>& conflicts,
                                    const FactBase& facts,
                                    const SymbolTable& symbols) {
  std::string out = "graph conflict_hypergraph {\n";
  out += "  node [fontsize=10];\n";
  std::unordered_set<AtomId> atoms;
  for (size_t c = 0; c < conflicts.size(); ++c) {
    out += "  conflict" + std::to_string(c) + " [shape=box, label=\"X" +
           std::to_string(c) + " (cdd " +
           std::to_string(conflicts[c].cdd_index) + ")\"];\n";
    atoms.insert(conflicts[c].support.begin(), conflicts[c].support.end());
  }
  for (AtomId id : atoms) {
    out += "  atom" + std::to_string(id) + " [shape=ellipse, label=\"" +
           DotEscape(facts.atom(id).ToString(symbols)) + "\"];\n";
  }
  for (size_t c = 0; c < conflicts.size(); ++c) {
    for (AtomId id : conflicts[c].support) {
      out += "  conflict" + std::to_string(c) + " -- atom" +
             std::to_string(id) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

ConflictTracker::ConflictTracker(const ConflictFinder* finder)
    : finder_(finder) {
  KBREPAIR_CHECK(finder != nullptr);
}

void ConflictTracker::Initialize(const FactBase& facts) {
  conflicts_.clear();
  by_atom_.clear();
  next_id_ = 0;
  for (Conflict& conflict : finder_->NaiveConflicts(facts)) {
    AddConflict(std::move(conflict));
  }
}

void ConflictTracker::InitializeFromCensus(
    const std::vector<Conflict>& census) {
  conflicts_.clear();
  by_atom_.clear();
  next_id_ = 0;
  for (const Conflict& conflict : census) AddConflict(conflict);
}

void ConflictTracker::OnFixApplied(const FactBase& facts, AtomId atom) {
  // Drop every conflict whose support contains the modified atom.
  for (uint64_t id : ConflictsTouching(atom)) RemoveConflict(id);
  // Re-evaluate only CDDs related to the atom, anchored at it. A
  // re-found conflict cannot coincide with a surviving one: every
  // re-found homomorphism uses `atom`, and all such conflicts were just
  // removed. AddConflict asserts this in debug builds.
  for (Conflict& conflict : finder_->NaiveConflictsTouching(facts, atom)) {
    AddConflict(std::move(conflict));
  }
}

std::vector<Conflict> ConflictTracker::CanonicalConflicts(
    size_t num_original) const {
  std::vector<Conflict> out;
  out.reserve(conflicts_.size());
  for (const auto& [id, conflict] : conflicts_) out.push_back(conflict);
  CanonicalizeConflicts(out, num_original);
  return out;
}

std::vector<uint64_t> ConflictTracker::ConflictsTouching(AtomId atom) const {
  auto it = by_atom_.find(atom);
  if (it == by_atom_.end()) return {};
  return std::vector<uint64_t>(it->second.begin(), it->second.end());
}

size_t ConflictTracker::NumConflictsTouching(AtomId atom) const {
  auto it = by_atom_.find(atom);
  return it == by_atom_.end() ? 0 : it->second.size();
}

void ConflictTracker::AddConflict(Conflict conflict) {
#ifndef NDEBUG
  for (const auto& [existing_id, existing] : conflicts_) {
    KBREPAIR_DCHECK(!existing.SameAs(conflict))
        << "duplicate naive conflict added for CDD "
        << conflict.cdd_index;
  }
#endif
  const uint64_t id = next_id_++;
  for (AtomId atom : conflict.support) by_atom_[atom].insert(id);
  conflicts_.emplace(id, std::move(conflict));
}

void ConflictTracker::RemoveConflict(uint64_t id) {
  auto it = conflicts_.find(id);
  KBREPAIR_CHECK(it != conflicts_.end());
  for (AtomId atom : it->second.support) {
    auto atom_it = by_atom_.find(atom);
    KBREPAIR_CHECK(atom_it != by_atom_.end());
    atom_it->second.erase(id);
    if (atom_it->second.empty()) by_atom_.erase(atom_it);
  }
  conflicts_.erase(it);
}

}  // namespace kbrepair
