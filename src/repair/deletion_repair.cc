#include "repair/deletion_repair.h"

#include <algorithm>
#include <unordered_map>

#include "repair/conflict.h"
#include "repair/consistency.h"
#include "util/logging.h"

namespace kbrepair {

namespace {

// Builds the fact base containing the kept atoms only.
FactBase Subset(const FactBase& facts, const std::vector<bool>& kept) {
  FactBase subset;
  for (AtomId id = 0; id < facts.size(); ++id) {
    if (kept[id]) subset.Add(facts.atom(id));
  }
  return subset;
}

}  // namespace

size_t DeletionRepair::NumKept() const {
  size_t count = 0;
  for (bool k : kept) count += k ? 1 : 0;
  return count;
}

FactBase DeletionRepair::Materialize(const FactBase& facts) const {
  KBREPAIR_CHECK_EQ(kept.size(), facts.size());
  return Subset(facts, kept);
}

StatusOr<DeletionRepair> GreedyDeletionRepair(KnowledgeBase& kb,
                                              uint64_t seed) {
  (void)seed;  // deterministic tie-breaking for now
  ConsistencyChecker checker(&kb.symbols(), &kb.tgds(), &kb.cdds());
  ConflictFinder finder(&kb.symbols(), &kb.tgds(), &kb.cdds());

  DeletionRepair repair;
  repair.kept.assign(kb.facts().size(), true);

  // Phase 1: knock out the most conflict-laden atom until consistent.
  // We recompute conflicts on the surviving subset; ids must be mapped
  // back, so track the survivors' original ids alongside.
  while (true) {
    FactBase subset;
    std::vector<AtomId> original_id;
    for (AtomId id = 0; id < kb.facts().size(); ++id) {
      if (repair.kept[id]) {
        subset.Add(kb.facts().atom(id));
        original_id.push_back(id);
      }
    }
    KBREPAIR_ASSIGN_OR_RETURN(const std::vector<Conflict> conflicts,
                              finder.AllConflicts(subset));
    if (conflicts.empty()) break;

    std::unordered_map<AtomId, size_t> degree;
    for (const Conflict& conflict : conflicts) {
      for (AtomId id : conflict.support) ++degree[id];
    }
    AtomId victim = 0;
    size_t best = 0;
    for (AtomId id = 0; id < subset.size(); ++id) {
      auto it = degree.find(id);
      const size_t d = it == degree.end() ? 0 : it->second;
      if (d > best) {
        best = d;
        victim = id;
      }
    }
    KBREPAIR_CHECK_GT(best, 0u);
    repair.kept[original_id[victim]] = false;
  }

  // Phase 2: maximality — try to re-add deleted atoms one by one.
  for (AtomId id = 0; id < kb.facts().size(); ++id) {
    if (repair.kept[id]) continue;
    repair.kept[id] = true;
    KBREPAIR_ASSIGN_OR_RETURN(
        const bool consistent,
        checker.IsConsistentOpt(Subset(kb.facts(), repair.kept)));
    if (!consistent) repair.kept[id] = false;
  }
  return repair;
}

StatusOr<std::vector<DeletionRepair>> AllDeletionRepairs(
    KnowledgeBase& kb, size_t max_atoms) {
  const size_t n = kb.facts().size();
  if (n > max_atoms) {
    return Status::InvalidArgument(
        "AllDeletionRepairs is exponential; fact base exceeds max_atoms");
  }
  ConsistencyChecker checker(&kb.symbols(), &kb.tgds(), &kb.cdds());

  // Enumerate subsets by decreasing size; keep the consistent ones not
  // dominated by an already-kept (larger or incomparable) repair.
  std::vector<uint64_t> consistent_masks;
  for (uint64_t mask = (uint64_t{1} << n); mask-- > 0;) {
    std::vector<bool> kept(n, false);
    for (size_t i = 0; i < n; ++i) kept[i] = (mask >> i) & 1;
    KBREPAIR_ASSIGN_OR_RETURN(
        const bool consistent,
        checker.IsConsistentOpt(Subset(kb.facts(), kept)));
    if (!consistent) continue;
    bool dominated = false;
    for (uint64_t kept_mask : consistent_masks) {
      if ((mask & kept_mask) == mask && mask != kept_mask) {
        dominated = true;
        break;
      }
    }
    if (!dominated) consistent_masks.push_back(mask);
  }

  std::vector<DeletionRepair> repairs;
  for (uint64_t mask : consistent_masks) {
    DeletionRepair repair;
    repair.kept.assign(n, false);
    for (size_t i = 0; i < n; ++i) {
      repair.kept[i] = (mask >> i) & 1;
    }
    repairs.push_back(std::move(repair));
  }
  return repairs;
}

RetentionMetrics MetricsForDeletion(const FactBase& facts,
                                    const DeletionRepair& repair) {
  RetentionMetrics metrics;
  metrics.atoms_original = facts.size();
  metrics.values_original = facts.NumPositions();
  for (AtomId id = 0; id < facts.size(); ++id) {
    if (repair.kept[id]) {
      ++metrics.atoms_kept;
      metrics.values_kept += static_cast<size_t>(facts.atom(id).arity());
    }
  }
  return metrics;
}

RetentionMetrics MetricsForUpdate(const FactBase& facts,
                                  const FactBase& updated) {
  KBREPAIR_CHECK_EQ(facts.size(), updated.size());
  RetentionMetrics metrics;
  metrics.atoms_original = facts.size();
  metrics.atoms_kept = facts.size();  // update repairs keep every atom
  metrics.values_original = facts.NumPositions();
  for (AtomId id = 0; id < facts.size(); ++id) {
    const Atom& before = facts.atom(id);
    const Atom& after = updated.atom(id);
    for (int arg = 0; arg < before.arity(); ++arg) {
      if (before.args[static_cast<size_t>(arg)] ==
          after.args[static_cast<size_t>(arg)]) {
        ++metrics.values_kept;
      }
    }
  }
  return metrics;
}

}  // namespace kbrepair
