// Repair session reports: a markdown summary of an inquiry, for the
// audit trail interactive data curation implies. Combines the before
// state, the dialogue (from an optional transcript), the applied fixes
// as a before/after diff, and the effort metrics the paper's evaluation
// tracks (questions, delays, conflicts resolved).

#ifndef KBREPAIR_REPAIR_REPORT_H_
#define KBREPAIR_REPAIR_REPORT_H_

#include <string>

#include "repair/inquiry.h"
#include "repair/session_log.h"
#include "rules/knowledge_base.h"

namespace kbrepair {

struct ReportOptions {
  // Cap on per-section listings (facts, fixes) so reports over large KBs
  // stay readable; 0 = unlimited.
  size_t max_listed = 50;
  // Include the full question/answer dialogue (needs a transcript).
  bool include_dialogue = true;
};

// Renders a markdown report of `result` obtained on `kb` (the *original*
// knowledge base the engine ran on). `transcript` may be null.
std::string GenerateRepairReport(const KnowledgeBase& kb,
                                 const InquiryResult& result,
                                 const SessionTranscript* transcript,
                                 const ReportOptions& options = {});

}  // namespace kbrepair

#endif  // KBREPAIR_REPAIR_REPORT_H_
