#include "repair/report.h"

#include "util/stats.h"

namespace kbrepair {

namespace {

std::string Pluralize(size_t n, const char* noun) {
  return std::to_string(n) + " " + noun + (n == 1 ? "" : "s");
}

}  // namespace

std::string GenerateRepairReport(const KnowledgeBase& kb,
                                 const InquiryResult& result,
                                 const SessionTranscript* transcript,
                                 const ReportOptions& options) {
  const SymbolTable& symbols = kb.symbols();
  std::string out = "# Repair session report\n\n";

  // --- Summary.
  out += "## Summary\n\n";
  out += "- knowledge base: " + Pluralize(kb.facts().size(), "fact") +
         ", " + Pluralize(kb.tgds().size(), "TGD") + ", " +
         Pluralize(kb.cdds().size(), "CDD") + "\n";
  out += "- initial conflicts: " + std::to_string(result.initial_conflicts) +
         " (" + std::to_string(result.initial_naive_conflicts) +
         " visible without the chase)\n";
  out += "- questions asked: " + std::to_string(result.num_questions()) +
         "\n";
  if (result.num_questions() > 0) {
    out += "- conflicts resolved per question: " +
           FormatDouble(result.ConflictsPerQuestion(), 2) + "\n";
    out += "- mean / max question delay: " +
           FormatDouble(result.MeanDelaySeconds() * 1e3, 2) + " ms / " +
           FormatDouble(result.MaxDelaySeconds() * 1e3, 2) + " ms\n";
  }
  if (result.propagated_positions > 0) {
    out += "- positions frozen by propagation: " +
           std::to_string(result.propagated_positions) + "\n";
  }
  out += "\n";

  // --- Applied fixes as a before/after diff.
  out += "## Applied fixes\n\n";
  if (result.applied_fixes.empty()) {
    out += "(none — the knowledge base was already consistent)\n\n";
  } else {
    size_t listed = 0;
    for (const Fix& fix : result.applied_fixes) {
      if (options.max_listed != 0 && listed++ >= options.max_listed) {
        out += "- … " +
               std::to_string(result.applied_fixes.size() - listed + 1) +
               " more\n";
        break;
      }
      const Atom& before = kb.facts().atom(fix.atom);
      const Atom& after = result.facts.atom(fix.atom);
      out += "- `" + before.ToString(symbols) + "` → `" +
             after.ToString(symbols) + "` (argument " +
             std::to_string(fix.arg + 1) + " := " +
             symbols.term_name(fix.value) +
             (symbols.IsNull(fix.value) ? ", an unknown value" : "") +
             ")\n";
    }
    out += "\n";
  }

  // --- Dialogue.
  if (options.include_dialogue && transcript != nullptr &&
      !transcript->empty()) {
    out += "## Dialogue\n\n```\n" +
           transcript->Render(symbols, kb.facts()) + "```\n\n";
  }

  // --- Per-phase breakdown.
  size_t phase1 = 0;
  size_t phase2 = 0;
  for (const QuestionRecord& record : result.records) {
    if (record.phase == 1) {
      ++phase1;
    } else {
      ++phase2;
    }
  }
  out += "## Phases\n\n";
  out += "- phase one (conflicts visible in F): " +
         Pluralize(phase1, "question") + "\n";
  out += "- phase two (conflicts surfaced by the chase): " +
         Pluralize(phase2, "question") + "\n";
  return out;
}

}  // namespace kbrepair
