// Learning from user choices — the paper's second future-work direction
// ("learning from provided user choices in the questioning strategies",
// Section 7).
//
// The model observes every answered question and estimates the user's
// choice propensity along two cheap, smoothed dimensions:
//   * value kind — does this user resolve errors with fresh nulls
//     ("unknown") or with concrete active-domain constants?
//   * position habit — how often has a fix at this (predicate, argument)
//     been chosen when offered?
// Propensities use Laplace smoothing, so the model is usable from the
// first question on.
//
// The opti-learn strategy (Strategy::kOptiLearn) is opti-mcd plus this
// model: generated questions are re-ordered so the fixes the user is
// most likely to pick come first. Soundness is untouched — the fix set
// is the same, only its presentation order changes — but the user's
// scanning effort (the index of the chosen fix) drops over the session
// for any user with stable preferences, which is what the ext_learning
// benchmark measures.

#ifndef KBREPAIR_REPAIR_PREFERENCE_MODEL_H_
#define KBREPAIR_REPAIR_PREFERENCE_MODEL_H_

#include <cstdint>
#include <unordered_map>

#include "kb/fact_base.h"
#include "kb/symbol_table.h"
#include "repair/question.h"

namespace kbrepair {

class PreferenceModel {
 public:
  explicit PreferenceModel(const SymbolTable* symbols);

  // Records an answered question (chosen_index < question.fixes.size()).
  void Observe(const Question& question, size_t chosen_index,
               const FactBase& facts);

  // Estimated propensity of the user choosing `fix`, in (0, 1); the
  // product of the smoothed kind- and position-propensities.
  double Propensity(const Fix& fix, const FactBase& facts) const;

  // Stable-sorts the question's fixes by descending propensity.
  void OrderQuestion(Question& question, const FactBase& facts) const;

  size_t observations() const { return observations_; }

  // Smoothed probability that this user resolves with a fresh null.
  double NullPreference() const;

 private:
  struct PositionStats {
    size_t offered = 0;
    size_t chosen = 0;
  };

  static uint64_t Key(PredicateId pred, int arg) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(pred)) << 8) |
           static_cast<uint64_t>(static_cast<uint32_t>(arg) & 0xff);
  }

  const SymbolTable* symbols_;
  std::unordered_map<uint64_t, PositionStats> position_stats_;
  size_t null_chosen_ = 0;
  size_t constant_chosen_ = 0;
  size_t observations_ = 0;
};

}  // namespace kbrepair

#endif  // KBREPAIR_REPAIR_PREFERENCE_MODEL_H_
