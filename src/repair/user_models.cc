#include "repair/user_models.h"

#include "util/logging.h"

namespace kbrepair {

NoisyOracleUser::NoisyOracleUser(std::vector<Fix> r_fix,
                                 const SymbolTable* symbols,
                                 double reliability, uint64_t seed)
    : remaining_(std::move(r_fix)),
      symbols_(symbols),
      reliability_(reliability),
      rng_(seed) {
  KBREPAIR_CHECK(symbols != nullptr);
  KBREPAIR_CHECK(reliability >= 0.0 && reliability <= 1.0);
}

std::optional<size_t> NoisyOracleUser::OracleChoice(
    const Question& question, const InquiryView& view) {
  for (size_t i = 0; i < question.fixes.size(); ++i) {
    const Fix& offered = question.fixes[i];
    for (size_t j = 0; j < remaining_.size(); ++j) {
      const Fix& target = remaining_[j];
      if (offered.atom != target.atom || offered.arg != target.arg) {
        continue;
      }
      const bool exact = offered.value == target.value;
      const bool both_null = symbols_->IsNull(offered.value) &&
                             symbols_->IsNull(target.value) &&
                             view.facts != nullptr &&
                             view.facts->TermUseCount(offered.value) == 0;
      if (exact || both_null) {
        remaining_.erase(remaining_.begin() +
                         static_cast<std::ptrdiff_t>(j));
        return i;
      }
    }
  }
  return std::nullopt;
}

std::optional<size_t> NoisyOracleUser::ChooseFix(const Question& question,
                                                 const InquiryView& view) {
  if (question.fixes.empty()) return std::nullopt;
  if (rng_.Bernoulli(reliability_)) {
    const std::optional<size_t> choice = OracleChoice(question, view);
    if (choice.has_value()) {
      ++faithful_answers_;
      return choice;
    }
    // The target repair has drifted out of reach (earlier noise); fall
    // through to a random answer rather than refusing.
  }
  ++noisy_answers_;
  return rng_.UniformIndex(question.fixes.size());
}

ConservativeUser::ConservativeUser(const SymbolTable* symbols)
    : symbols_(symbols) {
  KBREPAIR_CHECK(symbols != nullptr);
}

std::optional<size_t> ConservativeUser::ChooseFix(const Question& question,
                                                  const InquiryView& view) {
  (void)view;
  if (question.fixes.empty()) return std::nullopt;
  for (size_t i = 0; i < question.fixes.size(); ++i) {
    if (symbols_->IsNull(question.fixes[i].value)) return i;
  }
  return 0;
}

DecisiveUser::DecisiveUser(const SymbolTable* symbols, uint64_t seed)
    : symbols_(symbols), rng_(seed) {
  KBREPAIR_CHECK(symbols != nullptr);
}

std::optional<size_t> DecisiveUser::ChooseFix(const Question& question,
                                              const InquiryView& view) {
  (void)view;
  if (question.fixes.empty()) return std::nullopt;
  std::vector<size_t> constant_fixes;
  for (size_t i = 0; i < question.fixes.size(); ++i) {
    if (!symbols_->IsNull(question.fixes[i].value)) {
      constant_fixes.push_back(i);
    }
  }
  if (!constant_fixes.empty()) return rng_.Choose(constant_fixes);
  return rng_.UniformIndex(question.fixes.size());
}

TranscriptUser::TranscriptUser(User* inner, SessionTranscript* transcript)
    : inner_(inner), transcript_(transcript) {
  KBREPAIR_CHECK(inner != nullptr);
  KBREPAIR_CHECK(transcript != nullptr);
}

std::optional<size_t> TranscriptUser::ChooseFix(const Question& question,
                                                const InquiryView& view) {
  const std::optional<size_t> choice = inner_->ChooseFix(question, view);
  if (choice.has_value()) transcript_->Record(question, *choice);
  return choice;
}

}  // namespace kbrepair
