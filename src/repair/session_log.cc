#include "repair/session_log.h"

#include "util/logging.h"

namespace kbrepair {

void SessionTranscript::Record(const Question& question,
                               size_t chosen_index) {
  KBREPAIR_CHECK_LT(chosen_index, question.fixes.size());
  entries_.push_back(TranscriptEntry{question, chosen_index});
}

std::string SessionTranscript::Render(const SymbolTable& symbols,
                                      const FactBase& original_facts) const {
  std::string out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const TranscriptEntry& entry = entries_[i];
    const Fix& chosen = entry.question.fixes[entry.chosen_index];
    out += "Q" + std::to_string(i + 1) + " (cdd " +
           std::to_string(entry.question.source_cdd) + ", " +
           std::to_string(entry.question.fixes.size()) +
           " fixes): chose [" + std::to_string(entry.chosen_index) + "] " +
           chosen.ToString(symbols, original_facts) + "\n";
  }
  return out;
}

namespace {

const char* TermKindTag(TermKind kind) {
  switch (kind) {
    case TermKind::kConstant:
      return "constant";
    case TermKind::kVariable:
      return "variable";
    case TermKind::kNull:
      return "null";
  }
  return "constant";
}

StatusOr<TermKind> TermKindFromTag(const std::string& tag) {
  if (tag == "constant") return TermKind::kConstant;
  if (tag == "variable") return TermKind::kVariable;
  if (tag == "null") return TermKind::kNull;
  return Status::InvalidArgument("unknown term kind '" + tag + "'");
}

JsonValue FixToJson(const Fix& fix, const SymbolTable& symbols) {
  JsonValue out = JsonValue::Object();
  out.Set("atom", JsonValue::Number(static_cast<int64_t>(fix.atom)));
  out.Set("arg", JsonValue::Number(static_cast<int64_t>(fix.arg)));
  out.Set("kind", JsonValue::String(TermKindTag(symbols.term_kind(fix.value))));
  out.Set("value", JsonValue::String(symbols.term_name(fix.value)));
  return out;
}

StatusOr<Fix> FixFromJson(const JsonValue& json, SymbolTable& symbols) {
  if (!json.is_object()) {
    return Status::InvalidArgument("transcript fix must be an object");
  }
  Fix fix;
  fix.atom = static_cast<AtomId>(json.Get("atom").AsInt(-1));
  fix.arg = static_cast<int>(json.Get("arg").AsInt(-1));
  if (!json.Get("atom").is_number() || !json.Get("arg").is_number() ||
      fix.arg < 0) {
    return Status::InvalidArgument("transcript fix needs atom/arg numbers");
  }
  KBREPAIR_ASSIGN_OR_RETURN(const TermKind kind,
                            TermKindFromTag(json.Get("kind").AsString()));
  if (!json.Get("value").is_string()) {
    return Status::InvalidArgument("transcript fix needs a value string");
  }
  fix.value = symbols.InternTerm(kind, json.Get("value").AsString());
  return fix;
}

}  // namespace

JsonValue SessionTranscript::EntryToJson(const TranscriptEntry& entry,
                                         const SymbolTable& symbols) {
  JsonValue question = JsonValue::Object();
  question.Set("source_cdd", JsonValue::Number(static_cast<int64_t>(
                                 entry.question.source_cdd)));
  JsonValue positions = JsonValue::Array();
  for (const Position& p : entry.question.considered_positions) {
    JsonValue pos = JsonValue::Array();
    pos.Append(JsonValue::Number(static_cast<int64_t>(p.atom)));
    pos.Append(JsonValue::Number(static_cast<int64_t>(p.arg)));
    positions.Append(std::move(pos));
  }
  question.Set("positions", std::move(positions));
  JsonValue fixes = JsonValue::Array();
  for (const Fix& fix : entry.question.fixes) {
    fixes.Append(FixToJson(fix, symbols));
  }
  question.Set("fixes", std::move(fixes));

  JsonValue record = JsonValue::Object();
  record.Set("chosen",
             JsonValue::Number(static_cast<int64_t>(entry.chosen_index)));
  record.Set("question", std::move(question));
  return record;
}

JsonValue SessionTranscript::ToJson(const SymbolTable& symbols) const {
  JsonValue entries = JsonValue::Array();
  for (const TranscriptEntry& entry : entries_) {
    entries.Append(EntryToJson(entry, symbols));
  }
  JsonValue out = JsonValue::Object();
  out.Set("entries", std::move(entries));
  return out;
}

StatusOr<SessionTranscript> SessionTranscript::FromJson(
    const JsonValue& json, SymbolTable& symbols) {
  const JsonValue& entries = json.Get("entries");
  if (!entries.is_array()) {
    return Status::InvalidArgument(
        "transcript JSON needs an 'entries' array");
  }
  SessionTranscript transcript;
  for (size_t i = 0; i < entries.size(); ++i) {
    const JsonValue& record = entries.at(i);
    const JsonValue& question_json = record.Get("question");
    if (!record.Get("chosen").is_number() || !question_json.is_object()) {
      return Status::InvalidArgument(
          "transcript entry " + std::to_string(i) +
          " needs 'chosen' and 'question'");
    }
    Question question;
    question.source_cdd = static_cast<size_t>(
        question_json.Get("source_cdd").AsInt(0));
    const JsonValue& positions = question_json.Get("positions");
    for (size_t j = 0; j < positions.size(); ++j) {
      const JsonValue& pos = positions.at(j);
      if (!pos.is_array() || pos.size() != 2) {
        return Status::InvalidArgument(
            "transcript position must be an [atom, arg] pair");
      }
      question.considered_positions.push_back(
          Position{static_cast<AtomId>(pos.at(0).AsInt(0)),
                   static_cast<int>(pos.at(1).AsInt(0))});
    }
    const JsonValue& fixes = question_json.Get("fixes");
    if (!fixes.is_array() || fixes.size() == 0) {
      return Status::InvalidArgument(
          "transcript entry " + std::to_string(i) + " has no fixes");
    }
    for (size_t j = 0; j < fixes.size(); ++j) {
      KBREPAIR_ASSIGN_OR_RETURN(Fix fix,
                                FixFromJson(fixes.at(j), symbols));
      question.fixes.push_back(fix);
    }
    const size_t chosen =
        static_cast<size_t>(record.Get("chosen").AsInt(0));
    if (chosen >= question.fixes.size()) {
      return Status::InvalidArgument(
          "transcript entry " + std::to_string(i) +
          " chose a fix index out of range");
    }
    transcript.Record(question, chosen);
  }
  return transcript;
}

ReplayUser::ReplayUser(const SessionTranscript* transcript,
                       const SymbolTable* symbols)
    : transcript_(transcript), symbols_(symbols) {
  KBREPAIR_CHECK(transcript != nullptr);
  KBREPAIR_CHECK(symbols != nullptr);
}

bool ReplayUser::Finished() const {
  return next_entry_ == transcript_->size();
}

std::optional<size_t> ReplayUser::ChooseFix(const Question& question,
                                            const InquiryView& view) {
  if (next_entry_ >= transcript_->size()) return std::nullopt;
  const TranscriptEntry& entry = transcript_->entries()[next_entry_];
  const Fix& recorded = entry.question.fixes[entry.chosen_index];
  for (size_t i = 0; i < question.fixes.size(); ++i) {
    const Fix& offered = question.fixes[i];
    if (offered.atom != recorded.atom || offered.arg != recorded.arg) {
      continue;
    }
    const bool exact = offered.value == recorded.value;
    // A re-run mints a different fresh null for the same position; both
    // denote "unknown unique to the position".
    const bool both_fresh_nulls =
        symbols_->IsNull(offered.value) && symbols_->IsNull(recorded.value) &&
        view.facts != nullptr && view.facts->TermUseCount(offered.value) == 0;
    if (exact || both_fresh_nulls) {
      ++next_entry_;
      return i;
    }
  }
  return std::nullopt;  // divergence
}

}  // namespace kbrepair
