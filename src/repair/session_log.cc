#include "repair/session_log.h"

#include "util/logging.h"

namespace kbrepair {

void SessionTranscript::Record(const Question& question,
                               size_t chosen_index) {
  KBREPAIR_CHECK_LT(chosen_index, question.fixes.size());
  entries_.push_back(TranscriptEntry{question, chosen_index});
}

std::string SessionTranscript::Render(const SymbolTable& symbols,
                                      const FactBase& original_facts) const {
  std::string out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const TranscriptEntry& entry = entries_[i];
    const Fix& chosen = entry.question.fixes[entry.chosen_index];
    out += "Q" + std::to_string(i + 1) + " (cdd " +
           std::to_string(entry.question.source_cdd) + ", " +
           std::to_string(entry.question.fixes.size()) +
           " fixes): chose [" + std::to_string(entry.chosen_index) + "] " +
           chosen.ToString(symbols, original_facts) + "\n";
  }
  return out;
}

ReplayUser::ReplayUser(const SessionTranscript* transcript,
                       const SymbolTable* symbols)
    : transcript_(transcript), symbols_(symbols) {
  KBREPAIR_CHECK(transcript != nullptr);
  KBREPAIR_CHECK(symbols != nullptr);
}

bool ReplayUser::Finished() const {
  return next_entry_ == transcript_->size();
}

std::optional<size_t> ReplayUser::ChooseFix(const Question& question,
                                            const InquiryView& view) {
  if (next_entry_ >= transcript_->size()) return std::nullopt;
  const TranscriptEntry& entry = transcript_->entries()[next_entry_];
  const Fix& recorded = entry.question.fixes[entry.chosen_index];
  for (size_t i = 0; i < question.fixes.size(); ++i) {
    const Fix& offered = question.fixes[i];
    if (offered.atom != recorded.atom || offered.arg != recorded.arg) {
      continue;
    }
    const bool exact = offered.value == recorded.value;
    // A re-run mints a different fresh null for the same position; both
    // denote "unknown unique to the position".
    const bool both_fresh_nulls =
        symbols_->IsNull(offered.value) && symbols_->IsNull(recorded.value) &&
        view.facts != nullptr && view.facts->TermUseCount(offered.value) == 0;
    if (exact || both_fresh_nulls) {
      ++next_entry_;
      return i;
    }
  }
  return std::nullopt;  // divergence
}

}  // namespace kbrepair
