// SharedKbSnapshot: a frozen, pre-chased base KB that repair sessions
// fork from in O(delta) instead of re-parsing, re-interning, re-chasing
// and re-scanning a private copy.
//
// Building a snapshot replicates exactly the work InquiryEngine::Begin()
// performs on a cold private KB — the Π-repairability skeleton check,
// the chased conflict census, the naive census — *before* freezing the
// symbol table, so the frozen base captures the precise post-Begin state
// (including chase-minted nulls) every cold session would reach. A fork
// then adopts the stored verdicts via InquiryEngine::BeginShared() and
// the two maintained engines via their frozen prototypes:
//
//  * delta_proto    — a DeltaConflictEngine saturated over the base
//                     facts; forks adopt it and replay their own applied
//                     fixes (recovery) on top.
//  * skeleton_proto — a DeltaConflictEngine over the Π=∅ skeleton;
//                     forks adopt it and replay the frozen positions of
//                     their current Π as position rewrites (stable
//                     per-position scratch nulls make that exact).
//
// Prototype envelope: the prototypes are only kept when building them
// interned no fresh symbol (mint guard). A chase that mints fresh nulls
// — existential TGDs firing — would advance the fork's null counter
// differently from a cold session's lazy engine construction, breaking
// byte-identity; those bases simply fall back to cold per-session engine
// initialization while still sharing symbols/facts/census. Full
// (existential-free) TGD sets — the synthetic and Durum Wheat workloads —
// always keep their prototypes.

#ifndef KBREPAIR_REPAIR_KB_SNAPSHOT_H_
#define KBREPAIR_REPAIR_KB_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "kb/symbol_table.h"
#include "repair/conflict.h"
#include "repair/delta_conflicts.h"
#include "rules/knowledge_base.h"
#include "util/status.h"

namespace kbrepair {

// Precomputed Begin() state handed to InquiryEngine::BeginShared() by a
// session forked from a snapshot. All pointers must outlive the engine.
struct SharedBeginSeed {
  bool repairable = false;
  size_t initial_conflicts = 0;
  size_t initial_naive_conflicts = 0;
  const std::vector<Conflict>* naive_census = nullptr;
  // Null when the snapshot's mint guard dropped the prototypes.
  const DeltaConflictEngine* delta_proto = nullptr;
  const DeltaConflictEngine* skeleton_proto = nullptr;
};

struct SharedKbSnapshot {
  std::string label;

  // The frozen base: shared symbol/fact segments + shared rule vectors.
  KnowledgeBase kb;
  ChaseOptions chase_options;

  // Verdicts of the replicated Begin() on (kb, Π=∅).
  bool repairable = false;
  size_t initial_conflicts = 0;
  size_t initial_naive_conflicts = 0;
  std::vector<Conflict> naive_census;

  // Frozen engine prototypes (null when the mint guard fired). They
  // intern into proto_symbols — a throwaway fork of the frozen table —
  // so probing them can never pollute the shared base.
  std::unique_ptr<SymbolTable> proto_symbols;
  std::unique_ptr<DeltaConflictEngine> delta_proto;
  std::unique_ptr<DeltaConflictEngine> skeleton_proto;

  // FNV-1a over symbols, facts and rule structure; two registrations of
  // the same logical KB hash identically (registry idempotence check).
  uint64_t content_hash = 0;
  // Rough resident footprint of the shared segments, for metrics.
  size_t approx_bytes = 0;

  // O(delta) per-session KB: shares symbol/fact segments and rules.
  KnowledgeBase Fork() const { return kb.ForkShared(); }

  // The Begin() adoption bundle; valid while the snapshot lives.
  SharedBeginSeed Seed() const {
    SharedBeginSeed seed;
    seed.repairable = repairable;
    seed.initial_conflicts = initial_conflicts;
    seed.initial_naive_conflicts = initial_naive_conflicts;
    seed.naive_census = &naive_census;
    seed.delta_proto = delta_proto.get();
    seed.skeleton_proto = skeleton_proto.get();
    return seed;
  }
};

// Structural FNV-1a hash of a KB (symbols, facts, rules). Exposed so the
// base registry can verify re-registration identity.
uint64_t HashKnowledgeBase(const KnowledgeBase& kb);

// Consumes `kb`, replicates Begin(Π=∅) on it, freezes it and builds the
// engine prototypes (mint-guarded). Fails only if the replicated Begin
// itself fails (e.g. chase atom cap).
StatusOr<std::shared_ptr<const SharedKbSnapshot>> BuildSharedKbSnapshot(
    KnowledgeBase kb, std::string label, const ChaseOptions& chase_options);

}  // namespace kbrepair

#endif  // KBREPAIR_REPAIR_KB_SNAPSHOT_H_
