// The inquiry dialogue (Algorithms 3 and 4) and the questioning
// strategies of Section 5.
//
// The engine repeatedly: computes/maintains the conflicts of the working
// fact base, selects a conflict (or a position, for opti-mcd), generates a
// sound question, asks the user, applies the chosen fix and freezes its
// position. It terminates when the KB is consistent (Proposition 4.4) and,
// when the user is an oracle, outputs exactly the oracle's repair
// (Proposition 4.8).
//
// Two engine modes:
//  * two_phase = false — plain Algorithm 3: allconflicts(K) is recomputed
//    on the chased base before every question.
//  * two_phase = true  — Algorithm 4: phase one resolves *naive* conflicts
//    (visible without chasing) with incremental maintenance
//    (UPDATECONFLICTS); phase two runs the ⊥-detecting chase and resolves
//    the conflicts it uncovers, projected onto the original facts through
//    chase provenance.
//
// Strategies (Section 5):
//  * random    — random conflict, question on all of its positions;
//  * opti-join — random conflict, question on join/resolving positions;
//  * opti-prop — opti-join plus propagation: unchosen question positions
//    that participate in no other conflict are frozen into Π;
//  * opti-mcd  — conflict-hypergraph ranking: ask about the position
//    contained in the most conflicts.

#ifndef KBREPAIR_REPAIR_INQUIRY_H_
#define KBREPAIR_REPAIR_INQUIRY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "repair/conflict.h"
#include "repair/consistency.h"
#include "repair/fix.h"
#include "repair/kb_snapshot.h"
#include "repair/preference_model.h"
#include "repair/question.h"
#include "repair/repairability.h"
#include "repair/user.h"
#include "rules/knowledge_base.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/trace.h"

namespace kbrepair {

class IncrementalChase;  // chase/incremental_chase.h

enum class Strategy {
  kRandom,
  kOptiJoin,
  kOptiProp,
  kOptiMcd,
  // opti-mcd plus a learned user-preference model that re-orders each
  // question's fixes by choice propensity (Section 7 future work; see
  // repair/preference_model.h). Same fix sets, same soundness — only the
  // presentation order adapts to the user.
  kOptiLearn,
};

// "random", "opti-join", "opti-prop", "opti-mcd", "opti-learn".
const char* StrategyName(Strategy strategy);

// How chased conflicts (phase two / Algorithm 3) are computed.
enum class ConflictEngineKind {
  // Re-chase the working base and re-enumerate every CDD body before
  // each question. The reference implementation and test oracle.
  kScratch,
  // Delta-chase conflict engine (repair/delta_conflicts.h): a maintained
  // chased base with provenance-guided retraction plus index-anchored
  // conflict maintenance. Produces the same dialogue per-seed for KBs
  // whose conflict-feeding TGDs are full (see DESIGN.md, "Delta-chase
  // invariants"); the differential suite enforces it.
  kIncremental,
};

// "scratch" / "incremental".
const char* ConflictEngineName(ConflictEngineKind kind);

// What the per-question conflicts_remaining field records.
enum class ConvergenceRecording {
  // Cheap default: the naive-conflict tracker's size (phase one only).
  kOff,
  // allconflicts(K) — chase included — recomputed after every answer.
  // The omniscient convergence series. Costly; leave off for delay
  // measurements.
  kTotalConflicts,
  // Conflicts as the two-phase algorithm *discovers* them: the naive
  // tracker during phase one, the full chased census in phase two. This
  // is the counting behind the paper's Figure 4(b) fluctuations — the
  // count jumps up when the chase starts surfacing conflicts that were
  // invisible to phase one.
  kDiscoveredConflicts,
};

struct InquiryOptions {
  Strategy strategy = Strategy::kOptiMcd;

  // Algorithm 4 (two-phase + optimized primitives) vs Algorithm 3.
  bool two_phase = true;

  // Seed for conflict selection and tie-breaking.
  uint64_t seed = 1;

  // Safety valve; exceeding it returns Internal.
  size_t max_questions = 1000000;

  ConvergenceRecording record_convergence = ConvergenceRecording::kOff;

  // Scratch recomputation vs the maintained delta-chase engine. With
  // kIncremental, the non-mcd phase-two rounds select from the full
  // maintained census instead of CHECKCONSISTENCY-OPT's first violation
  // (the census is already paid for).
  ConflictEngineKind conflict_engine = ConflictEngineKind::kScratch;

  ChaseOptions chase_options;
};

// Everything measured about one question/answer round.
struct QuestionRecord {
  int phase = 1;                  // 1 = naive conflicts, 2 = chase
  // Engine compute time to produce the question: the maintenance that
  // followed the previous answer plus this question's generation. Time
  // the dialogue sat parked between stepwise calls (a service session
  // waiting for the wire, a human thinking) is *not* included — this is
  // the algorithmic delay Prop. 4.10 bounds, not wall time since the
  // last answer.
  double delay_seconds = 0.0;
  // Where delay_seconds went, by pipeline phase (chase, question
  // generation, ...). Inclusive attribution: a chase running under
  // question generation counts in both, so the components can exceed
  // delay_seconds.
  trace::PhaseTotals phases;
  size_t question_size = 0;       // number of fixes offered
  size_t num_positions = 0;       // positions the question covered
  Fix chosen;                     // the user's answer
  // Index of the chosen fix within the question — the user's scanning
  // effort; what opti-learn's re-ordering drives down.
  size_t chosen_index = 0;
  // Conflicts remaining after the fix: naive-tracker count in phase one
  // (total chase conflicts when record_convergence is set).
  size_t conflicts_remaining = 0;
};

struct InquiryResult {
  FactBase facts;                 // the repaired fact base
  std::vector<Fix> applied_fixes;
  std::vector<QuestionRecord> records;
  // allconflicts(K) on the *initial* KB (used by the conflicts-per-
  // question metric of Figure 2).
  size_t initial_conflicts = 0;
  size_t initial_naive_conflicts = 0;
  double total_seconds = 0.0;

  // Engine instrumentation:
  // positions frozen by opti-prop's propagation (0 for other strategies);
  size_t propagated_positions = 0;
  // Π-REPOPT outcomes across all sound-question filtering;
  size_t repairability_fast_paths = 0;
  size_t repairability_full_checks = 0;
  // candidate fixes enumerated / filtered out by Algorithm 2.
  size_t question_candidates = 0;
  size_t question_filtered = 0;
  // Times the incremental conflict engine was demoted to scratch after a
  // maintenance error or invariant violation (graceful degradation; 0 or
  // 1 per dialogue in practice — demotion is sticky).
  size_t engine_fallbacks = 0;

  size_t num_questions() const { return records.size(); }
  double ConflictsPerQuestion() const {
    return records.empty() ? 0.0
                           : static_cast<double>(initial_conflicts) /
                                 static_cast<double>(records.size());
  }
  double MeanDelaySeconds() const;
  double MaxDelaySeconds() const;
};

class InquiryEngine {
 public:
  // `kb` supplies the rules and symbol table (mutated: fresh nulls) and
  // the starting facts, which are copied — the original KB is not
  // repaired in place.
  InquiryEngine(KnowledgeBase* kb, InquiryOptions options);
  ~InquiryEngine();

  InquiryEngine(InquiryEngine&&) noexcept;
  InquiryEngine& operator=(InquiryEngine&&) noexcept;

  // INQUIRY(K, Π): runs the dialogue to consistency. Fails with
  // FailedPrecondition if K is not Π-repairable for the initial Π or the
  // user declines to answer; Internal on safety-valve trips.
  //
  // Implemented on top of the stepwise API below, so a driven session
  // (service, remote user) and a blocking Run produce bit-identical
  // repairs for the same options and answers.
  StatusOr<InquiryResult> Run(User& user, PositionSet initial_pi = {});

  // --- Stepwise API -------------------------------------------------------
  //
  // One question/answer round is a pair of resumable calls, so a session
  // can be suspended between turns (the scaling unit of the repair
  // service):
  //
  //   engine.Begin();
  //   while (const Question* q = *engine.NextQuestion()) {
  //     size_t choice = ...;        // any out-of-process dialogue
  //     engine.Answer(choice);
  //   }
  //   InquiryResult result = *engine.Finish();

  // Starts a dialogue: checks Π-repairability, takes the initial
  // conflict census. Discards any session in progress.
  Status Begin(PositionSet initial_pi = {});

  // Begin(Π=∅) for a session whose KB was forked from a shared snapshot
  // (repair/kb_snapshot.h): adopts the precomputed repairability verdict
  // and conflict censuses instead of re-running the chases, and arms the
  // lazy engine constructors with the seed's frozen prototypes. The seed
  // and the structures it points to must outlive the session.
  Status BeginShared(const SharedBeginSeed& seed);

  // Produces (or returns the already-pending) next question. Returns
  // nullptr once the working base is consistent. Repeated calls without
  // an intervening Answer() return the same pending question.
  StatusOr<const Question*> NextQuestion();

  // Applies the `choice`-th fix of the pending question and advances the
  // state machine. FailedPrecondition if no question is pending or the
  // index is out of range.
  Status Answer(size_t choice);

  // True once Begin() has been called and Finish() has not.
  bool started() const { return step_ != nullptr; }
  // True when the dialogue reached consistency (NextQuestion == nullptr).
  bool finished() const;

  // The conflict engine actually in use: options().conflict_engine until
  // a maintenance error demotes an incremental session to kScratch (see
  // DemoteToScratch). The dialogue is unaffected by a demotion — the
  // scratch engine recomputes the same canonical census.
  ConflictEngineKind active_engine() const;

  // The working fact base of the in-progress session. Requires started().
  const FactBase& working_facts() const;
  // Rounds recorded so far (facts/result totals are filled by Finish()).
  const InquiryResult& progress() const;
  // Rendering context for the current session's questions.
  InquiryView View() const;

  // Finalizes timing/instrumentation, moves the result out and ends the
  // session. Callable mid-dialogue (e.g., when a service session is
  // evicted): the result then holds the partial repair.
  StatusOr<InquiryResult> Finish();

  // --- Debug inspection ---------------------------------------------------
  //
  // Read-only views of the suspended session for kbrepair-debug. None of
  // these consume RNG state or mint fresh symbols into the live table,
  // so a deterministic replay is unperturbed by any amount of
  // inspection. All require started().

  // 1 while phase-one naive conflicts are being resolved, 2 in phase
  // two (Algorithm 3 sessions report 1, matching QuestionRecord.phase).
  int current_phase() const;

  // The frozen-position set Π, and the subset frozen by opti-prop
  // propagation rather than by answers.
  const PositionSet& current_pi() const;
  const PositionSet& propagated_positions() const;

  // The conflict census the engine would select from at this point, in
  // canonical order: the naive tracker in phase one, the maintained
  // delta census when the incremental engine is live, otherwise a full
  // chased census computed against a *clone* of the symbol table —
  // fresh nulls minted by the inspection chase never touch the live
  // table. Conflicts are AtomId-based, so the cloned-table census is
  // identical to what the live finder would report.
  StatusOr<std::vector<Conflict>> InspectCensus() const;

  // Maintained chased base of the live incremental conflict engine, or
  // nullptr (scratch sessions, demoted sessions, engine not created
  // yet). Provenance cones can be walked off its Derivation DAG without
  // re-chasing.
  const IncrementalChase* delta_chase() const;

  // Size of the maintained Π-skeleton census when that engine is live
  // (0 = Π-repairable), nullopt otherwise.
  std::optional<size_t> skeleton_census_size() const;

 private:
  struct Session;  // per-run mutable state

  // Lazily constructs + initializes the delta conflict engine from the
  // current working facts (kIncremental only). No-op when already live.
  Status EnsureDeltaEngine(Session& session);

  // Lazily constructs + initializes the maintained Π-skeleton census
  // (kIncremental only): a second delta engine over the skeleton of the
  // current (facts, Π), whose emptiness is the Π-repairability verdict
  // question generation needs each round. Every later Π change is
  // replayed onto it as a position rewrite. No-op when already live.
  Status EnsureSkeletonEngine(Session& session);

  // Advances to the next pending question (or to done). No-op when a
  // question is already pending or the session is finished.
  Status ComputeNextQuestion(Session& session);
  Status ApplyAnswer(Session& session, size_t choice);

  // Graceful degradation: drops the maintained delta engines and flips
  // the session to the scratch reference engine, logging and counting
  // `cause`. Called on any delta-engine initialization or maintenance
  // failure other than a deadline during initialization (which is
  // retryable and propagates instead — nothing is stale yet).
  void DemoteToScratch(Session& session, const Status& cause);

  // Picks a conflict + question for the current round from `conflicts`.
  // Returns an empty question when no sound question exists (the caller
  // then unfreezes propagated positions or errors out).
  StatusOr<Question> SelectQuestion(Session& session,
                                    const std::vector<const Conflict*>& conflicts);

  // Removes every propagation-frozen position from Π. Returns true if
  // anything was unfrozen. (Status: the skeleton engine replays each
  // unfreeze as a rewrite back to the position's stable scratch null.)
  StatusOr<bool> UnfreezePropagated(Session& session);

  // Freezes pending opti-prop positions that no longer touch a conflict.
  template <typename TouchFn>
  Status ApplyPendingPropagation(Session& session, TouchFn&& touches);

  KnowledgeBase* kb_;
  InquiryOptions options_;
  std::unique_ptr<Session> step_;  // live stepwise session, if any
};

}  // namespace kbrepair

#endif  // KBREPAIR_REPAIR_INQUIRY_H_
