#include "repair/delta_conflicts.h"

#include <algorithm>

#include "chase/support.h"
#include "kb/homomorphism.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/trace.h"

namespace kbrepair {

namespace {

// Matched ids are comparable across engines only below num_original;
// derived ids all collapse to one sentinel ordered after every original.
uint64_t PatternId(AtomId id, size_t num_original) {
  return id < num_original ? static_cast<uint64_t>(id)
                           : static_cast<uint64_t>(-1);
}

}  // namespace

bool CanonicalConflictLess(const Conflict& a, const Conflict& b,
                           size_t num_original) {
  if (a.cdd_index != b.cdd_index) return a.cdd_index < b.cdd_index;
  const size_t n = std::min(a.matched.size(), b.matched.size());
  for (size_t j = 0; j < n; ++j) {
    const uint64_t pa = PatternId(a.matched[j], num_original);
    const uint64_t pb = PatternId(b.matched[j], num_original);
    if (pa != pb) return pa < pb;
  }
  if (a.matched.size() != b.matched.size()) {
    return a.matched.size() < b.matched.size();
  }
  return a.support < b.support;
}

void CanonicalizeConflicts(std::vector<Conflict>& conflicts,
                           size_t num_original) {
  std::sort(conflicts.begin(), conflicts.end(),
            [num_original](const Conflict& a, const Conflict& b) {
              return CanonicalConflictLess(a, b, num_original);
            });
}

DeltaConflictEngine::DeltaConflictEngine(SymbolTable* symbols,
                                         const std::vector<Tgd>* tgds,
                                         const std::vector<Cdd>* cdds,
                                         ChaseOptions chase_options)
    : chase_(symbols, tgds, chase_options), symbols_(symbols), cdds_(cdds) {
  KBREPAIR_CHECK(cdds != nullptr);
  for (size_t c = 0; c < cdds_->size(); ++c) {
    const std::vector<Atom>& body = (*cdds_)[c].body();
    for (size_t j = 0; j < body.size(); ++j) {
      cdd_anchor_index_[body[j].predicate].emplace_back(c, j);
    }
  }

  // Predicate-level provenance closure: body_pred -> head_pred edges,
  // then for each head predicate the backward-reachable set. Atoms of a
  // non-head predicate are never derived, so they need no entry.
  std::unordered_map<int32_t, std::unordered_set<int32_t>> feeds;
  std::unordered_set<int32_t> head_preds;
  for (const Tgd& tgd : *tgds) {
    for (const Atom& head : tgd.head()) {
      head_preds.insert(head.predicate);
      for (const Atom& body : tgd.body()) {
        feeds[body.predicate].insert(head.predicate);
      }
    }
  }
  for (const int32_t pred : head_preds) {
    std::unordered_set<int32_t>& reach = contributors_[pred];
    std::vector<int32_t> frontier{pred};
    reach.insert(pred);
    while (!frontier.empty()) {
      const int32_t q = frontier.back();
      frontier.pop_back();
      for (const auto& [p, heads] : feeds) {
        if (reach.count(p) != 0 || heads.count(q) == 0) continue;
        reach.insert(p);
        frontier.push_back(p);
      }
    }
  }
}

Status DeltaConflictEngine::Initialize(const FactBase& facts) {
  KBREPAIR_RETURN_IF_ERROR(chase_.Initialize(facts));
  conflicts_.clear();
  by_matched_.clear();
  next_id_ = 0;

  HomomorphismFinder finder(symbols_, &chase_.facts());
  CanonicalSupportResolver support(symbols_, chase_.tgds(), &chase_.facts(),
                                   chase_.num_original());
  for (size_t c = 0; c < cdds_->size(); ++c) {
    finder.FindAll((*cdds_)[c].body(), [&](const Homomorphism& hom) {
      Conflict conflict;
      conflict.cdd_index = c;
      conflict.matched = hom.matched;
      conflict.support = support.Support(hom.matched);
      AddConflict(std::move(conflict));
      return true;
    });
  }
  return Status::Ok();
}

Status DeltaConflictEngine::InitializeFromShared(
    const DeltaConflictEngine& frozen) {
  KBREPAIR_CHECK(frozen.initialized());
  chase_.AdoptShared(frozen.chase_);
  conflicts_ = frozen.conflicts_;
  by_matched_ = frozen.by_matched_;
  next_id_ = frozen.next_id_;
  return Status::Ok();
}

Status DeltaConflictEngine::OnFixApplied(AtomId atom, int arg,
                                         TermId value) {
  KBREPAIR_CHECK(initialized());
  KBREPAIR_ASSIGN_OR_RETURN(const IncrementalChase::Delta delta,
                            chase_.ApplyFix(atom, arg, value));

  // Drop conflicts whose homomorphism used a changed atom. Retracted
  // atoms are gone; homomorphisms through the rewritten atom must be
  // re-proved under its new arguments.
  DropConflictsMatching(delta.modified);
  for (AtomId id : delta.retracted) DropConflictsMatching(id);

  // Re-enumerate pinned at every changed atom: the rewritten original
  // plus each newly derived atom. (delta.added is ascending and all its
  // ids exceed the original range, so modified-first keeps the anchor
  // list sorted.)
  std::vector<AtomId> anchors;
  anchors.reserve(delta.added.size() + 1);
  anchors.push_back(delta.modified);
  anchors.insert(anchors.end(), delta.added.begin(), delta.added.end());
  CanonicalSupportResolver support(symbols_, chase_.tgds(), &chase_.facts(),
                                   chase_.num_original());
  AddConflictsAnchoredAt(anchors, support);

  std::unordered_set<int32_t> changed_preds;
  changed_preds.insert(chase_.facts().atom(delta.modified).predicate);
  for (const AtomId id : delta.retracted) {
    changed_preds.insert(chase_.facts().atom(id).predicate);
  }
  for (const AtomId id : delta.added) {
    changed_preds.insert(chase_.facts().atom(id).predicate);
  }
  RefreshDerivedSupports(changed_preds, support);
  KBREPAIR_FAILPOINT(
      "delta.corrupt",
      Status::Internal("injected delta conflict-engine divergence"));
  return VerifyInvariants();
}

Status DeltaConflictEngine::VerifyInvariants() const {
  const size_t num_original = chase_.num_original();
  for (const auto& [id, conflict] : conflicts_) {
    if (conflict.support.empty()) {
      return Status::Internal(
          "delta conflict engine invariant violated: conflict with empty "
          "support");
    }
    for (const AtomId s : conflict.support) {
      if (s >= num_original) {
        return Status::Internal(
            "delta conflict engine invariant violated: support atom outside "
            "the original range");
      }
    }
    for (const AtomId m : conflict.matched) {
      if (m >= chase_.facts().size() || !chase_.facts().alive(m)) {
        return Status::Internal(
            "delta conflict engine invariant violated: conflict matches a "
            "dead atom");
      }
      auto it = by_matched_.find(m);
      if (it == by_matched_.end() || it->second.count(id) == 0) {
        return Status::Internal(
            "delta conflict engine invariant violated: matched index out of "
            "sync with the conflict map");
      }
    }
  }
  return Status::Ok();
}

void DeltaConflictEngine::RefreshDerivedSupports(
    const std::unordered_set<int32_t>& changed_preds,
    CanonicalSupportResolver& support) {
  const size_t num_original = chase_.num_original();
  for (auto& [id, conflict] : conflicts_) {
    bool affected = false;
    for (const AtomId m : conflict.matched) {
      if (m < num_original) continue;
      auto it = contributors_.find(chase_.facts().atom(m).predicate);
      if (it == contributors_.end()) continue;
      for (const int32_t pred : changed_preds) {
        if (it->second.count(pred) != 0) {
          affected = true;
          break;
        }
      }
      if (affected) break;
    }
    if (affected) conflict.support = support.Support(conflict.matched);
  }
}

void DeltaConflictEngine::AddConflictsAnchoredAt(
    const std::vector<AtomId>& anchors, CanonicalSupportResolver& support) {
  trace::ScopedSpan span("conflicts.delta_enumerate",
                         trace::Phase::kConflictScan);
  const FactBase& chased = chase_.facts();
  HomomorphismFinder finder(symbols_, &chased);
  for (const AtomId anchor : anchors) {
    const PredicateId pred = chased.atom(anchor).predicate;
    auto it = cdd_anchor_index_.find(pred);
    if (it == cdd_anchor_index_.end()) continue;
    for (const auto& [cdd_index, pin] : it->second) {
      const std::vector<Atom>& body = (*cdds_)[cdd_index].body();
      if (body[pin].predicate != pred) continue;  // defensive; index-built
      finder.FindAllPinned(body, pin, anchor, [&](const Homomorphism& hom) {
        // Pin-first within the anchor: a homomorphism using the anchor
        // at several body positions is enumerated once per pin.
        for (size_t j = 0; j < pin; ++j) {
          if (hom.matched[j] == anchor) return true;
        }
        // Min-anchor across anchors: a homomorphism using several
        // changed atoms is kept only at the smallest one.
        for (const AtomId other : anchors) {
          if (other >= anchor) break;  // anchors ascending
          for (const AtomId m : hom.matched) {
            if (m == other) return true;
          }
        }
        Conflict conflict;
        conflict.cdd_index = cdd_index;
        conflict.matched = hom.matched;
        conflict.support = support.Support(hom.matched);
        AddConflict(std::move(conflict));
        return true;
      });
    }
  }
}

void DeltaConflictEngine::AddConflict(Conflict conflict) {
#ifndef NDEBUG
  // A newly enumerated homomorphism must be genuinely new (see the
  // header's dedup argument); SameAs is the identity that must not
  // collide.
  for (const auto& [id, live] : conflicts_) {
    KBREPAIR_DCHECK(!live.SameAs(conflict));
  }
#endif
  const uint64_t id = next_id_++;
  for (AtomId m : conflict.matched) by_matched_[m].insert(id);
  conflicts_.emplace(id, std::move(conflict));
}

void DeltaConflictEngine::DropConflictsMatching(AtomId atom) {
  auto it = by_matched_.find(atom);
  if (it == by_matched_.end()) return;
  const std::vector<uint64_t> ids(it->second.begin(), it->second.end());
  for (const uint64_t id : ids) {
    auto conflict_it = conflicts_.find(id);
    KBREPAIR_CHECK(conflict_it != conflicts_.end());
    for (AtomId m : conflict_it->second.matched) {
      auto m_it = by_matched_.find(m);
      if (m_it == by_matched_.end()) continue;
      m_it->second.erase(id);
      if (m_it->second.empty()) by_matched_.erase(m_it);
    }
    conflicts_.erase(conflict_it);
  }
}

std::vector<Conflict> DeltaConflictEngine::CanonicalConflicts() const {
  std::vector<Conflict> out;
  out.reserve(conflicts_.size());
  for (const auto& [id, conflict] : conflicts_) out.push_back(conflict);
  CanonicalizeConflicts(out, chase_.num_original());
  // Drops the last canonical conflict when armed. Only the incremental
  // engine runs through here, so arming this diverges its dialogue from
  // the scratch engine's at a deterministic step — the fault drill for
  // kbrepair-debug --diff-engines.
  if (failpoint::ShouldFail("delta.census_drop") && !out.empty()) {
    out.pop_back();
  }
  return out;
}

std::vector<Conflict> DeltaConflictEngine::ConflictsUsingSupport(
    AtomId atom) const {
  std::vector<Conflict> out;
  for (const auto& [id, conflict] : conflicts_) {
    if (std::binary_search(conflict.support.begin(), conflict.support.end(),
                           atom)) {
      out.push_back(conflict);
    }
  }
  CanonicalizeConflicts(out, chase_.num_original());
  return out;
}

}  // namespace kbrepair
