#include "repair/question.h"

#include <algorithm>

#include "util/logging.h"

namespace kbrepair {

QuestionGenerator::QuestionGenerator(
    SymbolTable* symbols, const RepairabilityChecker* repairability)
    : symbols_(symbols), repairability_(repairability) {
  KBREPAIR_CHECK(symbols != nullptr);
  KBREPAIR_CHECK(repairability != nullptr);
}

std::vector<Position> QuestionGenerator::RetrievePositions(
    const FactBase& facts, const Conflict& conflict,
    const std::vector<Cdd>& cdds, PositionSelection selection) const {
  std::vector<Position> positions;

  // Detect whether the conflict's homomorphism lies entirely inside the
  // original fact base. Matched ids of a chase conflict refer to Cl(F);
  // ids below |F| coincide with original atoms.
  bool naive = true;
  for (AtomId id : conflict.matched) naive = naive && id < facts.size();

  if (naive && selection == PositionSelection::kResolvingPositions) {
    // Join positions of the matched atoms, per CDD body structure. A
    // position is resolving when the CDD term it matches is a join
    // variable or a constant: rewriting it can break the homomorphism,
    // whereas a lone variable simply rebinds (Section 5, opti-join).
    const Cdd& cdd = cdds[conflict.cdd_index];
    for (size_t j = 0; j < conflict.matched.size(); ++j) {
      for (int arg : cdd.resolving_positions(j)) {
        positions.push_back(Position{conflict.matched[j], arg});
      }
    }
  } else {
    // All positions of the (original-)support atoms. This covers both
    // the random strategy and GENERATEQUESTION-CHASE, which projects a
    // chase-level violation onto the contributing original facts.
    for (AtomId id : conflict.support) {
      const int arity = facts.atom(id).arity();
      for (int arg = 0; arg < arity; ++arg) {
        positions.push_back(Position{id, arg});
      }
    }
  }
  std::sort(positions.begin(), positions.end());
  positions.erase(std::unique(positions.begin(), positions.end()),
                  positions.end());
  return positions;
}

StatusOr<Question> QuestionGenerator::SoundQuestion(
    const FactBase& facts, const PositionSet& pi, const Conflict& conflict,
    const std::vector<Cdd>& cdds, PositionSelection selection,
    std::optional<Position> restrict_to,
    std::optional<bool> base_repairable) const {
  Question question;
  question.source_cdd = conflict.cdd_index;

  std::vector<Position> positions =
      RetrievePositions(facts, conflict, cdds, selection);
  if (restrict_to.has_value()) {
    const bool member =
        std::find(positions.begin(), positions.end(), *restrict_to) !=
        positions.end();
    positions.clear();
    if (member) positions.push_back(*restrict_to);
  }

  // Build candidate fixes: per mutable position, active-domain values
  // different from the current one, plus one fresh null.
  RepairabilityChecker::Scope scope(repairability_, facts, pi,
                                    base_repairable);
  for (const Position& position : positions) {
    if (pi.count(position) > 0) continue;
    question.considered_positions.push_back(position);
    const Atom& atom = facts.atom(position.atom);
    const TermId current = atom.args[static_cast<size_t>(position.arg)];

    std::vector<TermId> values =
        facts.ActiveDomain(atom.predicate, position.arg);
    values.erase(std::remove(values.begin(), values.end(), current),
                 values.end());
    values.push_back(symbols_->MakeFreshNull());

    for (TermId value : values) {
      const Fix fix{position.atom, position.arg, value};
      ++total_candidates_;
      KBREPAIR_ASSIGN_OR_RETURN(const bool keeps,
                                scope.FixKeepsRepairable(fix));
      if (keeps) {
        question.fixes.push_back(fix);
      } else {
        ++total_filtered_;
      }
    }
  }
  total_fast_paths_ += scope.num_fast_paths();
  total_full_checks_ += scope.num_full_checks();
  return question;
}

}  // namespace kbrepair
