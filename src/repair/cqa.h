// Consistent query answering over update repairs.
//
// The paper positions itself against Wijsen's update-repair CQA [28]:
// "finding the answers of a query in the intersection of all possible
// repairs". This module implements that semantics for the *canonical*
// family of update repairs — the ⊆-minimal repairs whose fixes commit to
// no new values, i.e., every rewritten position takes a fresh labeled
// null. These null-valued u-repairs exist for every repairable KB
// (the paper's repairability argument is exactly "change positions to
// fresh existential variables"), they are finitely many (one per minimal
// position set), and they are the least-committal repairs: any other
// u-repair makes strictly stronger value claims.
//
// CqaAnswers(Q, K) = ⋂ over all minimal null-valued u-repairs F' of the
// certain answers of Q over (F', Σ_T). An answer survives iff it holds
// no matter which minimal set of position retractions the user would
// settle on — a sound lower bound for CQA over all u-repairs w.r.t.
// constant answers (every u-repair's facts map onto some null-valued
// repair's facts position-wise... more precisely, each null-valued
// repair is dominated by the u-repairs refining its nulls, so an answer
// certain in every null-valued repair is certain in at least one member
// of every refinement family).
//
// Enumeration is exponential in the number of candidate positions and is
// intended for small KBs (max_positions caps the search); the module is
// a faithful executable semantics, not a scalable evaluator.

#ifndef KBREPAIR_REPAIR_CQA_H_
#define KBREPAIR_REPAIR_CQA_H_

#include <vector>

#include "chase/query.h"
#include "repair/fix.h"
#include "rules/knowledge_base.h"
#include "util/status.h"

namespace kbrepair {

// One minimal null-valued repair: the set of retracted positions.
struct NullRepair {
  std::vector<Position> retracted;  // sorted
};

// Enumerates all ⊆-minimal sets of positions whose replacement by fresh
// nulls restores consistency. Candidate positions are those of atoms
// involved in at least one conflict (others can never matter).
// InvalidArgument if the candidate count exceeds `max_positions`
// (default 20; the enumeration is exponential).
StatusOr<std::vector<NullRepair>> EnumerateMinimalNullRepairs(
    KnowledgeBase& kb, size_t max_positions = 20);

struct CqaResult {
  // Certain answers (constant tuples) that hold in EVERY minimal
  // null-valued repair; sorted, distinct.
  std::vector<AnswerTuple> consistent_answers;
  // Answers that hold in at least one repair but not all ("possible").
  std::vector<AnswerTuple> possible_answers;
  size_t num_repairs = 0;
};

// Evaluates `query` under the CQA semantics above. For already
// consistent KBs this degenerates to plain certain answers.
StatusOr<CqaResult> CqaAnswers(const ConjunctiveQuery& query,
                               KnowledgeBase& kb,
                               size_t max_positions = 20);

}  // namespace kbrepair

#endif  // KBREPAIR_REPAIR_CQA_H_
