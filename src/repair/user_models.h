// Extended user models — the paper's concluding future-work direction
// ("formalization of user modeling to represent several classes of users
// (from domain experts to non-experts)").
//
// Besides the core RandomUser and OracleUser (repair/user.h), this
// module provides:
//
//  * NoisyOracleUser  — a domain expert with reliability p: answers from
//    its target r-fix with probability p, otherwise like a random user.
//    At p = 1 it is an oracle; at p = 0 a random user. The user-model
//    benchmark sweeps p and measures dialogue length and how far the
//    outcome drifts from the expert's intended repair.
//  * ConservativeUser — always picks a fresh-null fix when one is
//    offered ("I know this value is wrong but not what it should be"),
//    the minimal-commitment non-expert.
//  * DecisiveUser     — prefers constant (active-domain) values over
//    nulls; the over-confident user.
//  * TranscriptUser   — decorates another user, recording every question
//    and answer into a SessionTranscript (see session_log.h) that can be
//    rendered, audited, or replayed.

#ifndef KBREPAIR_REPAIR_USER_MODELS_H_
#define KBREPAIR_REPAIR_USER_MODELS_H_

#include <vector>

#include "repair/session_log.h"
#include "repair/user.h"
#include "util/rng.h"

namespace kbrepair {

class NoisyOracleUser : public User {
 public:
  // `reliability` in [0,1]. The r-fix semantics match OracleUser.
  NoisyOracleUser(std::vector<Fix> r_fix, const SymbolTable* symbols,
                  double reliability, uint64_t seed);

  std::optional<size_t> ChooseFix(const Question& question,
                                  const InquiryView& view) override;

  // How often the user actually followed / departed from the target.
  size_t faithful_answers() const { return faithful_answers_; }
  size_t noisy_answers() const { return noisy_answers_; }

 private:
  std::optional<size_t> OracleChoice(const Question& question,
                                     const InquiryView& view);

  std::vector<Fix> remaining_;
  const SymbolTable* symbols_;
  double reliability_;
  Rng rng_;
  size_t faithful_answers_ = 0;
  size_t noisy_answers_ = 0;
};

// Picks the first fresh-null fix; falls back to the first fix.
class ConservativeUser : public User {
 public:
  explicit ConservativeUser(const SymbolTable* symbols);
  std::optional<size_t> ChooseFix(const Question& question,
                                  const InquiryView& view) override;

 private:
  const SymbolTable* symbols_;
};

// Picks a uniformly random constant-valued fix; falls back to a null.
class DecisiveUser : public User {
 public:
  DecisiveUser(const SymbolTable* symbols, uint64_t seed);
  std::optional<size_t> ChooseFix(const Question& question,
                                  const InquiryView& view) override;

 private:
  const SymbolTable* symbols_;
  Rng rng_;
};

// Records the dialogue of an inner user into a transcript.
class TranscriptUser : public User {
 public:
  // Neither pointer may be null; both must outlive this object.
  TranscriptUser(User* inner, SessionTranscript* transcript);

  std::optional<size_t> ChooseFix(const Question& question,
                                  const InquiryView& view) override;

 private:
  User* inner_;
  SessionTranscript* transcript_;
};

}  // namespace kbrepair

#endif  // KBREPAIR_REPAIR_USER_MODELS_H_
