#include "repair/kb_snapshot.h"

#include <utility>

#include "repair/repairability.h"
#include "util/logging.h"

namespace kbrepair {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void MixBytes(uint64_t& h, const void* data, size_t len) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

void MixU64(uint64_t& h, uint64_t v) { MixBytes(h, &v, sizeof(v)); }

void MixString(uint64_t& h, const std::string& s) {
  MixU64(h, s.size());
  MixBytes(h, s.data(), s.size());
}

void MixAtom(uint64_t& h, const Atom& atom) {
  MixU64(h, static_cast<uint64_t>(static_cast<uint32_t>(atom.predicate)));
  MixU64(h, atom.args.size());
  for (TermId arg : atom.args) {
    MixU64(h, static_cast<uint64_t>(static_cast<uint32_t>(arg)));
  }
}

size_t ApproxKbBytes(const KnowledgeBase& kb) {
  size_t bytes = 0;
  const SymbolTable& symbols = kb.symbols();
  for (TermId id = 0; id < static_cast<TermId>(symbols.num_terms()); ++id) {
    bytes += 48 + symbols.term_name(id).size();
  }
  const FactBase& facts = kb.facts();
  // Atom storage plus the two posting-list index families (~one entry
  // per argument position each).
  bytes += facts.size() * 48 + facts.NumPositions() * 2 * 24;
  return bytes;
}

}  // namespace

uint64_t HashKnowledgeBase(const KnowledgeBase& kb) {
  uint64_t h = kFnvOffset;
  const SymbolTable& symbols = kb.symbols();
  MixU64(h, symbols.num_terms());
  for (TermId id = 0; id < static_cast<TermId>(symbols.num_terms()); ++id) {
    MixU64(h, static_cast<uint64_t>(symbols.term_kind(id)));
    MixString(h, symbols.term_name(id));
  }
  MixU64(h, symbols.num_predicates());
  for (PredicateId id = 0;
       id < static_cast<PredicateId>(symbols.num_predicates()); ++id) {
    MixString(h, symbols.predicate_name(id));
    MixU64(h, static_cast<uint64_t>(symbols.predicate_arity(id)));
  }
  const FactBase& facts = kb.facts();
  MixU64(h, facts.size());
  for (AtomId id = 0; id < facts.size(); ++id) MixAtom(h, facts.atom(id));
  MixU64(h, kb.tgds().size());
  for (const Tgd& tgd : kb.tgds()) {
    MixU64(h, tgd.body().size());
    for (const Atom& atom : tgd.body()) MixAtom(h, atom);
    MixU64(h, tgd.head().size());
    for (const Atom& atom : tgd.head()) MixAtom(h, atom);
  }
  MixU64(h, kb.cdds().size());
  for (const Cdd& cdd : kb.cdds()) {
    MixU64(h, cdd.body().size());
    for (const Atom& atom : cdd.body()) MixAtom(h, atom);
  }
  return h;
}

StatusOr<std::shared_ptr<const SharedKbSnapshot>> BuildSharedKbSnapshot(
    KnowledgeBase kb, std::string label, const ChaseOptions& chase_options) {
  auto snapshot = std::make_shared<SharedKbSnapshot>();
  snapshot->label = std::move(label);
  snapshot->chase_options = chase_options;

  // Replicate InquiryEngine::Begin(Π=∅) on the base *before* freezing,
  // so the frozen symbol table holds exactly the terms (scratch nulls,
  // chase-minted nulls) a cold session's Begin would have interned.
  {
    RepairabilityChecker repairability(&kb.symbols(), &kb.tgds(), &kb.cdds(),
                                       chase_options);
    const PositionSet empty_pi;
    KBREPAIR_ASSIGN_OR_RETURN(
        snapshot->repairable,
        repairability.IsPiRepairable(kb.facts(), empty_pi));
    if (snapshot->repairable) {
      ConflictFinder finder(&kb.symbols(), &kb.tgds(), &kb.cdds(),
                            chase_options);
      KBREPAIR_ASSIGN_OR_RETURN(const std::vector<Conflict> initial,
                                finder.AllConflicts(kb.facts()));
      snapshot->initial_conflicts = initial.size();
      snapshot->naive_census = finder.NaiveConflicts(kb.facts());
      snapshot->initial_naive_conflicts = snapshot->naive_census.size();
    }
  }

  kb.FreezeShared();
  snapshot->content_hash = HashKnowledgeBase(kb);
  snapshot->approx_bytes = ApproxKbBytes(kb);
  snapshot->kb = std::move(kb);

  if (!snapshot->repairable) {
    return std::shared_ptr<const SharedKbSnapshot>(snapshot);
  }

  // Engine prototypes over a throwaway fork of the frozen table. The
  // mint guard drops them if saturating interned any fresh symbol (the
  // fork's null counter would then run ahead of a cold session's).
  auto proto_symbols = std::make_unique<SymbolTable>();
  proto_symbols->ForkFrom(snapshot->kb.symbols());
  const size_t term_guard = proto_symbols->num_terms();
  const KnowledgeBase& base = snapshot->kb;

  auto delta = std::make_unique<DeltaConflictEngine>(
      proto_symbols.get(), &base.tgds(), &base.cdds(), chase_options);
  Status status = delta->Initialize(base.facts());
  bool protos_ok = status.ok() && proto_symbols->num_terms() == term_guard;

  std::unique_ptr<DeltaConflictEngine> skeleton;
  if (protos_ok) {
    RepairabilityChecker repairability(proto_symbols.get(), &base.tgds(),
                                       &base.cdds(), chase_options);
    skeleton = std::make_unique<DeltaConflictEngine>(
        proto_symbols.get(), &base.tgds(), &base.cdds(), chase_options);
    status = skeleton->Initialize(
        repairability.BuildSkeleton(base.facts(), PositionSet{}));
    protos_ok = status.ok() && proto_symbols->num_terms() == term_guard;
  }

  if (protos_ok) {
    delta->FreezeShared();
    skeleton->FreezeShared();
    snapshot->proto_symbols = std::move(proto_symbols);
    snapshot->delta_proto = std::move(delta);
    snapshot->skeleton_proto = std::move(skeleton);
  }
  return std::shared_ptr<const SharedKbSnapshot>(snapshot);
}

}  // namespace kbrepair
