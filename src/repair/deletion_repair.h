// Deletion-based repairing — the baseline the paper argues against
// (Examples 1.1–1.3): restore consistency by removing whole atoms
// instead of updating positions.
//
// A deletion repair is a maximal (w.r.t. ⊆) consistent subset of F.
// This module provides a greedy constructor (remove the atom involved in
// the most conflicts, recompute, repeat; then re-add whatever fits) and
// an exhaustive enumerator for tiny KBs, plus the information-retention
// metrics used by the update-vs-deletion comparison benchmark: an update
// repair keeps every atom and every error-free value, while a deletion
// repair forfeits all values of the atoms it drops.

#ifndef KBREPAIR_REPAIR_DELETION_REPAIR_H_
#define KBREPAIR_REPAIR_DELETION_REPAIR_H_

#include <cstdint>
#include <vector>

#include "kb/fact_base.h"
#include "rules/knowledge_base.h"
#include "util/status.h"

namespace kbrepair {

// A subset of F by atom id. kept[id] == false means atom id is deleted.
struct DeletionRepair {
  std::vector<bool> kept;

  size_t NumKept() const;
  size_t NumDeleted() const { return kept.size() - NumKept(); }

  // Materializes the surviving atoms into a new FactBase (atom ids are
  // renumbered; the mapping is the order of surviving ids).
  FactBase Materialize(const FactBase& facts) const;
};

// Greedy deletion repair: repeatedly remove the atom supporting the most
// conflicts (ties: smallest id), then re-add removed atoms that do not
// re-introduce an inconsistency, making the result subset-maximal.
// `seed` is unused by the deterministic default but reserved for
// randomized tie-breaking.
StatusOr<DeletionRepair> GreedyDeletionRepair(KnowledgeBase& kb,
                                              uint64_t seed = 0);

// All maximal consistent subsets of F, for KBs with at most `max_atoms`
// facts (exponential; intended for tests and pedagogy). Repairs are
// returned in no particular order.
StatusOr<std::vector<DeletionRepair>> AllDeletionRepairs(
    KnowledgeBase& kb, size_t max_atoms = 16);

// Information-retention metrics comparing a repair against the original
// F, used by the deletion-vs-update benchmark.
struct RetentionMetrics {
  size_t atoms_original = 0;
  size_t atoms_kept = 0;       // deletion: survivors; update: all
  size_t values_original = 0;  // |pos(F)|
  size_t values_kept = 0;      // positions whose value is untouched
};

RetentionMetrics MetricsForDeletion(const FactBase& facts,
                                    const DeletionRepair& repair);
// `updated` must be an update of `facts` (same shape).
RetentionMetrics MetricsForUpdate(const FactBase& facts,
                                  const FactBase& updated);

}  // namespace kbrepair

#endif  // KBREPAIR_REPAIR_DELETION_REPAIR_H_
