// Small descriptive-statistics helpers used by the benchmark harness to
// print paper-style rows (means, boxplot five-number summaries).

#ifndef KBREPAIR_UTIL_STATS_H_
#define KBREPAIR_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace kbrepair {

// Five-number summary plus mean, matching the boxplots of Figure 5.
struct BoxplotSummary {
  double min = 0.0;
  double q1 = 0.0;      // first quartile
  double median = 0.0;
  double q3 = 0.0;      // third quartile
  double max = 0.0;
  double mean = 0.0;
  size_t count = 0;

  // Values outside [q1 - 1.5*iqr, q3 + 1.5*iqr].
  std::vector<double> outliers;
};

// Accumulates samples and produces summaries. Not thread-safe.
class SampleStats {
 public:
  void Add(double value) {
    samples_.push_back(value);
    sorted_dirty_ = true;
  }
  void AddAll(const std::vector<double>& values);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  // Insertion order (never re-sorted in place).
  const std::vector<double>& samples() const { return samples_; }

  double Mean() const;
  double Min() const;
  double Max() const;
  double Stddev() const;  // sample standard deviation (n-1)

  // Linear-interpolated quantile, q in [0,1]. Requires at least one sample.
  double Quantile(double q) const;

  BoxplotSummary Boxplot() const;

  void Clear() {
    samples_.clear();
    sorted_.clear();
    sorted_dirty_ = true;
  }

 private:
  // Sorted view of samples_, rebuilt at most once per batch of Add()s:
  // Boxplot() issues several Quantile() calls and previously re-copied
  // and re-sorted the whole vector for each of them.
  const std::vector<double>& Sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_dirty_ = true;
};

// Formats a value with fixed decimal places (printf "%.*f").
std::string FormatDouble(double value, int decimals);

}  // namespace kbrepair

#endif  // KBREPAIR_UTIL_STATS_H_
