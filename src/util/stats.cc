#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace kbrepair {

void SampleStats::AddAll(const std::vector<double>& values) {
  samples_.insert(samples_.end(), values.begin(), values.end());
  sorted_dirty_ = true;
}

const std::vector<double>& SampleStats::Sorted() const {
  if (sorted_dirty_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_dirty_ = false;
  }
  return sorted_;
}

double SampleStats::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double SampleStats::Min() const {
  KBREPAIR_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::Max() const {
  KBREPAIR_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleStats::Stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double mean = Mean();
  double sum_sq = 0.0;
  for (double v : samples_) sum_sq += (v - mean) * (v - mean);
  return std::sqrt(sum_sq / static_cast<double>(samples_.size() - 1));
}

double SampleStats::Quantile(double q) const {
  KBREPAIR_CHECK(!samples_.empty());
  KBREPAIR_CHECK(q >= 0.0 && q <= 1.0);
  const std::vector<double>& sorted = Sorted();
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

BoxplotSummary SampleStats::Boxplot() const {
  BoxplotSummary summary;
  if (samples_.empty()) return summary;
  summary.count = samples_.size();
  summary.min = Min();
  summary.q1 = Quantile(0.25);
  summary.median = Quantile(0.5);
  summary.q3 = Quantile(0.75);
  summary.max = Max();
  summary.mean = Mean();
  const double iqr = summary.q3 - summary.q1;
  const double lo_fence = summary.q1 - 1.5 * iqr;
  const double hi_fence = summary.q3 + 1.5 * iqr;
  for (double v : samples_) {
    if (v < lo_fence || v > hi_fence) summary.outliers.push_back(v);
  }
  return summary;
}

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return std::string(buf);
}

}  // namespace kbrepair
