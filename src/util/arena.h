// Arena: chunked bump allocation for chase-generation-scoped data.
//
// The saturation hot path used to allocate a fresh heap node per derived
// atom: every materialized trigger carried an unordered_map of bindings
// and a parents vector, and every Derivation copied that vector again.
// The arena replaces that churn with pointer-bump allocation into large
// chunks that are freed (or reset) all at once when the owning chase
// generation ends:
//
//  * per-worker scratch arenas hold the trigger frontier of one wave of
//    parallel enumeration and are Reset() between waves;
//  * a per-result arena owns every Derivation's parent list for the
//    lifetime of the ChaseResult / IncrementalChase that minted it.
//
// Only trivially-copyable, trivially-destructible element types are
// supported (AtomId, TermId, small PODs) — nothing in the arena is ever
// destroyed individually, so destructors would silently not run.
//
// Not thread-safe: one arena per owner (one per pool worker during
// parallel enumeration). ArenaSpan is a plain {pointer, length} view —
// valid for as long as the arena that produced it is neither Reset() nor
// destroyed.

#ifndef KBREPAIR_UTIL_ARENA_H_
#define KBREPAIR_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/logging.h"

namespace kbrepair {

// Non-owning view of `len` consecutive T's placed in an Arena. Trivially
// copyable, so structs holding spans (Derivation, pending triggers) can
// live in plain vectors / CoW containers while the bytes stay put.
template <typename T>
struct ArenaSpan {
  const T* ptr = nullptr;
  uint32_t len = 0;

  const T* begin() const { return ptr; }
  const T* end() const { return ptr + len; }
  size_t size() const { return len; }
  bool empty() const { return len == 0; }
  const T& operator[](size_t i) const {
    KBREPAIR_DCHECK(i < len);
    return ptr[i];
  }
};

class Arena {
 public:
  explicit Arena(size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Copies `[src, src + len)` into the arena and returns a stable span.
  // A zero-length copy returns an empty span without touching memory.
  template <typename T>
  ArenaSpan<T> Copy(const T* src, size_t len) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "arena elements are never individually destroyed");
    if (len == 0) return {};
    T* dst = static_cast<T*>(Allocate(len * sizeof(T), alignof(T)));
    std::memcpy(dst, src, len * sizeof(T));
    return {dst, static_cast<uint32_t>(len)};
  }

  template <typename T>
  ArenaSpan<T> Copy(const std::vector<T>& src) {
    return Copy(src.data(), src.size());
  }

  // Raw bump allocation (uninitialized). Alignment must be a power of 2.
  void* Allocate(size_t bytes, size_t align) {
    size_t offset = (cursor_ + align - 1) & ~(align - 1);
    if (current_ == nullptr || offset + bytes > current_size_) {
      NewChunk(bytes + align);
      offset = (cursor_ + align - 1) & ~(align - 1);
    }
    cursor_ = offset + bytes;
    return current_ + offset;
  }

  // Recycles every chunk: allocation restarts at the front of the first
  // chunk, previous contents become garbage (spans into them dangle).
  // Chunks themselves are kept, so a steady-state wave loop allocates
  // from the OS only until the high-water mark is reached.
  void Reset() {
    if (chunks_.empty()) return;
    next_chunk_ = 0;
    AdoptChunk(0);
  }

  // Total bytes currently reserved from the OS (instrumentation).
  size_t reserved_bytes() const {
    size_t total = 0;
    for (const Chunk& chunk : chunks_) total += chunk.size;
    return total;
  }

 private:
  static constexpr size_t kDefaultChunkBytes = 64 * 1024;

  struct Chunk {
    std::unique_ptr<char[]> bytes;
    size_t size = 0;
  };

  void AdoptChunk(size_t index) {
    current_ = chunks_[index].bytes.get();
    current_size_ = chunks_[index].size;
    cursor_ = 0;
    next_chunk_ = index + 1;
  }

  void NewChunk(size_t min_bytes) {
    // After a Reset() the retained chunks are reused before growing.
    while (next_chunk_ < chunks_.size()) {
      if (chunks_[next_chunk_].size >= min_bytes) {
        AdoptChunk(next_chunk_);
        return;
      }
      ++next_chunk_;
    }
    Chunk chunk;
    chunk.size = min_bytes > chunk_bytes_ ? min_bytes : chunk_bytes_;
    chunk.bytes = std::make_unique<char[]>(chunk.size);
    chunks_.push_back(std::move(chunk));
    AdoptChunk(chunks_.size() - 1);
  }

  size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  char* current_ = nullptr;
  size_t current_size_ = 0;
  size_t cursor_ = 0;
  size_t next_chunk_ = 0;
};

}  // namespace kbrepair

#endif  // KBREPAIR_UTIL_ARENA_H_
