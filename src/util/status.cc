#include "util/status.h"

namespace kbrepair {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace kbrepair
