// Request-path tracing and per-phase time accounting.
//
// Two cooperating facilities, both driven by the same RAII guard
// (ScopedSpan):
//
//  * Phase accounting (always on): every instrumented region is tagged
//    with a Phase; a thread-local accumulator sums the wall time spent
//    in each phase on this thread. Callers snapshot the accumulator
//    around a unit of work (ThreadPhaseTotals / PhaseTotals::Since) and
//    attribute the delta — this is what feeds the per-strategy /
//    per-engine phase histograms in ServiceMetrics and the fig5 delay
//    breakdown. Nested regions are *inclusive*: a chase running under
//    question generation counts in both kChase and kQuestionGen.
//
//  * Span collection (off by default): when the recorder is enabled
//    (--trace-dir), each region additionally emits a span — monotonic
//    start + duration, a thread-local parent id forming a proper tree
//    per thread, an optional detail annotation — into a per-thread
//    buffer. Buffers are drained on demand (the `trace` wire command)
//    and written as JSON lines via AtomicWriteFile.
//
// Cost model, mirroring util/failpoint: when disabled, a span is two
// steady_clock reads, one relaxed atomic load, and one thread-local
// add — no allocation, no locking, no id assignment. The < 2%
// bench/delta_chase budget in ISSUE 4 is measured against exactly this
// path. When enabled, the completed-span append takes a per-thread
// mutex that only the infrequent drainer ever contends on.

#ifndef KBREPAIR_UTIL_TRACE_H_
#define KBREPAIR_UTIL_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace kbrepair {
namespace trace {

// The instrumented phases of the repair pipeline. Stable order — these
// index fixed-size arrays in ServiceMetrics and QuestionRecord.
enum class Phase : int {
  kRepairability = 0,  // Π-repairability checks (CHECKCONSISTENCY-OPT)
  kQuestionGen,        // sound-question generation (Algorithm 2)
  kApplyFix,           // fix application + census/skeleton maintenance
  kChase,              // from-scratch saturation (ChaseEngine::Run)
  kDeltaChase,         // delta re-saturation (IncrementalChase::Saturate)
  kConflictScan,       // homomorphism enumeration over CDD bodies
  kWalAppend,          // WAL append + fsync
  kNone,               // span carries no phase attribution
};
inline constexpr size_t kNumPhases = static_cast<size_t>(Phase::kNone);

// Short stable name ("chase", "wal_append", ...) used as the metric and
// span-field key.
const char* PhaseName(Phase phase);

// Cumulative per-phase seconds recorded by the calling thread. Cheap
// value type: snapshot before a unit of work, snapshot after, subtract.
struct PhaseTotals {
  double seconds[kNumPhases] = {};

  // Component-wise `*this - earlier` (this must be the later snapshot).
  PhaseTotals Since(const PhaseTotals& earlier) const;
  void Add(const PhaseTotals& delta);
  double TotalSeconds() const;
};

// Snapshot of the calling thread's accumulator.
PhaseTotals ThreadPhaseTotals();

// One completed span, as drained from the recorder.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent = 0;    // 0 = root of its tree
  const char* name = "";  // static string supplied at the span site
  Phase phase = Phase::kNone;
  int64_t start_us = 0;  // steady clock, relative to Enable()
  int64_t duration_us = 0;
  uint32_t thread = 0;  // per-process thread registration index
  std::string detail;   // optional "k=v ..." annotation
};

// JSON object for one span:
// {"id":..,"parent":..,"name":"..","phase":"..","thread":..,
//  "start_us":..,"dur_us":..,"detail":".."}  — phase omitted for kNone,
// detail omitted if empty.
JsonValue SpanToJson(const SpanRecord& span);

// Single-line rendering of SpanToJson (the --trace-dir file format).
std::string SpanToJsonLine(const SpanRecord& span);

// Process-wide span sink. All methods are thread-safe except where
// noted; recording costs nothing (beyond the disabled-path loads) until
// Enable() is called.
class Recorder {
 public:
  static Recorder& Instance();

  // Turns span collection on. `dir` may be empty: spans are then only
  // available through Drain() / the `trace` wire command; otherwise
  // DrainToFile() writes JSON lines under it. Resets the epoch that
  // start_us is measured from.
  void Enable(std::string dir);

  // Turns collection off and discards anything still buffered.
  void Disable();

  static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }

  // Moves every buffered completed span out of the per-thread buffers,
  // ordered by start time. Spans still open stay with their thread and
  // surface on a later drain.
  std::vector<SpanRecord> Drain();

  // Drain() + atomic write of <dir>/trace-<seq>.jsonl. Returns the file
  // path, or InvalidArgument when no sink directory was configured.
  // Drained spans are also returned through *spans when non-null (they
  // are consumed either way).
  StatusOr<std::string> DrainToFile(std::vector<SpanRecord>* spans = nullptr);

  // Spans dropped because a thread buffer hit its cap, since Enable().
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  bool has_sink() const;

 private:
  friend class ScopedSpan;
  friend struct ThreadState;

  Recorder() = default;

  static std::atomic<bool>& enabled_flag();

  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<uint64_t> next_file_seq_{1};
  std::atomic<uint64_t> dropped_{0};
  std::chrono::steady_clock::time_point epoch_{};
};

// RAII region guard. Always feeds the thread-local phase accumulator
// (unless phase == kNone); additionally records a span when the
// recorder is enabled. The name must be a string literal (it is stored
// by pointer).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, Phase phase = Phase::kNone);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Attaches a "k=v ..." annotation; no-op (and no allocation) when the
  // span is not being recorded.
  void Annotate(const std::string& detail);
  bool recording() const { return recording_; }

 private:
  const char* name_;
  Phase phase_;
  bool recording_;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  std::string detail_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace trace
}  // namespace kbrepair

#endif  // KBREPAIR_UTIL_TRACE_H_
