#include "util/log.h"

#include <fcntl.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace kbrepair {
namespace logging {

namespace {

// Sink + rate-limiter state, detached from the Logger object so the
// singleton needs no out-of-line destructor ordering. Guarded by mu.
struct SinkState {
  std::mutex mu;
  int fd = 2;             // stderr
  bool owns_fd = false;   // close on replacement
  RateLimitConfig rate_limit;
  struct Bucket {
    double tokens = 0.0;
    bool initialized = false;
    std::chrono::steady_clock::time_point last{};
    uint64_t suppressed_since_emit = 0;
  };
  std::unordered_map<std::string, Bucket> buckets;
};

SinkState& Sink() {
  static SinkState* state = new SinkState();
  return *state;
}

thread_local std::string tls_session_id;

// One full line in one write() (looping only on EINTR / short writes,
// which cannot interleave with other threads — the mutex is held).
void WriteWholeLine(int fd, const std::string& line) {
  size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // a broken sink must never take the process down
    }
    off += static_cast<size_t>(n);
  }
}

std::string IsoTimestampUtc() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000000;
  std::tm tm{};
  ::gmtime_r(&secs, &tm);
  char buffer[40];
  std::snprintf(buffer, sizeof buffer,
                "%04d-%02d-%02dT%02d:%02d:%02d.%06ldZ", tm.tm_year + 1900,
                tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min, tm.tm_sec,
                static_cast<long>(micros));
  return buffer;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
  }
  return "?";
}

StatusOr<Level> ParseLevel(const std::string& name) {
  if (name == "debug") return Level::kDebug;
  if (name == "info") return Level::kInfo;
  if (name == "warn") return Level::kWarn;
  if (name == "error") return Level::kError;
  return Status::InvalidArgument(
      "unknown log level '" + name +
      "' (expected debug, info, warn or error)");
}

Logger& Logger::Instance() {
  static Logger* logger = new Logger();
  return *logger;
}

Status Logger::OpenFile(const std::string& path) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Unavailable("cannot open log file '" + path + "'");
  }
  SinkState& sink = Sink();
  std::lock_guard<std::mutex> lock(sink.mu);
  if (sink.owns_fd) ::close(sink.fd);
  sink.fd = fd;
  sink.owns_fd = true;
  return Status::Ok();
}

void Logger::UseStderr() {
  SinkState& sink = Sink();
  std::lock_guard<std::mutex> lock(sink.mu);
  if (sink.owns_fd) ::close(sink.fd);
  sink.fd = 2;
  sink.owns_fd = false;
}

void Logger::SetRateLimit(RateLimitConfig config) {
  SinkState& sink = Sink();
  std::lock_guard<std::mutex> lock(sink.mu);
  sink.rate_limit = config;
  sink.buckets.clear();
}

void Logger::ResetForTest() {
  UseStderr();
  SetLevel(Level::kInfo);
  SetRateLimit(RateLimitConfig{});
  suppressed_.store(0, std::memory_order_relaxed);
}

void Logger::Emit(Level level, const char* component, JsonValue fields) {
  JsonValue line = JsonValue::Object();
  line.Set("ts", JsonValue::String(IsoTimestampUtc()));
  line.Set("level", JsonValue::String(LevelName(level)));
  line.Set("component", JsonValue::String(component));
  if (!tls_session_id.empty() && !fields.Has("session")) {
    line.Set("session", JsonValue::String(tls_session_id));
  }
  for (const auto& [key, value] : fields.members()) {
    line.Set(key, value);
  }

  SinkState& sink = Sink();
  std::lock_guard<std::mutex> lock(sink.mu);
  // Rate-limit repeated warn/error lines per (component, msg): floods
  // from one failing call site must not drown the rest of the log.
  if (level >= Level::kWarn && sink.rate_limit.burst > 0) {
    const std::string key = std::string(component) + "\x1f" +
                            fields.Get("msg").AsString();
    SinkState::Bucket& bucket = sink.buckets[key];
    const auto now = std::chrono::steady_clock::now();
    if (!bucket.initialized) {
      bucket.initialized = true;
      bucket.tokens = sink.rate_limit.burst;
      bucket.last = now;
    } else {
      const double elapsed =
          std::chrono::duration<double>(now - bucket.last).count();
      bucket.tokens =
          std::min(sink.rate_limit.burst,
                   bucket.tokens + elapsed * sink.rate_limit.tokens_per_second);
      bucket.last = now;
    }
    if (bucket.tokens < 1.0) {
      ++bucket.suppressed_since_emit;
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    bucket.tokens -= 1.0;
    if (bucket.suppressed_since_emit > 0) {
      line.Set("suppressed_prior",
               JsonValue::Number(bucket.suppressed_since_emit));
      bucket.suppressed_since_emit = 0;
    }
  }
  WriteWholeLine(sink.fd, line.Dump() + "\n");
}

ScopedSessionId::ScopedSessionId(const std::string& id)
    : previous_(tls_session_id) {
  tls_session_id = id;
}

ScopedSessionId::~ScopedSessionId() { tls_session_id = previous_; }

const std::string& CurrentSessionId() { return tls_session_id; }

LogEvent::LogEvent(Level level, const char* component, std::string msg)
    : enabled_(Logger::Instance().Enabled(level)),
      level_(level),
      component_(component) {
  if (!enabled_) return;
  fields_ = JsonValue::Object();
  fields_.Set("msg", JsonValue::String(std::move(msg)));
}

LogEvent::~LogEvent() {
  if (!enabled_ || emitted_) return;
  emitted_ = true;
  Logger::Instance().Emit(level_, component_, std::move(fields_));
}

LogEvent& LogEvent::With(const char* key, const std::string& value) {
  if (enabled_) fields_.Set(key, JsonValue::String(value));
  return *this;
}
LogEvent& LogEvent::With(const char* key, const char* value) {
  if (enabled_) fields_.Set(key, JsonValue::String(value));
  return *this;
}
LogEvent& LogEvent::With(const char* key, int64_t value) {
  if (enabled_) fields_.Set(key, JsonValue::Number(value));
  return *this;
}
LogEvent& LogEvent::With(const char* key, uint64_t value) {
  if (enabled_) fields_.Set(key, JsonValue::Number(value));
  return *this;
}
LogEvent& LogEvent::With(const char* key, int value) {
  return With(key, static_cast<int64_t>(value));
}
LogEvent& LogEvent::With(const char* key, double value) {
  if (enabled_) fields_.Set(key, JsonValue::Number(value));
  return *this;
}
LogEvent& LogEvent::With(const char* key, bool value) {
  if (enabled_) fields_.Set(key, JsonValue::Bool(value));
  return *this;
}

}  // namespace logging
}  // namespace kbrepair
