// Wall-clock stopwatch used to measure per-question delay times.

#ifndef KBREPAIR_UTIL_TIMER_H_
#define KBREPAIR_UTIL_TIMER_H_

#include <chrono>

namespace kbrepair {

// Starts on construction; ElapsedSeconds() reads without stopping.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kbrepair

#endif  // KBREPAIR_UTIL_TIMER_H_
