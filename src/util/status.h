// Exception-free error handling primitives, in the style used by
// database engines (RocksDB's Status, Arrow's Result).
//
// Public APIs in this project return Status for operations that can fail
// for a caller-visible reason (bad input, unsupported rule set, ...) and
// StatusOr<T> when a value is produced on success. Programming errors are
// handled with CHECK/DCHECK (see util/logging.h), never with Status.

#ifndef KBREPAIR_UTIL_STATUS_H_
#define KBREPAIR_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace kbrepair {

// Broad error categories. Kept deliberately small: callers that need more
// detail should inspect the message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kUnsupported,
  kInternal,
  // A per-command deadline elapsed before the command finished. The
  // command had no effect (cancellation is checked before state is
  // mutated), so retrying it is safe.
  kDeadlineExceeded,
  // The service cannot take the command right now (overload, shutdown,
  // WAL write failure). The command was not executed; retry with backoff.
  kUnavailable,
  // A resource limit is in force: the owning shard is in disk-degraded
  // read-only mode, or the memory governor is shedding load. Like
  // kUnavailable the command was not executed and retrying with backoff
  // is safe, but recovery depends on resources freeing up, so clients
  // should back off harder.
  kResourceExhausted,
};

// Returns a short human-readable name ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

// A cheap value type carrying success or an (code, message) error.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "InvalidArgument: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Holds either a T or an error Status. Accessing value() on an error
// status aborts the process (it is a programming error, like dereferencing
// an empty optional).
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so `return MakeFoo();` and `return status;`
  // both work, mirroring absl::StatusOr.
  StatusOr(T value) : rep_(std::move(value)) {}
  StatusOr(Status status) : rep_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

// Propagates a non-OK status to the caller.
#define KBREPAIR_RETURN_IF_ERROR(expr)             \
  do {                                             \
    ::kbrepair::Status _status = (expr);           \
    if (!_status.ok()) return _status;             \
  } while (0)

// Evaluates a StatusOr expression, propagating errors, binding the value.
#define KBREPAIR_ASSIGN_OR_RETURN(lhs, expr)       \
  KBREPAIR_ASSIGN_OR_RETURN_IMPL_(                 \
      KBREPAIR_STATUS_CONCAT_(_status_or_, __LINE__), lhs, expr)

#define KBREPAIR_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value();

#define KBREPAIR_STATUS_CONCAT_(a, b) KBREPAIR_STATUS_CONCAT_IMPL_(a, b)
#define KBREPAIR_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace kbrepair

#endif  // KBREPAIR_UTIL_STATUS_H_
