// Leveled structured JSON logging for the repair service.
//
// Every emitted line is one compact JSON object (built through
// util/json, so it is well-formed by construction):
//
//   {"ts":"2026-08-05T12:34:56.123456Z","level":"warn","component":"wal",
//    "session":"s-3","msg":"append failed","error":"Unavailable: ..."}
//
// Design points:
//  * one line = one ::write() under a mutex, so concurrent threads never
//    interleave partial lines (the log stays parseable line-by-line);
//  * the level gate is a single relaxed atomic load; a filtered-out
//    event builds no fields and allocates nothing beyond the builder;
//  * warn/error events are token-bucket rate-limited per
//    (component, msg) key — repeated failures (a dying disk fsync-ing
//    its way through every append) cannot flood the sink. When a key
//    re-earns a token, the next emitted line carries
//    "suppressed_prior": N for the lines dropped in between;
//  * a thread-local session id (ScopedSessionId, set by the scheduler
//    around each session command) is attached automatically, so every
//    WAL / deadline / demotion event correlates without plumbing the id
//    through each call site.
//
// Sinks: stderr by default, or an append-mode file (--log-file).

#ifndef KBREPAIR_UTIL_LOG_H_
#define KBREPAIR_UTIL_LOG_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/json.h"
#include "util/status.h"

namespace kbrepair {
namespace logging {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// "debug" / "info" / "warn" / "error".
const char* LevelName(Level level);
// Accepts the names above; InvalidArgument otherwise.
StatusOr<Level> ParseLevel(const std::string& name);

// Token bucket for repeated warn/error messages, per (component, msg).
// burst <= 0 disables rate limiting entirely.
struct RateLimitConfig {
  double tokens_per_second = 1.0;
  double burst = 10.0;
};

class Logger {
 public:
  static Logger& Instance();

  void SetLevel(Level level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  Level level() const {
    return static_cast<Level>(level_.load(std::memory_order_relaxed));
  }
  bool Enabled(Level level) const {
    return static_cast<int>(level) >=
           level_.load(std::memory_order_relaxed);
  }

  // Switches the sink to `path` (append mode, created if missing).
  // On failure the current sink is kept and the error returned.
  Status OpenFile(const std::string& path);
  // Switches the sink back to stderr (the default).
  void UseStderr();

  void SetRateLimit(RateLimitConfig config);

  // Total warn/error lines dropped by the rate limiter since start.
  uint64_t suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }

  // Restores defaults (stderr sink, info level, default rate limit,
  // cleared buckets). Test teardown.
  void ResetForTest();

  // Emits one line. `fields` must be an object; ts/level/component (and
  // the thread-local session id) are prepended here. Called by LogEvent.
  void Emit(Level level, const char* component, JsonValue fields);

 private:
  Logger() = default;

  std::atomic<int> level_{static_cast<int>(Level::kInfo)};
  std::atomic<uint64_t> suppressed_{0};
};

// Attaches `id` as the calling thread's correlation id for the duration
// of the scope; LogEvent picks it up as the "session" field. Nests
// (restores the previous id on destruction).
class ScopedSessionId {
 public:
  explicit ScopedSessionId(const std::string& id);
  ~ScopedSessionId();

  ScopedSessionId(const ScopedSessionId&) = delete;
  ScopedSessionId& operator=(const ScopedSessionId&) = delete;

 private:
  std::string previous_;
};

// The calling thread's current correlation id ("" when none).
const std::string& CurrentSessionId();

// Builder for one log line; emits on destruction (end of the full
// expression). When the level is filtered out, every call is a no-op.
class LogEvent {
 public:
  LogEvent(Level level, const char* component, std::string msg);
  ~LogEvent();

  LogEvent(LogEvent&& other)
      : enabled_(other.enabled_),
        emitted_(other.emitted_),
        level_(other.level_),
        component_(other.component_),
        fields_(std::move(other.fields_)) {
    other.emitted_ = true;  // the moved-from shell must not emit
  }
  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& With(const char* key, const std::string& value);
  LogEvent& With(const char* key, const char* value);
  LogEvent& With(const char* key, int64_t value);
  LogEvent& With(const char* key, uint64_t value);
  LogEvent& With(const char* key, int value);
  LogEvent& With(const char* key, double value);
  LogEvent& With(const char* key, bool value);

 private:
  bool enabled_;
  bool emitted_ = false;
  Level level_;
  const char* component_;
  JsonValue fields_;
};

inline LogEvent Debug(const char* component, std::string msg) {
  return LogEvent(Level::kDebug, component, std::move(msg));
}
inline LogEvent Info(const char* component, std::string msg) {
  return LogEvent(Level::kInfo, component, std::move(msg));
}
inline LogEvent Warn(const char* component, std::string msg) {
  return LogEvent(Level::kWarn, component, std::move(msg));
}
inline LogEvent Error(const char* component, std::string msg) {
  return LogEvent(Level::kError, component, std::move(msg));
}

}  // namespace logging
}  // namespace kbrepair

#endif  // KBREPAIR_UTIL_LOG_H_
