#include "util/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/errno_text.h"
#include "util/fs.h"

namespace kbrepair {
namespace net {

namespace {

std::string Errno() { return ErrnoText(errno); }

}  // namespace

StatusOr<int> ListenTcp(const std::string& bind_address, int port,
                        int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Unavailable("net: socket() failed: " + Errno());
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("net: bad bind address '" + bind_address +
                                   "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string error = Errno();
    ::close(fd);
    return Status::Unavailable("net: cannot bind " + bind_address + ":" +
                               std::to_string(port) + ": " + error);
  }
  if (::listen(fd, backlog) < 0) {
    const std::string error = Errno();
    ::close(fd);
    return Status::Unavailable("net: listen() failed: " + error);
  }
  return fd;
}

StatusOr<int> BoundTcpPort(int fd) {
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    return Status::Unavailable("net: getsockname() failed: " + Errno());
  }
  return static_cast<int>(ntohs(bound.sin_port));
}

StatusOr<int> ListenUnix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    return Status::InvalidArgument("net: unix socket path too long: '" + path +
                                   "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Unavailable("net: socket() failed: " + Errno());
  }
  // A stale socket file from a previous run would make bind fail with
  // EADDRINUSE even though nothing is listening.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string error = Errno();
    ::close(fd);
    return Status::Unavailable("net: cannot bind unix socket '" + path +
                               "': " + error);
  }
  if (::listen(fd, backlog) < 0) {
    const std::string error = Errno();
    ::close(fd);
    return Status::Unavailable("net: listen() failed: " + error);
  }
  return fd;
}

StatusOr<int> ConnectTcp(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("net: bad address '" + host + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Unavailable("net: socket() failed: " + Errno());
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string error = Errno();
    ::close(fd);
    return Status::Unavailable("net: cannot connect to " + host + ":" +
                               std::to_string(port) + ": " + error);
  }
  return fd;
}

StatusOr<int> ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    return Status::InvalidArgument("net: unix socket path too long: '" + path +
                                   "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Unavailable("net: socket() failed: " + Errno());
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string error = Errno();
    ::close(fd);
    return Status::Unavailable("net: cannot connect to unix socket '" + path +
                               "': " + error);
  }
  return fd;
}

Status WritePortFile(const std::string& path, int port) {
  return AtomicWriteFile(path, std::to_string(port) + "\n");
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Unavailable("net: fcntl(O_NONBLOCK) failed: " + Errno());
  }
  return Status::Ok();
}

StatusOr<int> AcceptConnection(int listen_fd) {
  const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd >= 0) return fd;
  if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
      errno == EWOULDBLOCK) {
    return -1;  // benign: caller should retry / wait for the next event
  }
  return Status::Unavailable("net: accept() failed: " + Errno());
}

}  // namespace net
}  // namespace kbrepair
