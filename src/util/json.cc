#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace kbrepair {

const JsonValue& JsonValue::at(size_t index) const {
  static const JsonValue kNull;
  if (!is_array() || index >= items_.size()) return kNull;
  return items_[index];
}

JsonValue& JsonValue::Append(JsonValue value) {
  if (!is_array()) {
    kind_ = Kind::kArray;
    items_.clear();
  }
  items_.push_back(std::move(value));
  return *this;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::Get(const std::string& key) const {
  static const JsonValue kNull;
  const JsonValue* found = Find(key);
  return found != nullptr ? *found : kNull;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue value) {
  if (!is_object()) {
    kind_ = Kind::kObject;
    members_.clear();
  }
  for (auto& [name, existing] : members_) {
    if (name == key) {
      existing = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return bool_ == other.bool_;
    case Kind::kNumber:
      return number_ == other.number_;
    case Kind::kString:
      return string_ == other.string_;
    case Kind::kArray:
      return items_ == other.items_;
    case Kind::kObject:
      return members_ == other.members_;
  }
  return false;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through untouched
        }
    }
  }
  out += '"';
  return out;
}

namespace {

// Shortest representation that round-trips: integers print without a
// fractional part, everything else with enough digits.
std::string FormatNumber(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    return buf;
  }
  if (!std::isfinite(value)) return "null";  // JSON has no Inf/NaN
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

void JsonValue::DumpTo(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      out += FormatNumber(number_);
      break;
    case Kind::kString:
      out += JsonEscape(string_);
      break;
    case Kind::kArray: {
      out += '[';
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        items_[i].DumpTo(out);
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        out += JsonEscape(members_[i].first);
        out += ':';
        members_[i].second.DumpTo(out);
      }
      out += '}';
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(out);
  return out;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> ParseDocument() {
    SkipSpace();
    JsonValue value;
    KBREPAIR_RETURN_IF_ERROR(ParseValue(value, /*depth=*/0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON error at byte " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool ConsumeLiteral(const char* literal) {
    size_t len = 0;
    while (literal[len] != '\0') ++len;
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  Status ParseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == 'n') {
      if (!ConsumeLiteral("null")) return Error("invalid literal");
      out = JsonValue::Null();
      return Status::Ok();
    }
    if (c == 't') {
      if (!ConsumeLiteral("true")) return Error("invalid literal");
      out = JsonValue::Bool(true);
      return Status::Ok();
    }
    if (c == 'f') {
      if (!ConsumeLiteral("false")) return Error("invalid literal");
      out = JsonValue::Bool(false);
      return Status::Ok();
    }
    if (c == '"') return ParseString(out);
    if (c == '[') return ParseArray(out, depth);
    if (c == '{') return ParseObject(out, depth);
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
    return Error("unexpected character");
  }

  Status ParseNumber(JsonValue& out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      return Error("malformed number '" + token + "'");
    }
    out = JsonValue::Number(value);
    return Status::Ok();
  }

  Status ParseString(JsonValue& out) {
    std::string value;
    KBREPAIR_RETURN_IF_ERROR(ParseRawString(value));
    out = JsonValue::String(std::move(value));
    return Status::Ok();
  }

  Status ParseRawString(std::string& value) {
    ++pos_;  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c != '\\') {
        value += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          value += '"';
          break;
        case '\\':
          value += '\\';
          break;
        case '/':
          value += '/';
          break;
        case 'b':
          value += '\b';
          break;
        case 'f':
          value += '\f';
          break;
        case 'n':
          value += '\n';
          break;
        case 'r':
          value += '\r';
          break;
        case 't':
          value += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape digit");
            }
          }
          // UTF-8 encode the code point (surrogate pairs unsupported;
          // the project's payloads are names and DLGP text).
          if (code < 0x80) {
            value += static_cast<char>(code);
          } else if (code < 0x800) {
            value += static_cast<char>(0xC0 | (code >> 6));
            value += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            value += static_cast<char>(0xE0 | (code >> 12));
            value += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            value += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
    if (pos_ >= text_.size()) return Error("unterminated string");
    ++pos_;  // closing quote
    return Status::Ok();
  }

  Status ParseArray(JsonValue& out, int depth) {
    ++pos_;  // '['
    out = JsonValue::Array();
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      JsonValue item;
      SkipSpace();
      KBREPAIR_RETURN_IF_ERROR(ParseValue(item, depth + 1));
      out.Append(std::move(item));
      SkipSpace();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::Ok();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out = JsonValue::Object();
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      KBREPAIR_RETURN_IF_ERROR(ParseRawString(key));
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':' after object key");
      }
      ++pos_;
      SkipSpace();
      JsonValue value;
      KBREPAIR_RETURN_IF_ERROR(ParseValue(value, depth + 1));
      out.Set(key, std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Status::Ok();
      }
      return Error("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> JsonValue::Parse(const std::string& text) {
  return JsonParser(text).ParseDocument();
}

}  // namespace kbrepair
