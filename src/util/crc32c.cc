#include "util/crc32c.h"

#include <array>

namespace kbrepair {
namespace {

// Reflected CRC-32C polynomial (0x1EDC6F41 bit-reversed).
constexpr uint32_t kPolynomial = 0x82F63B42u;

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPolynomial : (crc >> 1);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace kbrepair
