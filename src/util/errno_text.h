// Thread-safe errno-to-text conversion.
//
// strerror(3) may return a pointer to a shared static buffer, so two
// threads formatting different errors can race and garble each other's
// messages. strerror_r(3) is the fix, but it comes in two incompatible
// flavors: the XSI variant returns int and fills the caller's buffer,
// while the GNU variant returns char* (possibly pointing at a static
// immutable string, ignoring the buffer). Which one <string.h> declares
// depends on feature-test macros, so this header dispatches on the
// return type via overload resolution instead of #ifdef guesswork.

#ifndef KBREPAIR_UTIL_ERRNO_TEXT_H_
#define KBREPAIR_UTIL_ERRNO_TEXT_H_

#include <cerrno>
#include <cstring>
#include <string>

namespace kbrepair {
namespace internal {

// XSI strerror_r: int return, message written into `buffer`.
inline std::string StrerrorResult(int rc, const char* buffer, int err) {
  if (rc == 0) return std::string(buffer);
  return "errno " + std::to_string(err);
}

// GNU strerror_r: char* return, `buffer` only used as scratch space.
inline std::string StrerrorResult(const char* result, const char* /*buffer*/,
                                  int err) {
  if (result != nullptr) return std::string(result);
  return "errno " + std::to_string(err);
}

}  // namespace internal

// Returns the message for `err` (an errno value), never touching shared
// static state.
inline std::string ErrnoText(int err) {
  char buffer[256];
  buffer[0] = '\0';
  return internal::StrerrorResult(::strerror_r(err, buffer, sizeof(buffer)),
                                  buffer, err);
}

// Returns the message for the calling thread's current errno.
inline std::string ErrnoText() { return ErrnoText(errno); }

}  // namespace kbrepair

#endif  // KBREPAIR_UTIL_ERRNO_TEXT_H_
