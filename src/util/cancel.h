// Cooperative cancellation for long-running engine work.
//
// A CancelToken carries an absolute steady-clock deadline. The service
// arms it before dispatching a command and the chase saturation loops —
// the only places the engine can spend unbounded time — poll it and bail
// out with DeadlineExceeded. Cancellation is checked *before* state is
// mutated at each step, so a cancelled command leaves the structure it
// was working on unusable only when the caller is told so (the service
// reacts by demoting the session to the scratch engine, see
// repair/inquiry.h).
//
// Thread model: one thread arms/disarms, any thread polls. All accesses
// are relaxed atomics on a single int64 — cheap enough to poll from a
// chase inner loop.

#ifndef KBREPAIR_UTIL_CANCEL_H_
#define KBREPAIR_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace kbrepair {

class CancelToken {
 public:
  // Arms the token: work polling it fails once `budget_ms` elapses.
  // A non-positive budget expires the token immediately.
  void ArmDeadline(int64_t budget_ms) {
    deadline_ns_.store(NowNs() + budget_ms * 1000000, std::memory_order_relaxed);
  }

  // Clears the deadline; Expired() returns false until re-armed.
  void Disarm() { deadline_ns_.store(0, std::memory_order_relaxed); }

  bool armed() const {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }

  bool Expired() const {
    const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    return deadline != 0 && NowNs() >= deadline;
  }

  // Ok, or DeadlineExceeded mentioning `what` (the work being cut off).
  Status Check(const char* what) const {
    if (!Expired()) return Status::Ok();
    return Status::DeadlineExceeded(std::string(what) +
                                    ": command deadline exceeded");
  }

 private:
  static int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  // 0 = disarmed; otherwise absolute steady-clock nanoseconds.
  std::atomic<int64_t> deadline_ns_{0};
};

}  // namespace kbrepair

#endif  // KBREPAIR_UTIL_CANCEL_H_
