// FunctionRef: non-owning, trivially-copyable reference to a callable.
//
// The homomorphism join visits every solution through a callback. Taking
// that callback as `const std::function&` forces a type-erased indirect
// call (and potentially a heap allocation at the call site) in the
// innermost loop of the chase. FunctionRef keeps the type erasure — so
// FindAll/FindAllPinned stay out-of-line in the .cc — but erases to a
// bare {void* object, thunk} pair: no allocation, one predictable
// indirect call, and implicit conversion from any lvalue callable
// (lambdas with captures included).
//
// The referenced callable must outlive the FunctionRef. Never store a
// FunctionRef beyond the call it was passed to.

#ifndef KBREPAIR_UTIL_FUNCTION_REF_H_
#define KBREPAIR_UTIL_FUNCTION_REF_H_

#include <type_traits>
#include <utility>

namespace kbrepair {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
      : object_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        thunk_(&Invoke<std::remove_reference_t<F>>) {}

  R operator()(Args... args) const {
    return thunk_(object_, std::forward<Args>(args)...);
  }

 private:
  template <typename F>
  static R Invoke(void* object, Args... args) {
    return (*static_cast<F*>(object))(std::forward<Args>(args)...);
  }

  void* object_;
  R (*thunk_)(void*, Args...);
};

}  // namespace kbrepair

#endif  // KBREPAIR_UTIL_FUNCTION_REF_H_
