// Minimal CHECK/DCHECK assertion macros.
//
// CHECK fires in all build modes and is used for invariants whose violation
// means the process state is corrupt; DCHECK compiles away in release
// builds and is used for cheap sanity checks on hot paths.

#ifndef KBREPAIR_UTIL_LOGGING_H_
#define KBREPAIR_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace kbrepair {
namespace internal_logging {

// Accumulates a failure message and aborts on destruction. Used as a
// temporary so `KBREPAIR_CHECK(x) << "detail"` works.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace kbrepair

#define KBREPAIR_CHECK(condition)                                       \
  if (condition) {                                                      \
  } else                                                                \
    ::kbrepair::internal_logging::CheckFailure(__FILE__, __LINE__,      \
                                               #condition)              \
        .stream()

#define KBREPAIR_CHECK_EQ(a, b) KBREPAIR_CHECK((a) == (b))
#define KBREPAIR_CHECK_NE(a, b) KBREPAIR_CHECK((a) != (b))
#define KBREPAIR_CHECK_LT(a, b) KBREPAIR_CHECK((a) < (b))
#define KBREPAIR_CHECK_LE(a, b) KBREPAIR_CHECK((a) <= (b))
#define KBREPAIR_CHECK_GT(a, b) KBREPAIR_CHECK((a) > (b))
#define KBREPAIR_CHECK_GE(a, b) KBREPAIR_CHECK((a) >= (b))

#ifdef NDEBUG
#define KBREPAIR_DCHECK(condition) \
  if (true) {                      \
  } else                           \
    KBREPAIR_CHECK(condition)
#else
#define KBREPAIR_DCHECK(condition) KBREPAIR_CHECK(condition)
#endif

#endif  // KBREPAIR_UTIL_LOGGING_H_
