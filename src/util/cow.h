// Copy-on-write containers backing the shared-base / delta-overlay split.
//
// A fleet of repair sessions forked from one registered base KB shares
// the base's interned symbols, facts, indexes and chased provenance; each
// session only materializes what it actually changes. Two shapes cover
// every structure involved:
//
//  * CowVector<T> — an immutable shared prefix (the base segment) plus a
//    per-index modified overlay and an append tail. Indexed reads fall
//    through to the base; Mutable(i) copies one element out on first
//    write. Ids stay stable, matching FactBase/IncrementalChase identity
//    semantics.
//  * CowMap<K, V> — a local overlay map over an immutable shared base
//    map. A key present in the overlay is authoritative; Mutable() copies
//    the base value on first touch (per-key CoW of posting lists), and
//    Erase() shadows a base entry with an empty value, which every
//    consumer in this codebase treats identically to an absent key.
//
// Freeze() flattens the current contents into a new immutable shared
// segment and re-adopts it, so `frozen; copy = frozen;` forks in O(1) and
// each copy then accumulates only its own delta. Plain (never-frozen)
// instances behave like the underlying std containers with one extra
// branch per access.

#ifndef KBREPAIR_UTIL_COW_H_
#define KBREPAIR_UTIL_COW_H_

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace kbrepair {

template <typename T>
class CowVector {
 public:
  size_t size() const { return base_size_ + tail_.size(); }
  bool empty() const { return size() == 0; }

  const T& operator[](size_t i) const {
    KBREPAIR_DCHECK(i < size());
    if (i < base_size_) {
      if (!modified_.empty()) {
        auto it = modified_.find(i);
        if (it != modified_.end()) return it->second;
      }
      return (*base_)[i];
    }
    return tail_[i - base_size_];
  }

  // Mutable view of element `i`; copies the base element into the
  // overlay on first write. References into the tail are invalidated by
  // PushBack (vector semantics); overlay references are stable.
  T& Mutable(size_t i) {
    KBREPAIR_DCHECK(i < size());
    if (i < base_size_) {
      auto it = modified_.find(i);
      if (it == modified_.end()) {
        it = modified_.emplace(i, (*base_)[i]).first;
      }
      return it->second;
    }
    return tail_[i - base_size_];
  }

  void PushBack(T value) { tail_.push_back(std::move(value)); }

  void Clear() {
    base_.reset();
    base_size_ = 0;
    modified_.clear();
    tail_.clear();
  }

  // Flattens the current contents into a new immutable shared segment,
  // adopts it (dropping the overlay and tail) and returns it. Copies
  // made afterwards share the segment and carry only their own deltas.
  std::shared_ptr<const std::vector<T>> Freeze() {
    auto flat = std::make_shared<std::vector<T>>();
    flat->reserve(size());
    for (size_t i = 0; i < size(); ++i) flat->push_back((*this)[i]);
    // Swap-with-empty, not clear(): clear() keeps the grown bucket /
    // heap arrays, and libstdc++'s copy constructor reproduces the
    // source's bucket count — every post-freeze copy would re-allocate
    // the full-size (empty) overlay and forking would silently scale
    // with base size instead of delta size.
    std::unordered_map<size_t, T>().swap(modified_);
    std::vector<T>().swap(tail_);
    base_ = flat;
    base_size_ = flat->size();
    return flat;
  }

  bool has_base() const { return base_ != nullptr; }
  size_t base_size() const { return base_size_; }
  // Elements this instance materializes itself (its delta).
  size_t overlay_size() const { return modified_.size() + tail_.size(); }

 private:
  std::shared_ptr<const std::vector<T>> base_;
  size_t base_size_ = 0;
  std::unordered_map<size_t, T> modified_;
  std::vector<T> tail_;
};

template <typename K, typename V, typename Hash = std::hash<K>>
class CowMap {
 public:
  using Map = std::unordered_map<K, V, Hash>;

  const V* Find(const K& key) const {
    if (!local_.empty()) {
      auto it = local_.find(key);
      if (it != local_.end()) return &it->second;
    }
    if (base_ != nullptr) {
      auto it = base_->find(key);
      if (it != base_->end()) return &it->second;
    }
    return nullptr;
  }

  // Mutable pointer to the value of `key`, or nullptr when absent.
  // Copies the base value into the overlay on first touch.
  V* FindMutable(const K& key) {
    auto it = local_.find(key);
    if (it != local_.end()) return &it->second;
    if (base_ != nullptr) {
      auto base_it = base_->find(key);
      if (base_it != base_->end()) {
        return &local_.emplace(key, base_it->second).first->second;
      }
    }
    return nullptr;
  }

  // Mutable value of `key`, default-constructed when absent.
  V& Mutable(const K& key) {
    V* present = FindMutable(key);
    if (present != nullptr) return *present;
    return local_[key];
  }

  // Removes `key`. A base entry cannot be physically removed, so it is
  // shadowed with an empty value — observably equivalent for every
  // consumer here (empty posting list / zero count ≡ absent).
  void Erase(const K& key) {
    if (base_ != nullptr && base_->find(key) != base_->end()) {
      local_.insert_or_assign(key, V{});
    } else {
      local_.erase(key);
    }
  }

  // Moves the value of `key` out (default-constructed when absent) and
  // removes the key, shadowing a base entry like Erase().
  V Take(const K& key) {
    V out{};
    auto it = local_.find(key);
    if (it != local_.end()) {
      out = std::move(it->second);
      local_.erase(it);
    } else if (base_ != nullptr) {
      auto base_it = base_->find(key);
      if (base_it != base_->end()) out = base_it->second;
    }
    if (base_ != nullptr && base_->find(key) != base_->end()) {
      local_.emplace(key, V{});
    }
    return out;
  }

  void Clear() {
    base_.reset();
    local_.clear();
  }

  // Flattens base + overlay into a new immutable shared base map and
  // adopts it. Empty shadow values are kept — equivalent to absent keys.
  std::shared_ptr<const Map> Freeze() {
    auto flat = std::make_shared<Map>();
    if (base_ != nullptr) *flat = *base_;
    for (auto& [key, value] : local_) {
      flat->insert_or_assign(key, std::move(value));
    }
    // Swap-with-empty, not clear(): see CowVector::Freeze() — a copied
    // empty map inherits the source's bucket count, so a cleared-but-
    // bucketed overlay would make every fork allocate (and page in) a
    // bucket array sized to the whole base.
    Map().swap(local_);
    base_ = flat;
    return flat;
  }

  bool has_base() const { return base_ != nullptr; }
  size_t overlay_size() const { return local_.size(); }

 private:
  std::shared_ptr<const Map> base_;
  Map local_;
};

}  // namespace kbrepair

#endif  // KBREPAIR_UTIL_COW_H_
