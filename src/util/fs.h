// Small durable-file helpers shared by the WAL and the transcript
// flusher: atomic whole-file replacement (tmp + fsync + rename) and
// directory fsync, with failpoint hooks for the fault-injection suite.

#ifndef KBREPAIR_UTIL_FS_H_
#define KBREPAIR_UTIL_FS_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace kbrepair {

// Writes `contents` to `path` atomically: the data lands in
// `path + ".tmp"` first, is fsync'd, then renamed over `path`, and the
// parent directory is fsync'd so the rename itself is durable. Readers
// never observe a partial file. Unavailable on any I/O failure (the
// tmp file is cleaned up best-effort).
Status AtomicWriteFile(const std::string& path, const std::string& contents);

// fsync on the directory containing `path` (durability of renames /
// unlinks inside it). Best-effort on filesystems that reject directory
// fsync; real write errors are returned.
Status FsyncParentDir(const std::string& path);

// Lexicographically sorted regular-file names (not paths) in `dir` with
// the given suffix; empty when the directory does not exist.
std::vector<std::string> ListFilesWithSuffix(const std::string& dir,
                                             const std::string& suffix);

}  // namespace kbrepair

#endif  // KBREPAIR_UTIL_FS_H_
