// CRC-32C (Castagnoli) checksums, as used by the WAL record framing.
//
// CRC-32C is the variant used by iSCSI, ext4 and most storage-engine
// WALs (LevelDB, RocksDB): its polynomial (0x1EDC6F41) has better
// error-detection properties for typical storage bit-flip patterns than
// the zlib CRC-32. This is a portable table-driven software
// implementation — WAL records are small (hundreds of bytes), so the
// checksum is nowhere near the fsync-dominated append path's cost.

#ifndef KBREPAIR_UTIL_CRC32C_H_
#define KBREPAIR_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace kbrepair {

// Extends `crc` (the running checksum of some prefix) with `n` more
// bytes. Pass 0 to start a fresh checksum.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

// Checksum of a whole buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

inline uint32_t Crc32c(const std::string& s) {
  return Crc32c(s.data(), s.size());
}

}  // namespace kbrepair

#endif  // KBREPAIR_UTIL_CRC32C_H_
