// Socket setup helpers shared by every listener in the daemon (the
// HTTP exporter and the JSON-lines connection listener) and by the
// client's connect paths: one place that gets SO_REUSEADDR, CLOEXEC,
// ephemeral-port discovery and port-file publication right.
//
// All functions return raw fds owned by the caller (close() them) and
// never throw; errors come back as Status with the errno text folded
// into the message.

#ifndef KBREPAIR_UTIL_NET_H_
#define KBREPAIR_UTIL_NET_H_

#include <string>

#include "util/status.h"

namespace kbrepair {
namespace net {

// Creates a TCP listener bound to `bind_address:port` (port 0 = pick an
// ephemeral port) with SO_REUSEADDR and CLOEXEC set. Returns the
// listening fd.
StatusOr<int> ListenTcp(const std::string& bind_address, int port,
                        int backlog);

// The actual bound port of a TCP listening fd (resolves port 0).
StatusOr<int> BoundTcpPort(int fd);

// Creates a Unix-domain stream listener at `path` (CLOEXEC set). An
// existing socket file at `path` is unlinked first so daemon restarts
// do not fail with EADDRINUSE. Returns the listening fd.
StatusOr<int> ListenUnix(const std::string& path, int backlog);

// Blocking connect to a TCP endpoint / Unix-domain socket path.
// Returns the connected fd (CLOEXEC set).
StatusOr<int> ConnectTcp(const std::string& host, int port);
StatusOr<int> ConnectUnix(const std::string& path);

// Publishes the bound port atomically (tmp + fsync + rename), so a
// watcher polling the file never reads a partial number.
Status WritePortFile(const std::string& path, int port);

// O_NONBLOCK on an existing fd (for event-loop sockets).
Status SetNonBlocking(int fd);

// accept4(CLOEXEC) wrapper: returns the connection fd, -1 on a benign
// retryable error (EINTR/ECONNABORTED/EAGAIN), or a Status on a real
// accept failure.
StatusOr<int> AcceptConnection(int listen_fd);

}  // namespace net
}  // namespace kbrepair

#endif  // KBREPAIR_UTIL_NET_H_
