// Deterministic fault injection, in the spirit of the FAIL_POINT
// machinery used by storage engines: named points in production code
// that tests (or an operator, via KBREPAIR_FAILPOINTS / --failpoints)
// can arm to fail a bounded number of times.
//
// A failpoint is identified by a stable string name ("wal.append",
// "chase.saturate", ...). Production code asks ShouldFail(name) at the
// point where a failure should be simulated; the call is a single
// relaxed atomic load when no failpoint is armed, so instrumented hot
// paths stay free.
//
// Spec grammar (comma-separated list):
//   name          arm `name` to fail on every hit
//   name=N        fail the first N hits, then behave normally
//   name=S:N      skip the first S hits, fail the next N, then pass
//
// Example: KBREPAIR_FAILPOINTS="wal.fsync=1,chase.saturate=2:1"

#ifndef KBREPAIR_UTIL_FAILPOINT_H_
#define KBREPAIR_UTIL_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace kbrepair {
namespace failpoint {

// Arms `name`: skip the first `skip` hits, fail the following `fail`
// hits (fail < 0 means "fail forever"). Resets the hit counter.
void Arm(const std::string& name, int64_t skip, int64_t fail);

// Disarms a single failpoint.
void Disarm(const std::string& name);

// Disarms everything and clears hit counters (test teardown).
void Reset();

// Parses a spec (see grammar above) and arms each entry.
// InvalidArgument on malformed input; already-armed points untouched on
// failure.
Status Configure(const std::string& spec);

// Arms failpoints from the KBREPAIR_FAILPOINTS environment variable.
// Invoked lazily by ShouldFail too, so binaries that never call it
// still honor the variable. A malformed variable is reported once on
// stderr and ignored.
void InitFromEnvOnce();

// True when this hit of `name` should simulate a failure. Counts hits
// of armed points.
bool ShouldFail(const char* name);

// Total hits observed for an armed point (0 when never armed).
uint64_t Hits(const std::string& name);

// Names of the currently armed points, sorted. Used by the `failpoint`
// admin command so chaos harnesses can verify what is in force.
std::vector<std::string> ArmedNames();

}  // namespace failpoint

// Convenience: simulate a failure by returning `status_expr` from the
// enclosing function when failpoint `name` fires.
#define KBREPAIR_FAILPOINT(name, status_expr)                      \
  do {                                                             \
    if (::kbrepair::failpoint::ShouldFail(name)) return (status_expr); \
  } while (0)

}  // namespace kbrepair

#endif  // KBREPAIR_UTIL_FAILPOINT_H_
