// ThreadPool: a small fixed worker pool with a blocking ParallelFor.
//
// Built for the wave-based parallel chase: each wave fans one read-only
// enumeration pass out across `num_slots` disjoint index ranges, then the
// caller merges results sequentially. The pool is deliberately minimal —
// no futures, no task queue — because the chase needs exactly "run this
// closure for slot s in [0, n) on up to K threads and wait".
//
// The calling thread participates as a consumer too, so a pool built with
// `threads = 1` spawns zero workers and ParallelFor degenerates to a
// plain loop on the caller (no synchronization, no thread handoff). This
// is what makes `--chase-threads 1` run the identical algorithm with no
// pool overhead.
//
// Determinism contract: ParallelFor guarantees every index in [0, n) is
// executed exactly once and has completed when the call returns. It
// guarantees nothing about execution order — callers must write results
// into per-index (or per-slot) storage and merge in index order
// afterwards.

#ifndef KBREPAIR_UTIL_THREAD_POOL_H_
#define KBREPAIR_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace kbrepair {

class ThreadPool {
 public:
  // `num_threads` counts the caller: a pool of N uses N-1 spawned workers
  // plus the calling thread inside ParallelFor.
  explicit ThreadPool(size_t num_threads) {
    KBREPAIR_CHECK(num_threads >= 1);
    size_t workers = num_threads - 1;
    workers_.reserve(workers);
    for (size_t i = 0; i < workers; ++i) {
      // Worker ids start at 1; the calling thread is worker 0.
      workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
    }
  }

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size() + 1; }

  // Runs fn(i, worker) for every i in [0, n), where `worker` identifies
  // the executing thread (caller = 0, spawned workers = 1..N-1) so
  // callers can keep per-thread scratch (e.g. one arena per worker)
  // without synchronization. Blocks until all n calls have completed AND
  // every worker that joined this batch has left it, so the closure's
  // storage may be reclaimed the moment ParallelFor returns.
  // Not reentrant: fn must not call ParallelFor on the same pool.
  void ParallelFor(size_t n,
                   const std::function<void(size_t, size_t)>& fn) {
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
      for (size_t i = 0; i < n; ++i) fn(i, 0);
      return;
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      fn_ = &fn;
      total_ = n;
      next_.store(0, std::memory_order_relaxed);
      remaining_.store(n, std::memory_order_relaxed);
      ++generation_;
    }
    wake_.notify_all();
    DrainIndices(fn, n, /*worker=*/0);
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock, [this] {
      return remaining_.load(std::memory_order_acquire) == 0 &&
             active_workers_ == 0;
    });
    fn_ = nullptr;
  }

 private:
  void DrainIndices(const std::function<void(size_t, size_t)>& fn,
                    size_t total, size_t worker) {
    while (true) {
      size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) break;
      fn(i, worker);
      if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last index overall: wake the caller blocked in ParallelFor.
        std::unique_lock<std::mutex> lock(mu_);
        done_.notify_all();
      }
    }
  }

  void WorkerLoop(size_t worker) {
    uint64_t seen_generation = 0;
    while (true) {
      const std::function<void(size_t, size_t)>* fn = nullptr;
      size_t total = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [&] {
          return shutdown_ || generation_ != seen_generation;
        });
        if (shutdown_) return;
        seen_generation = generation_;
        // A worker that wakes after the batch already finished sees
        // fn_ == nullptr and simply goes back to sleep. A worker that
        // joins in time is counted in active_workers_, which blocks
        // ParallelFor from returning (and the next batch from starting)
        // until this worker has drained — no stale closure can ever be
        // invoked against a later batch's indices.
        if (fn_ == nullptr) continue;
        fn = fn_;
        total = total_;
        ++active_workers_;
      }
      DrainIndices(*fn, total, worker);
      {
        std::unique_lock<std::mutex> lock(mu_);
        --active_workers_;
      }
      done_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::vector<std::thread> workers_;
  const std::function<void(size_t, size_t)>* fn_ = nullptr;
  size_t total_ = 0;
  uint64_t generation_ = 0;
  size_t active_workers_ = 0;
  bool shutdown_ = false;
  std::atomic<size_t> next_{0};
  std::atomic<size_t> remaining_{0};
};

}  // namespace kbrepair

#endif  // KBREPAIR_UTIL_THREAD_POOL_H_
