#include "util/failpoint.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <unordered_map>

namespace kbrepair {
namespace failpoint {
namespace {

struct PointState {
  int64_t skip = 0;   // hits to let pass before failing
  int64_t fail = 0;   // hits to fail after the skips; < 0 = forever
  uint64_t hits = 0;  // total hits while armed
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, PointState> points;
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

// Fast-path gate: ShouldFail is a single relaxed load when nothing is
// armed, so failpoints cost nothing in production hot loops.
std::atomic<bool> g_any_armed{false};

Status ParseOne(const std::string& entry) {
  const size_t eq = entry.find('=');
  const std::string name = entry.substr(0, eq);
  if (name.empty()) {
    return Status::InvalidArgument("failpoint spec: empty name in '" + entry +
                                   "'");
  }
  int64_t skip = 0;
  int64_t fail = -1;  // bare name: fail forever
  if (eq != std::string::npos) {
    const std::string counts = entry.substr(eq + 1);
    const size_t colon = counts.find(':');
    try {
      if (colon == std::string::npos) {
        fail = std::stoll(counts);
      } else {
        skip = std::stoll(counts.substr(0, colon));
        fail = std::stoll(counts.substr(colon + 1));
      }
    } catch (...) {
      return Status::InvalidArgument("failpoint spec: bad counts in '" +
                                     entry + "'");
    }
    if (skip < 0 || fail < 0) {
      return Status::InvalidArgument("failpoint spec: negative count in '" +
                                     entry + "'");
    }
  }
  Arm(name, skip, fail);
  return Status::Ok();
}

}  // namespace

void Arm(const std::string& name, int64_t skip, int64_t fail) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.points[name] = PointState{skip, fail, 0};
  g_any_armed.store(true, std::memory_order_release);
}

void Disarm(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.points.erase(name);
  if (r.points.empty()) g_any_armed.store(false, std::memory_order_release);
}

void Reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.points.clear();
  g_any_armed.store(false, std::memory_order_release);
}

Status Configure(const std::string& spec) {
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(start, comma - start);
    if (!entry.empty()) KBREPAIR_RETURN_IF_ERROR(ParseOne(entry));
    start = comma + 1;
  }
  return Status::Ok();
}

void InitFromEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* spec = std::getenv("KBREPAIR_FAILPOINTS");
    if (spec == nullptr || spec[0] == '\0') return;
    const Status status = Configure(spec);
    if (!status.ok()) {
      std::cerr << "[kbrepair] ignoring KBREPAIR_FAILPOINTS: " << status
                << "\n";
    }
  });
}

bool ShouldFail(const char* name) {
  InitFromEnvOnce();
  if (!g_any_armed.load(std::memory_order_acquire)) return false;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(name);
  if (it == r.points.end()) return false;
  PointState& state = it->second;
  ++state.hits;
  if (state.skip > 0) {
    --state.skip;
    return false;
  }
  if (state.fail < 0) return true;
  if (state.fail > 0) {
    --state.fail;
    return true;
  }
  return false;
}

uint64_t Hits(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.hits;
}

std::vector<std::string> ArmedNames() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.points.size());
  for (const auto& entry : r.points) names.push_back(entry.first);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace failpoint
}  // namespace kbrepair
