// A minimal JSON value type with a hand-rolled parser and compact
// writer — just enough for the repair service's newline-delimited wire
// protocol and transcript snapshots, with no third-party dependency.
//
// Deliberate simplifications:
//  * numbers are stored as double (exact for integers up to 2^53, which
//    covers every id and counter the project produces);
//  * objects preserve insertion order and are searched linearly (wire
//    objects have a handful of keys);
//  * Dump() emits compact one-line JSON with no embedded newlines, so a
//    dumped value is always a valid JSON-lines record.

#ifndef KBREPAIR_UTIL_JSON_H_
#define KBREPAIR_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace kbrepair {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  // Default-constructs JSON null.
  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool value) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = value;
    return v;
  }
  static JsonValue Number(double value) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = value;
    return v;
  }
  static JsonValue Number(int64_t value) {
    return Number(static_cast<double>(value));
  }
  static JsonValue Number(uint64_t value) {
    return Number(static_cast<double>(value));
  }
  static JsonValue String(std::string value) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(value);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Accessors return a neutral default when the kind mismatches, so wire
  // handlers can probe optional fields without branching on kind first.
  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  int64_t AsInt(int64_t fallback = 0) const {
    return is_number() ? static_cast<int64_t>(number_) : fallback;
  }
  const std::string& AsString() const {
    static const std::string kEmpty;
    return is_string() ? string_ : kEmpty;
  }

  // --- Arrays ------------------------------------------------------------

  size_t size() const {
    return is_array() ? items_.size() : (is_object() ? members_.size() : 0);
  }
  const JsonValue& at(size_t index) const;
  JsonValue& Append(JsonValue value);

  // --- Objects -----------------------------------------------------------

  // Returns the member value or nullptr when absent / not an object.
  const JsonValue* Find(const std::string& key) const;
  // Find() with a JSON-null fallback, for one-liner optional reads.
  const JsonValue& Get(const std::string& key) const;
  bool Has(const std::string& key) const { return Find(key) != nullptr; }
  // Inserts or overwrites a member; returns *this for chaining.
  JsonValue& Set(const std::string& key, JsonValue value);
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // Compact serialization (no whitespace, '\n'-free; see header comment).
  std::string Dump() const;

  // Parses one JSON document; trailing non-whitespace is an error.
  // Errors carry a byte offset.
  static StatusOr<JsonValue> Parse(const std::string& text);

  bool operator==(const JsonValue& other) const;
  bool operator!=(const JsonValue& other) const { return !(*this == other); }

 private:
  void DumpTo(std::string& out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                              // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;    // kObject
};

// Escapes `text` as a JSON string literal, including the quotes.
std::string JsonEscape(const std::string& text);

}  // namespace kbrepair

#endif  // KBREPAIR_UTIL_JSON_H_
