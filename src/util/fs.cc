#include "util/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <string.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "util/errno_text.h"
#include "util/failpoint.h"

namespace kbrepair {
namespace {

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  KBREPAIR_FAILPOINT("fs.atomic_write",
                     Status::Unavailable("injected atomic-write failure: " + path));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Unavailable("open " + tmp + ": " + ErrnoText());
  }
  size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Status::Unavailable("write " + tmp + ": " + ErrnoText());
      ::close(fd);
      ::unlink(tmp.c_str());
      return status;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0 || failpoint::ShouldFail("fs.fsync")) {
    const Status status = Status::Unavailable("fsync " + tmp + ": " + ErrnoText());
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::Unavailable("close " + tmp + ": " + ErrnoText());
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status status =
        Status::Unavailable("rename " + tmp + " -> " + path + ": " + ErrnoText());
    ::unlink(tmp.c_str());
    return status;
  }
  return FsyncParentDir(path);
}

Status FsyncParentDir(const std::string& path) {
  const std::string dir = ParentDir(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Unavailable("open dir " + dir + ": " + ErrnoText());
  }
  // Some filesystems (and sandboxes) reject fsync on directories with
  // EINVAL; that is not a data-loss signal, so only real I/O errors
  // propagate.
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0 && saved_errno != EINVAL && saved_errno != EBADF) {
    return Status::Unavailable("fsync dir " + dir + ": " +
                               ErrnoText(saved_errno));
  }
  return Status::Ok();
}

std::vector<std::string> ListFilesWithSuffix(const std::string& dir,
                                             const std::string& suffix) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() < suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace kbrepair
