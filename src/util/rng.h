// Deterministic random number generation.
//
// Every randomized component in the project (workload generators, the
// random questioning strategy, the simulated user) takes an explicit
// 64-bit seed and owns an Rng, so experiments are reproducible
// run-to-run and across machines.

#ifndef KBREPAIR_UTIL_RNG_H_
#define KBREPAIR_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "util/logging.h"

namespace kbrepair {

// A thin seeded wrapper around std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    KBREPAIR_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Uniform index in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n) {
    KBREPAIR_DCHECK(n > 0);
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  // Uniform real in [0, 1).
  double UniformDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  // Returns true with probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return UniformDouble() < p;
  }

  // Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Choose(const std::vector<T>& items) {
    KBREPAIR_CHECK(!items.empty());
    return items[UniformIndex(items.size())];
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[UniformIndex(i)]);
    }
  }

  // Derives an independent child seed (for handing sub-components their
  // own Rng without correlating streams).
  uint64_t NextSeed() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace kbrepair

#endif  // KBREPAIR_UTIL_RNG_H_
