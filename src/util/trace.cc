#include "util/trace.h"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <mutex>

#include "util/fs.h"
#include "util/json.h"

namespace kbrepair {
namespace trace {

namespace {

// Cap on completed spans buffered per thread between drains; beyond it
// new spans are counted in dropped() instead of growing without bound.
constexpr size_t kMaxBufferedSpansPerThread = 1 << 16;

using Clock = std::chrono::steady_clock;

double SecondsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kRepairability: return "repairability";
    case Phase::kQuestionGen: return "question_gen";
    case Phase::kApplyFix: return "apply_fix";
    case Phase::kChase: return "chase";
    case Phase::kDeltaChase: return "delta_chase";
    case Phase::kConflictScan: return "conflict_scan";
    case Phase::kWalAppend: return "wal_append";
    case Phase::kNone: return "none";
  }
  return "unknown";
}

PhaseTotals PhaseTotals::Since(const PhaseTotals& earlier) const {
  PhaseTotals delta;
  for (size_t i = 0; i < kNumPhases; ++i) {
    delta.seconds[i] = seconds[i] - earlier.seconds[i];
  }
  return delta;
}

void PhaseTotals::Add(const PhaseTotals& delta) {
  for (size_t i = 0; i < kNumPhases; ++i) seconds[i] += delta.seconds[i];
}

double PhaseTotals::TotalSeconds() const {
  double total = 0.0;
  for (size_t i = 0; i < kNumPhases; ++i) total += seconds[i];
  return total;
}

// Per-thread recording state. The owning thread touches `buffer` only
// under `mu` (uncontended except while a drain is in progress); the
// phase accumulator and span stack are owner-only and need no lock.
struct ThreadState {
  PhaseTotals phase_totals;
  std::vector<uint64_t> span_stack;

  std::mutex mu;
  std::vector<SpanRecord> buffer;
  uint32_t index = 0;

  ~ThreadState();
};

namespace {

// Registry of live (and orphaned) thread states. ThreadState lifetime:
// registered on first recorded span, moved to `orphans` by the thread's
// destructor so late drains still see its spans.
struct Registry {
  std::mutex mu;
  std::vector<ThreadState*> threads;
  std::vector<SpanRecord> orphans;
  uint32_t next_thread_index = 1;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

struct SinkConfig {
  std::mutex mu;
  std::string dir;
};

SinkConfig& GlobalSink() {
  static SinkConfig* sink = new SinkConfig();
  return *sink;
}

thread_local ThreadState t_state;
thread_local bool t_registered = false;

void RegisterThisThread() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  t_state.index = registry.next_thread_index++;
  registry.threads.push_back(&t_state);
  t_registered = true;
}

}  // namespace

ThreadState::~ThreadState() {
  if (!t_registered) return;
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.threads.erase(
      std::remove(registry.threads.begin(), registry.threads.end(), this),
      registry.threads.end());
  std::lock_guard<std::mutex> buffer_lock(mu);
  registry.orphans.insert(registry.orphans.end(),
                          std::make_move_iterator(buffer.begin()),
                          std::make_move_iterator(buffer.end()));
  buffer.clear();
}

PhaseTotals ThreadPhaseTotals() { return t_state.phase_totals; }

JsonValue SpanToJson(const SpanRecord& span) {
  JsonValue out = JsonValue::Object();
  out.Set("id", JsonValue::Number(static_cast<int64_t>(span.id)));
  out.Set("parent", JsonValue::Number(static_cast<int64_t>(span.parent)));
  out.Set("name", JsonValue::String(span.name));
  if (span.phase != Phase::kNone) {
    out.Set("phase", JsonValue::String(PhaseName(span.phase)));
  }
  out.Set("thread", JsonValue::Number(static_cast<int64_t>(span.thread)));
  out.Set("start_us", JsonValue::Number(span.start_us));
  out.Set("dur_us", JsonValue::Number(span.duration_us));
  if (!span.detail.empty()) {
    out.Set("detail", JsonValue::String(span.detail));
  }
  return out;
}

std::string SpanToJsonLine(const SpanRecord& span) {
  return SpanToJson(span).Dump();
}

Recorder& Recorder::Instance() {
  static Recorder* recorder = new Recorder();
  return *recorder;
}

std::atomic<bool>& Recorder::enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

void Recorder::Enable(std::string dir) {
  {
    SinkConfig& sink = GlobalSink();
    std::lock_guard<std::mutex> lock(sink.mu);
    sink.dir = std::move(dir);
  }
  epoch_ = Clock::now();
  dropped_.store(0, std::memory_order_relaxed);
  enabled_flag().store(true, std::memory_order_relaxed);
}

void Recorder::Disable() {
  enabled_flag().store(false, std::memory_order_relaxed);
  Drain();  // discard
  SinkConfig& sink = GlobalSink();
  std::lock_guard<std::mutex> lock(sink.mu);
  sink.dir.clear();
}

bool Recorder::has_sink() const {
  SinkConfig& sink = GlobalSink();
  std::lock_guard<std::mutex> lock(sink.mu);
  return !sink.dir.empty();
}

std::vector<SpanRecord> Recorder::Drain() {
  std::vector<SpanRecord> drained;
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (ThreadState* state : registry.threads) {
    std::lock_guard<std::mutex> buffer_lock(state->mu);
    drained.insert(drained.end(),
                   std::make_move_iterator(state->buffer.begin()),
                   std::make_move_iterator(state->buffer.end()));
    state->buffer.clear();
  }
  drained.insert(drained.end(),
                 std::make_move_iterator(registry.orphans.begin()),
                 std::make_move_iterator(registry.orphans.end()));
  registry.orphans.clear();
  std::stable_sort(drained.begin(), drained.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_us < b.start_us;
                   });
  return drained;
}

StatusOr<std::string> Recorder::DrainToFile(std::vector<SpanRecord>* spans) {
  std::string dir;
  {
    SinkConfig& sink = GlobalSink();
    std::lock_guard<std::mutex> lock(sink.mu);
    dir = sink.dir;
  }
  if (dir.empty()) {
    return Status::InvalidArgument("no trace sink directory configured");
  }
  std::vector<SpanRecord> drained = Drain();
  std::string contents;
  contents.reserve(drained.size() * 96);
  for (const SpanRecord& span : drained) {
    contents += SpanToJsonLine(span);
    contents += '\n';
  }
  const uint64_t seq = next_file_seq_.fetch_add(1, std::memory_order_relaxed);
  char name[40];
  std::snprintf(name, sizeof(name), "trace-%05llu.jsonl",
                static_cast<unsigned long long>(seq));
  const std::string path = dir + "/" + name;
  Status written = AtomicWriteFile(path, contents);
  if (spans != nullptr) *spans = std::move(drained);
  if (!written.ok()) return written;
  return path;
}

ScopedSpan::ScopedSpan(const char* name, Phase phase)
    : name_(name),
      phase_(phase),
      recording_(Recorder::enabled()),
      start_(Clock::now()) {
  if (!recording_) return;
  Recorder& recorder = Recorder::Instance();
  id_ = recorder.next_span_id_.fetch_add(1, std::memory_order_relaxed);
  parent_ = t_state.span_stack.empty() ? 0 : t_state.span_stack.back();
  t_state.span_stack.push_back(id_);
}

ScopedSpan::~ScopedSpan() {
  const Clock::time_point end = Clock::now();
  if (phase_ != Phase::kNone) {
    t_state.phase_totals.seconds[static_cast<size_t>(phase_)] +=
        SecondsBetween(start_, end);
  }
  if (!recording_) return;
  // Balanced by construction: we pushed id_ in the constructor, and
  // ScopedSpan is scope-bound, so our id is on top.
  t_state.span_stack.pop_back();
  // If the recorder was disabled while this span was open, drop it:
  // its start is measured against an epoch that may be reset before
  // the buffer is next drained.
  if (!Recorder::enabled()) return;
  if (!t_registered) RegisterThisThread();

  Recorder& recorder = Recorder::Instance();
  SpanRecord record;
  record.id = id_;
  record.parent = parent_;
  record.name = name_;
  record.phase = phase_;
  record.start_us = std::chrono::duration_cast<std::chrono::microseconds>(
                        start_ - recorder.epoch_)
                        .count();
  record.duration_us =
      std::chrono::duration_cast<std::chrono::microseconds>(end - start_)
          .count();
  record.thread = t_state.index;
  record.detail = std::move(detail_);

  std::lock_guard<std::mutex> lock(t_state.mu);
  if (t_state.buffer.size() >= kMaxBufferedSpansPerThread) {
    recorder.dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  t_state.buffer.push_back(std::move(record));
}

void ScopedSpan::Annotate(const std::string& detail) {
  if (!recording_) return;
  if (!detail_.empty()) detail_ += ' ';
  detail_ += detail;
}

}  // namespace trace
}  // namespace kbrepair
