// Tuple-generating dependencies (existential rules).
//
//   R : forall x forall y  B(x,y) -> exists z  H(y,z)
//
// Body and head are conjunctions of atoms; variables shared between body
// and head form the frontier, head-only variables are existential and are
// instantiated with fresh labeled nulls by the chase ("safe(H)" in the
// paper).

#ifndef KBREPAIR_RULES_TGD_H_
#define KBREPAIR_RULES_TGD_H_

#include <string>
#include <vector>

#include "kb/atom.h"
#include "kb/symbol_table.h"
#include "util/status.h"

namespace kbrepair {

class Tgd {
 public:
  // Validates and builds a TGD. Fails if body or head is empty, or if the
  // head contains constants-only atoms sharing no variable with anything
  // (allowed, actually) — the only hard requirements are non-emptiness
  // and that all terms are constants or variables (no nulls in rules).
  static StatusOr<Tgd> Create(std::vector<Atom> body, std::vector<Atom> head,
                              const SymbolTable& symbols);

  const std::vector<Atom>& body() const { return body_; }
  const std::vector<Atom>& head() const { return head_; }

  // Variables occurring in both body and head.
  const std::vector<TermId>& frontier_variables() const {
    return frontier_variables_;
  }
  // Head-only variables, instantiated as fresh nulls by the chase.
  const std::vector<TermId>& existential_variables() const {
    return existential_variables_;
  }

  // "body -> head" rendering.
  std::string ToString(const SymbolTable& symbols) const;

  // Optional human-readable rule label ("[r1]" in DLGP); empty if unset.
  const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

 private:
  Tgd() = default;

  std::string label_;
  std::vector<Atom> body_;
  std::vector<Atom> head_;
  std::vector<TermId> frontier_variables_;
  std::vector<TermId> existential_variables_;
};

// Collects the distinct variables of a conjunction, in first-occurrence
// order.
std::vector<TermId> CollectVariables(const std::vector<Atom>& atoms,
                                     const SymbolTable& symbols);

}  // namespace kbrepair

#endif  // KBREPAIR_RULES_TGD_H_
