#include "rules/weak_acyclicity.h"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/logging.h"

namespace kbrepair {

namespace {

// Dense node ids for (predicate, position) pairs.
class PositionGraph {
 public:
  int NodeFor(PredicateId pred, int pos) {
    const uint64_t key =
        (static_cast<uint64_t>(static_cast<uint32_t>(pred)) << 8) |
        static_cast<uint64_t>(pos);
    auto [it, inserted] = node_ids_.emplace(key, num_nodes_);
    if (inserted) {
      ++num_nodes_;
      regular_edges_.emplace_back();
      special_edges_.emplace_back();
    }
    return it->second;
  }

  void AddRegularEdge(int from, int to) {
    regular_edges_[static_cast<size_t>(from)].insert(to);
  }
  void AddSpecialEdge(int from, int to) {
    special_edges_[static_cast<size_t>(from)].insert(to);
  }

  int num_nodes() const { return num_nodes_; }
  const std::unordered_set<int>& regular_edges(int node) const {
    return regular_edges_[static_cast<size_t>(node)];
  }
  const std::unordered_set<int>& special_edges(int node) const {
    return special_edges_[static_cast<size_t>(node)];
  }

 private:
  std::unordered_map<uint64_t, int> node_ids_;
  int num_nodes_ = 0;
  std::vector<std::unordered_set<int>> regular_edges_;
  std::vector<std::unordered_set<int>> special_edges_;
};

// Iterative Tarjan SCC over the union of regular and special edges.
std::vector<int> StronglyConnectedComponents(const PositionGraph& graph) {
  const int n = graph.num_nodes();
  std::vector<int> component(static_cast<size_t>(n), -1);
  std::vector<int> index(static_cast<size_t>(n), -1);
  std::vector<int> lowlink(static_cast<size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<size_t>(n), false);
  std::vector<int> stack;
  int next_index = 0;
  int next_component = 0;

  struct Frame {
    int node;
    std::vector<int> successors;
    size_t next_successor;
  };

  auto successors_of = [&graph](int node) {
    std::vector<int> successors;
    for (int to : graph.regular_edges(node)) successors.push_back(to);
    for (int to : graph.special_edges(node)) successors.push_back(to);
    return successors;
  };

  for (int start = 0; start < n; ++start) {
    if (index[static_cast<size_t>(start)] != -1) continue;
    std::vector<Frame> frames;
    frames.push_back(Frame{start, successors_of(start), 0});
    index[static_cast<size_t>(start)] = next_index;
    lowlink[static_cast<size_t>(start)] = next_index;
    ++next_index;
    stack.push_back(start);
    on_stack[static_cast<size_t>(start)] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const int v = frame.node;
      if (frame.next_successor < frame.successors.size()) {
        const int w = frame.successors[frame.next_successor++];
        if (index[static_cast<size_t>(w)] == -1) {
          index[static_cast<size_t>(w)] = next_index;
          lowlink[static_cast<size_t>(w)] = next_index;
          ++next_index;
          stack.push_back(w);
          on_stack[static_cast<size_t>(w)] = true;
          frames.push_back(Frame{w, successors_of(w), 0});
        } else if (on_stack[static_cast<size_t>(w)]) {
          lowlink[static_cast<size_t>(v)] =
              std::min(lowlink[static_cast<size_t>(v)],
                       index[static_cast<size_t>(w)]);
        }
      } else {
        if (lowlink[static_cast<size_t>(v)] ==
            index[static_cast<size_t>(v)]) {
          while (true) {
            const int w = stack.back();
            stack.pop_back();
            on_stack[static_cast<size_t>(w)] = false;
            component[static_cast<size_t>(w)] = next_component;
            if (w == v) break;
          }
          ++next_component;
        }
        frames.pop_back();
        if (!frames.empty()) {
          Frame& parent = frames.back();
          lowlink[static_cast<size_t>(parent.node)] =
              std::min(lowlink[static_cast<size_t>(parent.node)],
                       lowlink[static_cast<size_t>(v)]);
        }
      }
    }
  }
  return component;
}

PositionGraph BuildPositionGraph(const std::vector<Tgd>& tgds,
                                 const SymbolTable& symbols) {
  PositionGraph graph;
  for (const Tgd& tgd : tgds) {
    // Body positions of each variable.
    std::unordered_map<TermId, std::vector<int>> body_positions;
    for (const Atom& atom : tgd.body()) {
      for (int pos = 0; pos < atom.arity(); ++pos) {
        const TermId term = atom.args[static_cast<size_t>(pos)];
        if (symbols.IsVariable(term)) {
          body_positions[term].push_back(
              graph.NodeFor(atom.predicate, pos));
        }
      }
    }
    // Head positions of frontier variables and of existential variables.
    std::unordered_map<TermId, std::vector<int>> head_positions;
    std::vector<int> existential_positions;
    const std::unordered_set<TermId> existentials(
        tgd.existential_variables().begin(),
        tgd.existential_variables().end());
    for (const Atom& atom : tgd.head()) {
      for (int pos = 0; pos < atom.arity(); ++pos) {
        const TermId term = atom.args[static_cast<size_t>(pos)];
        if (!symbols.IsVariable(term)) continue;
        const int node = graph.NodeFor(atom.predicate, pos);
        if (existentials.count(term) > 0) {
          existential_positions.push_back(node);
        } else {
          head_positions[term].push_back(node);
        }
      }
    }
    // Edges from every body position of every frontier variable.
    for (const auto& [var, from_nodes] : body_positions) {
      auto head_it = head_positions.find(var);
      if (head_it == head_positions.end()) continue;  // not in head
      for (int from : from_nodes) {
        for (int to : head_it->second) graph.AddRegularEdge(from, to);
        for (int to : existential_positions) graph.AddSpecialEdge(from, to);
      }
    }
  }
  return graph;
}

}  // namespace

bool IsWeaklyAcyclic(const std::vector<Tgd>& tgds,
                     const SymbolTable& symbols) {
  const PositionGraph graph = BuildPositionGraph(tgds, symbols);
  const std::vector<int> component = StronglyConnectedComponents(graph);
  // A special edge inside one SCC lies on a cycle through itself.
  for (int node = 0; node < graph.num_nodes(); ++node) {
    for (int to : graph.special_edges(node)) {
      if (component[static_cast<size_t>(node)] ==
          component[static_cast<size_t>(to)]) {
        return false;
      }
    }
  }
  return true;
}

Status CheckWeaklyAcyclic(const std::vector<Tgd>& tgds,
                          const SymbolTable& symbols) {
  if (IsWeaklyAcyclic(tgds, symbols)) return Status::Ok();
  return Status::FailedPrecondition(
      "TGD set is not weakly acyclic; the chase may not terminate "
      "(the paper restricts to weakly-acyclic TGDs, Section 2)");
}

}  // namespace kbrepair
