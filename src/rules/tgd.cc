#include "rules/tgd.h"

#include <algorithm>
#include <unordered_set>

namespace kbrepair {

std::vector<TermId> CollectVariables(const std::vector<Atom>& atoms,
                                     const SymbolTable& symbols) {
  std::vector<TermId> variables;
  std::unordered_set<TermId> seen;
  for (const Atom& atom : atoms) {
    for (TermId term : atom.args) {
      if (symbols.IsVariable(term) && seen.insert(term).second) {
        variables.push_back(term);
      }
    }
  }
  return variables;
}

namespace {

Status ValidateRuleAtoms(const std::vector<Atom>& atoms,
                         const SymbolTable& symbols, const char* part) {
  for (const Atom& atom : atoms) {
    if (atom.predicate == kInvalidPredicate) {
      return Status::InvalidArgument(std::string(part) +
                                     " contains an atom without predicate");
    }
    if (atom.arity() != symbols.predicate_arity(atom.predicate)) {
      return Status::InvalidArgument(
          std::string(part) + " atom arity mismatch for predicate " +
          symbols.predicate_name(atom.predicate));
    }
    for (TermId term : atom.args) {
      if (symbols.IsNull(term)) {
        return Status::InvalidArgument(
            std::string(part) + " contains a labeled null; rules may only "
                                "use constants and variables");
      }
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<Tgd> Tgd::Create(std::vector<Atom> body, std::vector<Atom> head,
                          const SymbolTable& symbols) {
  if (body.empty()) {
    return Status::InvalidArgument("TGD body must be non-empty");
  }
  if (head.empty()) {
    return Status::InvalidArgument("TGD head must be non-empty");
  }
  KBREPAIR_RETURN_IF_ERROR(ValidateRuleAtoms(body, symbols, "TGD body"));
  KBREPAIR_RETURN_IF_ERROR(ValidateRuleAtoms(head, symbols, "TGD head"));

  Tgd tgd;
  tgd.body_ = std::move(body);
  tgd.head_ = std::move(head);

  const std::vector<TermId> body_vars =
      CollectVariables(tgd.body_, symbols);
  const std::unordered_set<TermId> body_var_set(body_vars.begin(),
                                                body_vars.end());
  for (TermId var : CollectVariables(tgd.head_, symbols)) {
    if (body_var_set.count(var) > 0) {
      tgd.frontier_variables_.push_back(var);
    } else {
      tgd.existential_variables_.push_back(var);
    }
  }
  return tgd;
}

std::string Tgd::ToString(const SymbolTable& symbols) const {
  return AtomsToString(body_, symbols) + " -> " +
         AtomsToString(head_, symbols);
}

}  // namespace kbrepair
