// Contradiction-detecting dependencies.
//
//   N : forall x  B(x) -> ⊥
//
// CDDs are the paper's subset of denial constraints: bodies are
// conjunctions of atoms, optionally with equality predicates but never
// inequalities. Equalities are normalized away at construction time by
// unifying terms (union-find), so the stored body is equality-free and
// can be evaluated by the plain homomorphism engine.
//
// Following Section 2, a meaningful CDD must contain a join variable
// (a variable occurring in at least two argument positions); single-atom
// schema-level constraints such as p(X,Y) -> ⊥ are rejected unless the
// body carries constants that make the constraint selective.

#ifndef KBREPAIR_RULES_CDD_H_
#define KBREPAIR_RULES_CDD_H_

#include <string>
#include <utility>
#include <vector>

#include "kb/atom.h"
#include "kb/symbol_table.h"
#include "util/status.h"

namespace kbrepair {

// An equality between two terms in a CDD body (variable-variable or
// variable-constant; constant-constant equalities are checked and
// eliminated).
struct TermEquality {
  TermId left = kInvalidTerm;
  TermId right = kInvalidTerm;
};

class Cdd {
 public:
  // Builds a CDD from a body and optional equalities. Equalities are
  // folded into the body by substitution. Fails on an empty body, arity
  // mismatches, nulls in the body, or a contradictory constant=constant
  // equality (such a CDD is vacuous, which we flag as an error rather
  // than silently keeping an unsatisfiable constraint).
  static StatusOr<Cdd> Create(std::vector<Atom> body,
                              const SymbolTable& symbols,
                              std::vector<TermEquality> equalities = {});

  const std::vector<Atom>& body() const { return body_; }

  // Variables occurring in >= 2 argument positions of the body (counting
  // repeats within one atom). These are the paper's join variables.
  const std::vector<TermId>& join_variables() const {
    return join_variables_;
  }

  // True if the CDD satisfies the paper's meaningfulness assumption
  // (at least one join variable).
  bool has_join_variable() const { return !join_variables_.empty(); }

  // For body atom `atom_index`, the argument positions that are
  // "resolving": positions holding a join variable or a constant.
  // Rewriting the fact value mapped by a resolving position can break the
  // homomorphism; rewriting a non-resolving (lone-variable) position
  // never can, because the lone variable simply rebinds (Section 5,
  // opti-join discussion).
  const std::vector<int>& resolving_positions(size_t atom_index) const {
    return resolving_positions_[atom_index];
  }

  // "body -> ⊥" rendering.
  std::string ToString(const SymbolTable& symbols) const;

  // Optional human-readable constraint label ("[no_allergy]" in DLGP).
  const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

 private:
  Cdd() = default;

  std::string label_;
  std::vector<Atom> body_;
  std::vector<TermId> join_variables_;
  std::vector<std::vector<int>> resolving_positions_;
};

}  // namespace kbrepair

#endif  // KBREPAIR_RULES_CDD_H_
