// KnowledgeBase: the triple K = (F, Σ_T, Σ_C) of Section 2, owning the
// symbol table shared by its parts.

#ifndef KBREPAIR_RULES_KNOWLEDGE_BASE_H_
#define KBREPAIR_RULES_KNOWLEDGE_BASE_H_

#include <memory>
#include <vector>

#include "kb/fact_base.h"
#include "kb/symbol_table.h"
#include "rules/cdd.h"
#include "rules/tgd.h"
#include "rules/weak_acyclicity.h"
#include "util/status.h"

namespace kbrepair {

// Aggregates facts, TGDs and CDDs over one symbol table.
//
// The symbol table lives behind a unique_ptr so a KnowledgeBase can move
// without invalidating the table pointers held by helper objects. The
// repair engine copies only the fact base (rules and symbols are shared
// immutably during a repair session; fresh nulls minted for candidate
// fixes are interned in the shared table, which is harmless: ids are
// never recycled).
class KnowledgeBase {
 public:
  KnowledgeBase()
      : symbols_(std::make_unique<SymbolTable>()),
        tgds_(std::make_shared<std::vector<Tgd>>()),
        cdds_(std::make_shared<std::vector<Cdd>>()) {}

  KnowledgeBase(const KnowledgeBase&) = delete;
  KnowledgeBase& operator=(const KnowledgeBase&) = delete;
  KnowledgeBase(KnowledgeBase&&) = default;
  KnowledgeBase& operator=(KnowledgeBase&&) = default;

  SymbolTable& symbols() { return *symbols_; }
  const SymbolTable& symbols() const { return *symbols_; }

  FactBase& facts() { return facts_; }
  const FactBase& facts() const { return facts_; }

  std::vector<Tgd>& tgds() { return *tgds_; }
  const std::vector<Tgd>& tgds() const { return *tgds_; }

  std::vector<Cdd>& cdds() { return *cdds_; }
  const std::vector<Cdd>& cdds() const { return *cdds_; }

  // --- Shared-base forking -----------------------------------------------

  // Flattens symbols and facts into immutable shared base segments so
  // ForkShared() is O(1). Rule vectors already live behind shared_ptrs
  // (shared by every fork, addresses stable) and need no flattening.
  void FreezeShared() {
    symbols_->FreezeSharedBase();
    facts_.FreezeSharedBase();
  }

  // Forks a per-session KB off this frozen base: the fork shares the
  // base's symbol segment, fact segment and rule vectors, and only
  // materializes its own delta (interned symbols, rewritten args,
  // derived atoms). Call FreezeShared() first — forking an unfrozen KB
  // degenerates to a deep copy of the fact base.
  KnowledgeBase ForkShared() const {
    KBREPAIR_DCHECK(facts_.has_shared_base() || facts_.empty());
    KnowledgeBase fork;
    fork.symbols_->ForkFrom(*symbols_);
    fork.facts_ = facts_;
    fork.tgds_ = tgds_;
    fork.cdds_ = cdds_;
    return fork;
  }

  // Validates the paper's standing assumptions: weakly-acyclic TGDs and
  // CDDs with join variables. Call once after construction/parsing.
  Status Validate() const {
    KBREPAIR_RETURN_IF_ERROR(CheckWeaklyAcyclic(*tgds_, *symbols_));
    for (const Cdd& cdd : *cdds_) {
      if (!cdd.has_join_variable()) {
        bool has_constant = false;
        for (const Atom& atom : cdd.body()) {
          for (TermId term : atom.args) {
            has_constant = has_constant || symbols_->IsConstant(term);
          }
        }
        if (!has_constant) {
          return Status::FailedPrecondition(
              "CDD without join variables or constants is a schema "
              "constraint, not a contradiction detector: " +
              cdd.ToString(*symbols_));
        }
      }
    }
    return Status::Ok();
  }

 private:
  std::unique_ptr<SymbolTable> symbols_;
  FactBase facts_;
  // Shared (not copied) between a frozen base KB and all of its forks,
  // so engine prototypes built against the base's rule vectors stay
  // valid in every forked session.
  std::shared_ptr<std::vector<Tgd>> tgds_;
  std::shared_ptr<std::vector<Cdd>> cdds_;
};

}  // namespace kbrepair

#endif  // KBREPAIR_RULES_KNOWLEDGE_BASE_H_
