// Weak-acyclicity test for sets of TGDs (Fagin, Kolaitis, Miller, Popa,
// "Data exchange: semantics and query answering", TCS 2005).
//
// The paper restricts itself to weakly-acyclic TGDs so that the chase
// terminates (Section 2). The test builds the position dependency graph:
// nodes are (predicate, argument-position) pairs; for every TGD and every
// body variable x that also occurs in the head,
//   * a regular edge goes from every body position of x to every head
//     position of x, and
//   * a special edge goes from every body position of x to every head
//     position of every existentially quantified variable of the rule.
// The set is weakly acyclic iff no cycle goes through a special edge.

#ifndef KBREPAIR_RULES_WEAK_ACYCLICITY_H_
#define KBREPAIR_RULES_WEAK_ACYCLICITY_H_

#include <vector>

#include "rules/tgd.h"
#include "util/status.h"

namespace kbrepair {

// True iff the TGD set is weakly acyclic.
bool IsWeaklyAcyclic(const std::vector<Tgd>& tgds,
                     const SymbolTable& symbols);

// OK iff weakly acyclic; FailedPrecondition with an explanatory message
// otherwise. Used by public entry points that require chase termination.
Status CheckWeaklyAcyclic(const std::vector<Tgd>& tgds,
                          const SymbolTable& symbols);

}  // namespace kbrepair

#endif  // KBREPAIR_RULES_WEAK_ACYCLICITY_H_
