#include "rules/cdd.h"

#include <unordered_map>

#include "util/logging.h"

namespace kbrepair {

namespace {

// Union-find over term ids used to normalize equalities. Roots prefer
// constants so that a class containing a constant is represented by it.
class TermUnionFind {
 public:
  explicit TermUnionFind(const SymbolTable& symbols) : symbols_(symbols) {}

  TermId Find(TermId term) {
    auto it = parent_.find(term);
    if (it == parent_.end()) return term;
    const TermId root = Find(it->second);
    it->second = root;
    return root;
  }

  // Returns false on constant=constant conflict with distinct constants.
  bool Union(TermId a, TermId b) {
    const TermId ra = Find(a);
    const TermId rb = Find(b);
    if (ra == rb) return true;
    const bool a_const = symbols_.IsConstant(ra);
    const bool b_const = symbols_.IsConstant(rb);
    if (a_const && b_const) return false;
    if (a_const) {
      parent_[rb] = ra;
    } else {
      parent_[ra] = rb;
    }
    return true;
  }

 private:
  const SymbolTable& symbols_;
  std::unordered_map<TermId, TermId> parent_;
};

}  // namespace

StatusOr<Cdd> Cdd::Create(std::vector<Atom> body,
                          const SymbolTable& symbols,
                          std::vector<TermEquality> equalities) {
  if (body.empty()) {
    return Status::InvalidArgument("CDD body must be non-empty");
  }
  for (const Atom& atom : body) {
    if (atom.predicate == kInvalidPredicate) {
      return Status::InvalidArgument("CDD body atom without predicate");
    }
    if (atom.arity() != symbols.predicate_arity(atom.predicate)) {
      return Status::InvalidArgument(
          "CDD body atom arity mismatch for predicate " +
          symbols.predicate_name(atom.predicate));
    }
    for (TermId term : atom.args) {
      if (symbols.IsNull(term)) {
        return Status::InvalidArgument(
            "CDD body contains a labeled null; constraints may only use "
            "constants and variables");
      }
    }
  }

  // Fold equalities into the body via substitution.
  if (!equalities.empty()) {
    TermUnionFind uf(symbols);
    for (const TermEquality& eq : equalities) {
      if (!uf.Union(eq.left, eq.right)) {
        return Status::InvalidArgument(
            "CDD equality identifies two distinct constants; the "
            "constraint is vacuously unsatisfiable");
      }
    }
    for (Atom& atom : body) {
      for (TermId& arg : atom.args) arg = uf.Find(arg);
    }
  }

  Cdd cdd;
  cdd.body_ = std::move(body);

  // Count occurrences of each variable across all argument positions.
  std::unordered_map<TermId, int> occurrences;
  for (const Atom& atom : cdd.body_) {
    for (TermId term : atom.args) {
      if (symbols.IsVariable(term)) ++occurrences[term];
    }
  }
  for (const Atom& atom : cdd.body_) {
    for (TermId term : atom.args) {
      if (symbols.IsVariable(term) && occurrences[term] >= 2) {
        bool known = false;
        for (TermId v : cdd.join_variables_) known = known || v == term;
        if (!known) cdd.join_variables_.push_back(term);
      }
    }
  }

  cdd.resolving_positions_.resize(cdd.body_.size());
  for (size_t i = 0; i < cdd.body_.size(); ++i) {
    const Atom& atom = cdd.body_[i];
    for (int pos = 0; pos < atom.arity(); ++pos) {
      const TermId term = atom.args[static_cast<size_t>(pos)];
      const bool is_join =
          symbols.IsVariable(term) && occurrences[term] >= 2;
      const bool is_constant = symbols.IsConstant(term);
      if (is_join || is_constant) {
        cdd.resolving_positions_[i].push_back(pos);
      }
    }
  }
  return cdd;
}

std::string Cdd::ToString(const SymbolTable& symbols) const {
  return AtomsToString(body_, symbols) + " -> !";
}

}  // namespace kbrepair
