// Provenance cone walks over the Derivation DAG.
//
// Both chase engines record, for every derived atom, the TGD and the
// body-matched parent atoms that produced it (chase.h Derivation). This
// header turns that DAG into something an operator can read: the
// *support cone* of an atom — the derivation tree rooted at it, walked
// down through parents to the original facts — and the *forward cone*
// of an original atom — every derived atom whose proof uses it. Both
// walks are engine-agnostic: the caller supplies a lookup callback
// (`DerivationFn`) that returns an atom's Derivation or nullptr for
// originals, so the same code serves a fresh ChaseResult and the
// incremental engine's maintained base (kbrepair-debug uses both).

#ifndef KBREPAIR_CHASE_PROVENANCE_H_
#define KBREPAIR_CHASE_PROVENANCE_H_

#include <functional>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "kb/fact_base.h"
#include "kb/symbol_table.h"
#include "rules/tgd.h"

namespace kbrepair {

// Lookup used by the walks: the derivation of `id`, or nullptr when the
// atom is original (or unknown to the source). Must stay valid for the
// duration of the walk.
using DerivationFn = std::function<const Derivation*(AtomId)>;

// Adapts a ChaseResult into a DerivationFn.
DerivationFn DerivationsOf(const ChaseResult& result);

// One visited node of a support-cone walk.
struct ProvenanceNode {
  AtomId id = 0;
  size_t depth = 0;  // 0 at the root
  // Derivation of this node, or nullptr when original.
  const Derivation* derivation = nullptr;
};

// Walks the support cone of `root` pre-order, parents in body order,
// invoking `visit` for every node (root included). The derivation
// structure is a DAG (parents always have smaller ids than children), so
// the walk terminates; shared sub-cones are visited once per occurrence,
// capped at `max_nodes` total visits (0 = unlimited).
void WalkSupportCone(AtomId root, const DerivationFn& derivation_of,
                     size_t max_nodes,
                     const std::function<void(const ProvenanceNode&)>& visit);

// Derived atoms (ascending) whose support cone contains `original`; the
// forward direction of the DAG. `num_atoms` bounds the scan — pass the
// chased base's size.
std::vector<AtomId> ForwardCone(AtomId original, size_t num_atoms,
                                const DerivationFn& derivation_of);

// Renders the support cone of `root` as an indented tree:
//
//   s(a,_N3)  [tgd 2]
//     p(a,b)  [original]
//     q(b,_N3)  [tgd 0]
//       r(b)  [original]
//
// `chased` must be the base the ids refer to. Output is truncated (with
// a trailing note) past `max_nodes` visits.
std::string RenderSupportCone(AtomId root, const FactBase& chased,
                              const SymbolTable& symbols,
                              const DerivationFn& derivation_of,
                              size_t max_nodes = 256);

}  // namespace kbrepair

#endif  // KBREPAIR_CHASE_PROVENANCE_H_
