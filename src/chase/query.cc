#include "chase/query.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "kb/homomorphism.h"
#include "util/logging.h"

namespace kbrepair {

std::string ConjunctiveQuery::ToString(const SymbolTable& symbols) const {
  std::string out = "?(";
  for (size_t i = 0; i < answer_variables.size(); ++i) {
    if (i > 0) out += ",";
    out += symbols.term_name(answer_variables[i]);
  }
  out += ") :- ";
  out += AtomsToString(body, symbols);
  return out;
}

StatusOr<QueryAnswers> AnswerQuery(const ConjunctiveQuery& query,
                                   KnowledgeBase& kb, ChaseOptions options) {
  // Answer variables must occur in the body (safety).
  for (TermId var : query.answer_variables) {
    bool occurs = false;
    for (const Atom& atom : query.body) {
      for (TermId term : atom.args) occurs = occurs || term == var;
    }
    if (!occurs) {
      return Status::InvalidArgument(
          "unsafe query: answer variable " + kb.symbols().term_name(var) +
          " does not occur in the body");
    }
  }

  ChaseEngine engine(&kb.symbols(), &kb.tgds(), /*cdds=*/nullptr, options);
  KBREPAIR_ASSIGN_OR_RETURN(ChaseResult chased, engine.Run(kb.facts()));

  QueryAnswers answers;
  HomomorphismFinder finder(&kb.symbols(), &chased.facts());
  finder.FindAll(query.body, [&](const Homomorphism& hom) {
    answers.boolean_result = true;
    if (query.answer_variables.empty()) return false;  // boolean: done
    AnswerTuple tuple;
    tuple.reserve(query.answer_variables.size());
    for (TermId var : query.answer_variables) {
      tuple.push_back(hom.Map(var));
    }
    answers.all.push_back(std::move(tuple));
    return true;
  });

  std::sort(answers.all.begin(), answers.all.end());
  answers.all.erase(std::unique(answers.all.begin(), answers.all.end()),
                    answers.all.end());
  for (const AnswerTuple& tuple : answers.all) {
    bool all_constants = true;
    for (TermId term : tuple) {
      all_constants = all_constants && kb.symbols().IsConstant(term);
    }
    if (all_constants) answers.certain.push_back(tuple);
  }
  return answers;
}

namespace {

void SkipSpace(const std::string& text, size_t& pos) {
  while (pos < text.size()) {
    if (std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    } else if (text[pos] == '%') {
      while (pos < text.size() && text[pos] != '\n') ++pos;
    } else {
      break;
    }
  }
}

StatusOr<std::string> ReadIdentifier(const std::string& text, size_t& pos) {
  SkipSpace(text, pos);
  const size_t start = pos;
  while (pos < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[pos])) ||
          text[pos] == '_' || text[pos] == '-' || text[pos] == '/')) {
    ++pos;
  }
  if (pos == start) {
    return Status::InvalidArgument("expected identifier in query at offset " +
                                   std::to_string(pos));
  }
  return text.substr(start, pos - start);
}

bool Consume(const std::string& text, size_t& pos, const std::string& token) {
  SkipSpace(text, pos);
  if (text.compare(pos, token.size(), token) == 0) {
    pos += token.size();
    return true;
  }
  return false;
}

TermId ResolveQueryTerm(const std::string& name, SymbolTable& symbols) {
  if (!name.empty() &&
      std::isupper(static_cast<unsigned char>(name[0]))) {
    return symbols.InternVariable(name);
  }
  return symbols.InternConstant(name);
}

}  // namespace

StatusOr<ConjunctiveQuery> ParseDlgpQuery(const std::string& text,
                                          KnowledgeBase& kb) {
  ConjunctiveQuery query;
  SymbolTable& symbols = kb.symbols();
  size_t pos = 0;

  if (!Consume(text, pos, "?")) {
    return Status::InvalidArgument("query must start with '?'");
  }
  if (Consume(text, pos, "(")) {
    if (!Consume(text, pos, ")")) {
      while (true) {
        KBREPAIR_ASSIGN_OR_RETURN(const std::string name,
                                  ReadIdentifier(text, pos));
        const TermId term = ResolveQueryTerm(name, symbols);
        if (!symbols.IsVariable(term)) {
          return Status::InvalidArgument(
              "answer terms must be variables: " + name);
        }
        query.answer_variables.push_back(term);
        if (Consume(text, pos, ",")) continue;
        if (Consume(text, pos, ")")) break;
        return Status::InvalidArgument("expected ',' or ')' in query head");
      }
    }
  }
  if (!Consume(text, pos, ":-")) {
    return Status::InvalidArgument("expected ':-' after query head");
  }
  while (true) {
    KBREPAIR_ASSIGN_OR_RETURN(const std::string predicate,
                              ReadIdentifier(text, pos));
    if (!Consume(text, pos, "(")) {
      return Status::InvalidArgument("expected '(' after predicate " +
                                     predicate);
    }
    std::vector<TermId> args;
    while (true) {
      KBREPAIR_ASSIGN_OR_RETURN(const std::string name,
                                ReadIdentifier(text, pos));
      args.push_back(ResolveQueryTerm(name, symbols));
      if (Consume(text, pos, ",")) continue;
      if (Consume(text, pos, ")")) break;
      return Status::InvalidArgument("expected ',' or ')' in atom");
    }
    const PredicateId existing = symbols.FindPredicate(predicate);
    const int arity = static_cast<int>(args.size());
    if (existing != kInvalidPredicate &&
        symbols.predicate_arity(existing) != arity) {
      return Status::InvalidArgument("arity mismatch for predicate " +
                                     predicate);
    }
    query.body.emplace_back(symbols.InternPredicate(predicate, arity),
                            std::move(args));
    if (Consume(text, pos, ",")) continue;
    if (Consume(text, pos, ".")) break;
    return Status::InvalidArgument("expected ',' or '.' after atom");
  }
  SkipSpace(text, pos);
  if (pos != text.size()) {
    return Status::InvalidArgument("trailing input after query");
  }
  if (query.body.empty()) {
    return Status::InvalidArgument("query body must be non-empty");
  }
  return query;
}

}  // namespace kbrepair
