// The chase: saturating a fact base with weakly-acyclic TGDs.
//
// This is the restricted (a.k.a. standard) chase: a TGD trigger fires only
// if its head is not already satisfied by an extension of the trigger's
// frontier bindings, which — together with weak acyclicity — guarantees
// termination and keeps Cl(F) small. Existential head variables are
// instantiated with fresh labeled nulls from the shared symbol table.
//
// Two features beyond plain saturation serve the repair framework:
//
//  * Provenance. Every derived atom records its trigger (TGD index plus
//    the body-matched parent atoms), so a constraint violation detected on
//    the chased base can be traced back to the original facts that support
//    it. GENERATEQUESTION-CHASE (Section 5) asks its question on exactly
//    that support set.
//
//  * ⊥-detection. When CDDs are supplied, the engine checks each newly
//    available atom against the constraint bodies as it goes and can stop
//    at the first violation. This is the paper's CHECKCONSISTENCY-OPT:
//    "⊥ is seen as a unary predicate; if, during the chase, the constant ⊥
//    is produced then the knowledge base is inconsistent", which stops the
//    consistency check as early as possible.

#ifndef KBREPAIR_CHASE_CHASE_H_
#define KBREPAIR_CHASE_CHASE_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "kb/fact_base.h"
#include "kb/symbol_table.h"
#include "rules/cdd.h"
#include "rules/tgd.h"
#include "util/arena.h"
#include "util/cancel.h"
#include "util/status.h"

namespace kbrepair {

// A CDD-body homomorphism found during the chase: the violated CDD and,
// per body atom, the matched fact of the chased base.
struct ChaseViolation {
  size_t cdd_index = 0;
  std::vector<AtomId> matched;
};

// Trigger that produced a derived atom. The parent list lives in the
// arena of the chase generation that minted the derivation (ChaseResult
// or IncrementalChase), not in a per-derivation heap node.
struct Derivation {
  size_t tgd_index = 0;
  ArenaSpan<AtomId> parents;  // body-matched atoms, in body order
};

// The chased base Cl(F). Original atoms keep their ids [0, num_original);
// derived atoms follow.
class ChaseResult {
 public:
  const FactBase& facts() const { return facts_; }
  size_t num_original() const { return num_original_; }
  size_t num_derived() const { return facts_.size() - num_original_; }

  bool IsOriginal(AtomId id) const { return id < num_original_; }

  // Trigger of a derived atom. `id` must satisfy !IsOriginal(id).
  const Derivation& derivation(AtomId id) const;

  // The original atoms transitively supporting `id` (the atom itself when
  // original). Deduplicated, ascending. Reuses an epoch-stamped visited
  // bitmap across calls, so repeated support projections allocate
  // nothing; as a consequence concurrent calls on the same ChaseResult
  // are not safe (results are consumed single-threaded per session).
  std::vector<AtomId> OriginalSupport(AtomId id) const;

  // Union of OriginalSupport over several atoms. Deduplicated, ascending.
  std::vector<AtomId> OriginalSupport(const std::vector<AtomId>& ids) const;

  // First CDD violation, when the chase ran with constraints and found
  // one. Empty means no violation was detected (if constraints were
  // supplied and the chase completed, the KB is consistent).
  const std::optional<ChaseViolation>& violation() const {
    return violation_;
  }

 private:
  friend class ChaseEngine;

  FactBase facts_;
  size_t num_original_ = 0;
  std::vector<Derivation> derivations_;  // index: id - num_original_
  std::optional<ChaseViolation> violation_;
  // Owns every derivation's parent span. Shared so copies of the result
  // stay cheap and keep the spans alive.
  std::shared_ptr<Arena> arena_;

  // Scratch for OriginalSupport: atoms stamped with the current epoch
  // have been visited this traversal, so clearing between calls is a
  // counter bump instead of a fill.
  mutable std::vector<uint32_t> support_epoch_;
  mutable uint32_t support_epoch_counter_ = 0;
  mutable std::vector<AtomId> support_frontier_;
};

struct ChaseOptions {
  // Hard cap on the chased base size; exceeding it returns Internal.
  // A weakly-acyclic chase stays polynomial, so this is a safety valve
  // against misuse, not an expected limit.
  size_t max_atoms = 1000000;

  // When constraints are supplied: stop at the first violation (the
  // CHECKCONSISTENCY-OPT behaviour). When false, the full chase runs and
  // only the first violation encountered is recorded.
  bool stop_on_violation = true;

  // Cooperative cancellation: saturation loops poll this token and abort
  // with DeadlineExceeded once it expires. Shared by every chase-running
  // component built from the same options (finder, repairability checker,
  // delta engines), so one armed deadline bounds a whole engine command.
  std::shared_ptr<CancelToken> cancel;

  // Worker threads for the wave-parallel trigger enumeration (Phase A of
  // each saturation wave); 1 = fully sequential. The wave algorithm is
  // identical for every value, so atom ids, fresh-null names, provenance
  // and transcripts are byte-identical across thread counts.
  size_t num_threads = 1;
};

// Runs the chase over `facts`. The symbol table is mutated (fresh nulls).
// `cdds` may be null for a pure saturation run.
class ChaseEngine {
 public:
  ChaseEngine(SymbolTable* symbols, const std::vector<Tgd>* tgds,
              const std::vector<Cdd>* cdds = nullptr,
              ChaseOptions options = {});

  // Chases a copy of `facts` to saturation (or first violation).
  // The caller must have validated weak acyclicity; this function CHECKs
  // only the atom cap.
  StatusOr<ChaseResult> Run(const FactBase& facts) const;

 private:
  SymbolTable* symbols_;
  const std::vector<Tgd>* tgds_;
  const std::vector<Cdd>* cdds_;
  ChaseOptions options_;
};

// Convenience wrapper: Cl(F) without constraint checking.
StatusOr<ChaseResult> RunChase(const FactBase& facts,
                               const std::vector<Tgd>& tgds,
                               SymbolTable& symbols,
                               ChaseOptions options = {});

}  // namespace kbrepair

#endif  // KBREPAIR_CHASE_CHASE_H_
