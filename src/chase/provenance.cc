#include "chase/provenance.h"

namespace kbrepair {

DerivationFn DerivationsOf(const ChaseResult& result) {
  return [&result](AtomId id) -> const Derivation* {
    if (result.IsOriginal(id)) return nullptr;
    return &result.derivation(id);
  };
}

namespace {

void WalkNode(AtomId id, size_t depth, const DerivationFn& derivation_of,
              size_t max_nodes, size_t* visited,
              const std::function<void(const ProvenanceNode&)>& visit) {
  if (max_nodes != 0 && *visited >= max_nodes) return;
  ++*visited;
  ProvenanceNode node;
  node.id = id;
  node.depth = depth;
  node.derivation = derivation_of(id);
  visit(node);
  if (node.derivation == nullptr) return;
  for (const AtomId parent : node.derivation->parents) {
    WalkNode(parent, depth + 1, derivation_of, max_nodes, visited, visit);
  }
}

}  // namespace

void WalkSupportCone(AtomId root, const DerivationFn& derivation_of,
                     size_t max_nodes,
                     const std::function<void(const ProvenanceNode&)>& visit) {
  size_t visited = 0;
  WalkNode(root, 0, derivation_of, max_nodes, &visited, visit);
}

std::vector<AtomId> ForwardCone(AtomId original, size_t num_atoms,
                                const DerivationFn& derivation_of) {
  // Parents precede children, so one ascending pass over the base
  // closes the cone transitively.
  std::vector<bool> in_cone(num_atoms, false);
  if (original < num_atoms) in_cone[original] = true;
  std::vector<AtomId> cone;
  for (AtomId id = 0; id < num_atoms; ++id) {
    const Derivation* derivation = derivation_of(id);
    if (derivation == nullptr) continue;
    for (const AtomId parent : derivation->parents) {
      if (parent < num_atoms && in_cone[parent]) {
        in_cone[id] = true;
        cone.push_back(id);
        break;
      }
    }
  }
  return cone;
}

std::string RenderSupportCone(AtomId root, const FactBase& chased,
                              const SymbolTable& symbols,
                              const DerivationFn& derivation_of,
                              size_t max_nodes) {
  std::string out;
  size_t visits = 0;
  WalkSupportCone(root, derivation_of, max_nodes,
                  [&](const ProvenanceNode& node) {
                    ++visits;
                    out.append(node.depth * 2, ' ');
                    if (node.id < chased.size()) {
                      out += chased.atom(node.id).ToString(symbols);
                    } else {
                      out += "atom#" + std::to_string(node.id);
                    }
                    out += "  [";
                    out += "#" + std::to_string(node.id) + ", ";
                    if (node.derivation == nullptr) {
                      out += "original";
                    } else {
                      out += "tgd " + std::to_string(node.derivation->tgd_index);
                    }
                    out += "]\n";
                  });
  if (max_nodes != 0 && visits >= max_nodes) {
    out += "  ... (cone truncated at " + std::to_string(max_nodes) +
           " nodes)\n";
  }
  return out;
}

}  // namespace kbrepair
