#include "chase/chase.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chase/wave.h"
#include "kb/homomorphism.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/trace.h"

namespace kbrepair {

const Derivation& ChaseResult::derivation(AtomId id) const {
  KBREPAIR_CHECK(!IsOriginal(id));
  return derivations_[id - num_original_];
}

std::vector<AtomId> ChaseResult::OriginalSupport(AtomId id) const {
  return OriginalSupport(std::vector<AtomId>{id});
}

std::vector<AtomId> ChaseResult::OriginalSupport(
    const std::vector<AtomId>& ids) const {
  if (support_epoch_.size() < facts_.size()) {
    support_epoch_.resize(facts_.size(), 0);
  }
  if (support_epoch_counter_ == std::numeric_limits<uint32_t>::max()) {
    std::fill(support_epoch_.begin(), support_epoch_.end(), 0);
    support_epoch_counter_ = 0;
  }
  const uint32_t epoch = ++support_epoch_counter_;
  std::vector<AtomId>& frontier = support_frontier_;
  frontier.assign(ids.begin(), ids.end());
  std::vector<AtomId> support;
  while (!frontier.empty()) {
    const AtomId id = frontier.back();
    frontier.pop_back();
    if (support_epoch_[id] == epoch) continue;
    support_epoch_[id] = epoch;
    if (IsOriginal(id)) {
      support.push_back(id);
    } else {
      const Derivation& d = derivation(id);
      frontier.insert(frontier.end(), d.parents.begin(), d.parents.end());
    }
  }
  std::sort(support.begin(), support.end());
  return support;
}

ChaseEngine::ChaseEngine(SymbolTable* symbols, const std::vector<Tgd>* tgds,
                         const std::vector<Cdd>* cdds, ChaseOptions options)
    : symbols_(symbols), tgds_(tgds), cdds_(cdds), options_(options) {
  KBREPAIR_CHECK(symbols != nullptr);
  KBREPAIR_CHECK(tgds != nullptr);
}

namespace {

// Per-wave-slot Phase A findings. Written by exactly one worker; read
// sequentially in Phase B.
struct SlotResult {
  std::vector<PendingTrigger> triggers;
  std::optional<ChaseViolation> violation;  // slot's first, body order
};

}  // namespace

StatusOr<ChaseResult> ChaseEngine::Run(const FactBase& facts) const {
  trace::ScopedSpan span("chase.saturate", trace::Phase::kChase);
  KBREPAIR_FAILPOINT("chase.saturate",
                     Status::Internal("injected chase saturation fault"));
  if (options_.cancel != nullptr) {
    KBREPAIR_RETURN_IF_ERROR(options_.cancel->Check("chase"));
  }
  ChaseResult result;
  result.facts_ = facts;
  result.num_original_ = facts.size();
  result.arena_ = std::make_shared<Arena>();

  // Index rules and constraints by body-atom predicate for anchored
  // (semi-naive) evaluation: predicate -> [(rule index, body position)].
  std::unordered_map<int32_t, std::vector<std::pair<size_t, size_t>>>
      tgd_anchor_index;
  for (size_t r = 0; r < tgds_->size(); ++r) {
    const std::vector<Atom>& body = (*tgds_)[r].body();
    for (size_t j = 0; j < body.size(); ++j) {
      tgd_anchor_index[body[j].predicate].emplace_back(r, j);
    }
  }
  std::unordered_map<int32_t, std::vector<std::pair<size_t, size_t>>>
      cdd_anchor_index;
  if (cdds_ != nullptr) {
    for (size_t c = 0; c < cdds_->size(); ++c) {
      const std::vector<Atom>& body = (*cdds_)[c].body();
      for (size_t j = 0; j < body.size(); ++j) {
        cdd_anchor_index[body[j].predicate].emplace_back(c, j);
      }
    }
  }

  // Seed with the alive atoms only: an input base may carry tombstones
  // (forked sessions retract), and a dead atom must neither anchor
  // triggers nor witness violations.
  std::vector<AtomId> wave;
  wave.reserve(result.facts_.size());
  for (AtomId id = 0; id < result.facts_.size(); ++id) {
    if (result.facts_.alive(id)) wave.push_back(id);
  }

  HomomorphismFinder finder(symbols_, &result.facts_);
  WaveExecutor exec(options_.num_threads);
  std::vector<SlotResult> slots;
  std::vector<AtomId> next;
  std::vector<Atom> head_query;
  std::vector<Binding> head_bindings;
  size_t steps = 0;

  while (!wave.empty()) {
    if (options_.cancel != nullptr) {
      KBREPAIR_RETURN_IF_ERROR(options_.cancel->Check("chase"));
    }
    if (slots.size() < wave.size()) slots.resize(wave.size());

    // --- Phase A: enumerate triggers (and CDD violations) against the
    // wave-start snapshot. Read-only on the fact base; each slot writes
    // its own SlotResult and its worker's arena.
    const bool check_cdds =
        cdds_ != nullptr && !result.violation_.has_value();
    exec.ForEachSlot(wave.size(), [&](size_t s, Arena& arena) {
      SlotResult& slot = slots[s];
      slot.triggers.clear();
      slot.violation.reset();
      const AtomId current = wave[s];
      const PredicateId pred = result.facts_.atom(current).predicate;

      // ⊥-detection: does a CDD body have a homomorphism using the
      // current atom? (CHECKCONSISTENCY-OPT.)
      if (check_cdds) {
        auto it = cdd_anchor_index.find(pred);
        if (it != cdd_anchor_index.end()) {
          for (const auto& [cdd_index, body_pos] : it->second) {
            finder.FindAllPinnedViews(
                (*cdds_)[cdd_index].body(), body_pos, current,
                [&, cdd_index = cdd_index](const HomomorphismView& view) {
                  ChaseViolation violation;
                  violation.cdd_index = cdd_index;
                  violation.matched.assign(view.matched,
                                           view.matched + view.num_matched);
                  slot.violation = std::move(violation);
                  return false;  // first violation per slot suffices
                });
            if (slot.violation.has_value()) break;
          }
        }
      }

      // TGD triggers anchored at the current atom.
      auto it = tgd_anchor_index.find(pred);
      if (it == tgd_anchor_index.end()) return;
      for (const auto& [tgd_index, body_pos] : it->second) {
        finder.FindAllPinnedViews(
            (*tgds_)[tgd_index].body(), body_pos, current,
            [&, tgd_index = tgd_index](const HomomorphismView& view) {
              PendingTrigger trigger;
              trigger.tgd_index = tgd_index;
              trigger.matched = arena.Copy(view.matched, view.num_matched);
              trigger.bindings =
                  arena.Copy(view.bindings, view.num_bindings);
              slot.triggers.push_back(trigger);
              return true;
            });
      }
    });

    // --- Phase B: deterministic sequential merge in slot order. All
    // mutation (violation recording, restricted test, fresh nulls, atom
    // insertion) happens here, so the output is independent of how
    // Phase A was scheduled.
    next.clear();
    for (size_t s = 0; s < wave.size(); ++s) {
      if (options_.cancel != nullptr && (++steps & 63) == 0) {
        KBREPAIR_RETURN_IF_ERROR(options_.cancel->Check("chase"));
      }
      SlotResult& slot = slots[s];
      if (slot.violation.has_value() && !result.violation_.has_value()) {
        result.violation_ = std::move(slot.violation);
        if (options_.stop_on_violation) return result;
      }
      for (const PendingTrigger& trigger : slot.triggers) {
        const Tgd& tgd = (*tgds_)[trigger.tgd_index];
        // Restricted-chase test against the LIVE base: skip if the head
        // is already satisfied under the trigger's frontier bindings
        // (existentials free) — including by atoms fired earlier this
        // wave.
        head_query.clear();
        for (const Atom& head_atom : tgd.head()) {
          head_query.push_back(SubstituteTerms(
              head_atom, trigger.bindings.ptr, trigger.bindings.len));
        }
        if (finder.Exists(head_query)) continue;

        // Fire: instantiate existential variables with fresh nulls.
        head_bindings.assign(trigger.bindings.begin(),
                             trigger.bindings.end());
        const size_t num_frontier = head_bindings.size();
        for (TermId var : tgd.existential_variables()) {
          head_bindings.push_back(Binding{var, symbols_->MakeFreshNull()});
        }
        for (const Atom& head_atom : tgd.head()) {
          const Atom instance = SubstituteTerms(
              head_atom, head_bindings.data(), head_bindings.size());
          // Avoid duplicating a ground atom that already exists. Atoms
          // carrying fresh nulls are new by construction.
          bool has_fresh_null = false;
          for (TermId arg : instance.args) {
            for (size_t k = num_frontier; k < head_bindings.size(); ++k) {
              has_fresh_null =
                  has_fresh_null || head_bindings[k].term == arg;
            }
          }
          if (!has_fresh_null && result.facts_.Contains(instance)) {
            continue;
          }
          if (result.facts_.size() >= options_.max_atoms) {
            return Status::Internal(
                "chase exceeded max_atoms; TGD set likely not weakly "
                "acyclic or cap too low");
          }
          const AtomId new_id = result.facts_.Add(instance);
          Derivation derivation;
          derivation.tgd_index = trigger.tgd_index;
          derivation.parents =
              result.arena_->Copy(trigger.matched.ptr, trigger.matched.len);
          result.derivations_.push_back(derivation);
          next.push_back(new_id);
        }
      }
    }

    exec.ResetArenas();
    wave.swap(next);
  }
  return result;
}

StatusOr<ChaseResult> RunChase(const FactBase& facts,
                               const std::vector<Tgd>& tgds,
                               SymbolTable& symbols, ChaseOptions options) {
  ChaseEngine engine(&symbols, &tgds, nullptr, options);
  return engine.Run(facts);
}

}  // namespace kbrepair
