#include "chase/chase.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "kb/homomorphism.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/trace.h"

namespace kbrepair {

const Derivation& ChaseResult::derivation(AtomId id) const {
  KBREPAIR_CHECK(!IsOriginal(id));
  return derivations_[id - num_original_];
}

std::vector<AtomId> ChaseResult::OriginalSupport(AtomId id) const {
  return OriginalSupport(std::vector<AtomId>{id});
}

std::vector<AtomId> ChaseResult::OriginalSupport(
    const std::vector<AtomId>& ids) const {
  std::vector<AtomId> support;
  std::unordered_set<AtomId> visited;
  std::vector<AtomId> frontier(ids.begin(), ids.end());
  while (!frontier.empty()) {
    const AtomId id = frontier.back();
    frontier.pop_back();
    if (!visited.insert(id).second) continue;
    if (IsOriginal(id)) {
      support.push_back(id);
    } else {
      const Derivation& d = derivation(id);
      frontier.insert(frontier.end(), d.parents.begin(), d.parents.end());
    }
  }
  std::sort(support.begin(), support.end());
  return support;
}

ChaseEngine::ChaseEngine(SymbolTable* symbols, const std::vector<Tgd>* tgds,
                         const std::vector<Cdd>* cdds, ChaseOptions options)
    : symbols_(symbols), tgds_(tgds), cdds_(cdds), options_(options) {
  KBREPAIR_CHECK(symbols != nullptr);
  KBREPAIR_CHECK(tgds != nullptr);
}

StatusOr<ChaseResult> ChaseEngine::Run(const FactBase& facts) const {
  trace::ScopedSpan span("chase.saturate", trace::Phase::kChase);
  KBREPAIR_FAILPOINT("chase.saturate",
                     Status::Internal("injected chase saturation fault"));
  if (options_.cancel != nullptr) {
    KBREPAIR_RETURN_IF_ERROR(options_.cancel->Check("chase"));
  }
  ChaseResult result;
  result.facts_ = facts;
  result.num_original_ = facts.size();

  // Index rules and constraints by body-atom predicate for anchored
  // (semi-naive) evaluation: predicate -> [(rule index, body position)].
  std::unordered_map<int32_t, std::vector<std::pair<size_t, size_t>>>
      tgd_anchor_index;
  for (size_t r = 0; r < tgds_->size(); ++r) {
    const std::vector<Atom>& body = (*tgds_)[r].body();
    for (size_t j = 0; j < body.size(); ++j) {
      tgd_anchor_index[body[j].predicate].emplace_back(r, j);
    }
  }
  std::unordered_map<int32_t, std::vector<std::pair<size_t, size_t>>>
      cdd_anchor_index;
  if (cdds_ != nullptr) {
    for (size_t c = 0; c < cdds_->size(); ++c) {
      const std::vector<Atom>& body = (*cdds_)[c].body();
      for (size_t j = 0; j < body.size(); ++j) {
        cdd_anchor_index[body[j].predicate].emplace_back(c, j);
      }
    }
  }

  std::deque<AtomId> work;
  for (AtomId id = 0; id < result.facts_.size(); ++id) work.push_back(id);

  HomomorphismFinder finder(symbols_, &result.facts_);

  size_t steps = 0;
  while (!work.empty()) {
    // Poll the deadline every few steps: cheap enough to leave on, tight
    // enough that a wedged saturation is cut off promptly.
    if (options_.cancel != nullptr && (++steps & 63) == 0) {
      KBREPAIR_RETURN_IF_ERROR(options_.cancel->Check("chase"));
    }
    const AtomId current = work.front();
    work.pop_front();
    const PredicateId pred = result.facts_.atom(current).predicate;

    // --- ⊥-detection: does a CDD body now have a homomorphism that uses
    // the current atom? (CHECKCONSISTENCY-OPT.)
    if (cdds_ != nullptr && !result.violation_.has_value()) {
      auto it = cdd_anchor_index.find(pred);
      if (it != cdd_anchor_index.end()) {
        for (const auto& [cdd_index, body_pos] : it->second) {
          bool found = false;
          finder.FindAllPinned((*cdds_)[cdd_index].body(), body_pos,
                               current, [&](const Homomorphism& hom) {
                                 ChaseViolation violation;
                                 violation.cdd_index = cdd_index;
                                 violation.matched = hom.matched;
                                 result.violation_ = std::move(violation);
                                 found = true;
                                 return false;  // first violation suffices
                               });
          if (found) break;
        }
        if (result.violation_.has_value() && options_.stop_on_violation) {
          return result;
        }
      }
    }

    // --- TGD triggers anchored at the current atom.
    auto it = tgd_anchor_index.find(pred);
    if (it == tgd_anchor_index.end()) continue;
    for (const auto& [tgd_index, body_pos] : it->second) {
      const Tgd& tgd = (*tgds_)[tgd_index];
      // Materialize triggers before applying any: applying mutates the
      // fact base the enumeration is reading.
      std::vector<Homomorphism> triggers;
      finder.FindAllPinned(tgd.body(), body_pos, current,
                           [&](const Homomorphism& hom) {
                             triggers.push_back(hom);
                             return true;
                           });
      for (const Homomorphism& trigger : triggers) {
        // Restricted-chase test: skip if the head is already satisfied
        // under the trigger's frontier bindings (existentials free).
        const std::vector<Atom> head_query =
            SubstituteTerms(tgd.head(), trigger.bindings);
        if (finder.Exists(head_query)) continue;

        // Fire: instantiate existential variables with fresh nulls.
        std::unordered_map<TermId, TermId> head_bindings =
            trigger.bindings;
        for (TermId var : tgd.existential_variables()) {
          head_bindings[var] = symbols_->MakeFreshNull();
        }
        for (const Atom& head_atom : tgd.head()) {
          const Atom instance = SubstituteTerms(head_atom, head_bindings);
          // Avoid duplicating a ground atom that already exists. Atoms
          // carrying fresh nulls are new by construction.
          bool has_fresh_null = false;
          for (TermId arg : instance.args) {
            for (TermId var : tgd.existential_variables()) {
              has_fresh_null =
                  has_fresh_null || head_bindings[var] == arg;
            }
          }
          if (!has_fresh_null && result.facts_.Contains(instance)) {
            continue;
          }
          if (result.facts_.size() >= options_.max_atoms) {
            return Status::Internal(
                "chase exceeded max_atoms; TGD set likely not weakly "
                "acyclic or cap too low");
          }
          const AtomId new_id = result.facts_.Add(instance);
          Derivation derivation;
          derivation.tgd_index = tgd_index;
          derivation.parents = trigger.matched;
          result.derivations_.push_back(std::move(derivation));
          work.push_back(new_id);
        }
      }
    }
  }
  return result;
}

StatusOr<ChaseResult> RunChase(const FactBase& facts,
                               const std::vector<Tgd>& tgds,
                               SymbolTable& symbols, ChaseOptions options) {
  ChaseEngine engine(&symbols, &tgds, nullptr, options);
  return engine.Run(facts);
}

}  // namespace kbrepair
