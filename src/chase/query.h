// Conjunctive query answering over knowledge bases (Section 2).
//
// An answer to Q(x1..xk) over K = (F, Σ_T, Σ_C) is a tuple
// (h(x1)..h(xk)) for a homomorphism h from Q's body into the chased base
// Cl_{Σ_T}(F). Certain answers additionally require every answer term to
// be a constant — labeled nulls denote unknown individuals and are not
// certain.
//
// Queries use the DLGP syntax  ?(X, Y) :- p(X, Z), q(Z, Y).
// (ParseDlgpQuery interns symbols into an existing knowledge base).

#ifndef KBREPAIR_CHASE_QUERY_H_
#define KBREPAIR_CHASE_QUERY_H_

#include <string>
#include <vector>

#include "chase/chase.h"
#include "kb/atom.h"
#include "rules/knowledge_base.h"
#include "util/status.h"

namespace kbrepair {

struct ConjunctiveQuery {
  // Distinguished (answer) variables, in output order. May be empty: a
  // boolean query.
  std::vector<TermId> answer_variables;
  std::vector<Atom> body;

  std::string ToString(const SymbolTable& symbols) const;
};

// One answer tuple (parallel to answer_variables).
using AnswerTuple = std::vector<TermId>;

struct QueryAnswers {
  // Distinct tuples, sorted. Tuples may contain labeled nulls.
  std::vector<AnswerTuple> all;
  // The subset of `all` whose terms are all constants: Q(F, Σ_T) in the
  // paper's notation.
  std::vector<AnswerTuple> certain;

  // For boolean queries: true iff the body has any homomorphism.
  bool boolean_result = false;
};

// Evaluates Q over Cl(F). `kb.symbols()` is mutated (chase nulls).
StatusOr<QueryAnswers> AnswerQuery(const ConjunctiveQuery& query,
                                   KnowledgeBase& kb,
                                   ChaseOptions options = {});

// Parses "?(X, Y) :- body ." (or "? :- body ." for boolean queries),
// interning into kb's symbol table.
StatusOr<ConjunctiveQuery> ParseDlgpQuery(const std::string& text,
                                          KnowledgeBase& kb);

}  // namespace kbrepair

#endif  // KBREPAIR_CHASE_QUERY_H_
