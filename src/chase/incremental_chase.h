// Delta chase: a long-lived chased base Cl(F) maintained across position
// fixes instead of being rebuilt from scratch after every answer.
//
// The scratch engine re-runs the restricted chase on the whole working
// base before every question — the dominant cost behind the paper's
// Fig. 5 per-question delay (Prop. 4.10). But a position fix (A, i, t)
// touches exactly one atom, and chase provenance tells us precisely which
// derived facts depended on it. IncrementalChase exploits that:
//
//   1. *Mirror* — the original atoms [0, num_original) of the maintained
//      base mirror the caller's working facts; ApplyFix first replays the
//      rewrite on the mirror.
//   2. *Retract* — every derived atom whose derivation (transitively)
//      used A is tombstoned (FactBase::Remove). Provenance suffices: a
//      derived atom's validity depends only on its parents' current
//      arguments, so atoms outside the cone of A keep valid derivations.
//   3. *Re-saturate* — the chase work queue is re-seeded with A (whose
//      new value may trigger rules) and with re-fired suppressed
//      triggers (below), and runs to fixpoint exactly like the full
//      chase.
//
// The restricted chase suppresses a trigger when its head is already
// satisfied. That check is non-monotone under retraction: a trigger
// blocked by a witness atom must fire once the witness disappears (or is
// rewritten). IncrementalChase therefore keeps a *suppressed-trigger
// ledger*: every time a trigger is blocked — by the head-satisfaction
// test or by the ground-duplicate test — the trigger and its witness
// atoms are recorded. When a fix retracts or rewrites a witness, the
// affected ledger entries are re-checked in a canonical order
// (tgd index, then matched atom ids): entries whose body no longer
// matches are dropped, entries still blocked are re-registered under
// their new witness, and the rest finally fire.
//
// Equivalence envelope (see DESIGN.md "Delta-chase invariants"): for TGD
// sets whose conflict-feeding rules are full (no existential variables) —
// the synthetic and Durum Wheat workloads — the maintained base is
// guaranteed to coincide with a from-scratch restricted chase of the
// current facts, up to renaming of labeled nulls and derived-atom ids,
// and in particular yields the same conflicts (cdd, original-support)
// census. With existential rules feeding conflicts, two valid restricted
// chases can disagree on which of several head-satisfying atoms exists;
// the maintained base is then still a correct restricted chase (sound and
// complete for consistency), but provenance may differ from a fresh run.
// The differential suite in tests/incremental_conflict_test.cc pins the
// envelope down.

#ifndef KBREPAIR_CHASE_INCREMENTAL_CHASE_H_
#define KBREPAIR_CHASE_INCREMENTAL_CHASE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "chase/chase.h"
#include "kb/fact_base.h"
#include "kb/symbol_table.h"
#include "rules/tgd.h"
#include "util/cow.h"
#include "util/status.h"

namespace kbrepair {

class IncrementalChase {
 public:
  // What one ApplyFix changed in the maintained base.
  struct Delta {
    AtomId modified = 0;            // the rewritten original atom
    std::vector<AtomId> retracted;  // tombstoned derived atoms, ascending
    std::vector<AtomId> added;      // new derived atoms, ascending
  };

  // `symbols` is mutated (fresh nulls); both pointers must outlive the
  // chase. `options.stop_on_violation` is ignored — the maintained base
  // is always fully saturated.
  IncrementalChase(SymbolTable* symbols, const std::vector<Tgd>* tgds,
                   ChaseOptions options = {});

  // Full chase of a copy of `facts`. Resets all maintained state.
  Status Initialize(const FactBase& facts);

  // Flattens the maintained state (chased base, provenance, ledger) into
  // immutable shared segments so AdoptShared() forks are O(1). Call on a
  // fully saturated prototype that will never be mutated again.
  void FreezeShared();

  // Adopts the frozen maintained state of `frozen` — a prototype
  // saturated over the same rule set and a symbol-table ancestor of this
  // chase's table — instead of re-chasing. Equivalent to Initialize()
  // on the prototype's original facts, in O(delta)=O(1). The chase's own
  // symbols/tgds/options (from the constructor) are kept, so per-session
  // cancel tokens keep working.
  void AdoptShared(const IncrementalChase& frozen);

  bool initialized() const { return initialized_; }

  // The caller has applied (or is about to apply) the position fix
  // (atom, arg, value) to its own working base; replays it on the
  // mirror, retracts the cone of the fixed atom, re-checks suppressed
  // triggers and re-saturates. `atom` must be an original atom.
  // (Takes the raw triple rather than repair::Fix to keep chase/ below
  // repair/ in the layering.)
  StatusOr<Delta> ApplyFix(AtomId atom, int arg, TermId value);

  // The maintained chased base. Contains tombstoned atoms; check
  // facts().alive(id) before dereferencing scan-independent ids.
  const FactBase& facts() const { return chased_; }

  size_t num_original() const { return num_original_; }
  bool IsOriginal(AtomId id) const { return id < num_original_; }

  // The rule set the maintained base is saturated under.
  const std::vector<Tgd>* tgds() const { return tgds_; }

  // Original atoms transitively supporting `ids` through provenance.
  // Deduplicated, ascending. All ids must be alive. Reuses an
  // epoch-stamped visited bitmap across calls (allocation-free in steady
  // state), so concurrent calls on the same instance are not safe.
  std::vector<AtomId> OriginalSupport(const std::vector<AtomId>& ids) const;

  // Derivation of `id` in the maintained base, or nullptr when `id` is
  // original or tombstoned. The pointer is valid until the next
  // ApplyFix. Inspection API (kbrepair-debug renders provenance cones
  // from the maintained DAG without re-chasing).
  const Derivation* derivation_or_null(AtomId id) const {
    if (id < num_original_ || id >= chased_.size() || !chased_.alive(id)) {
      return nullptr;
    }
    return &derivations_[id - num_original_];
  }

  // Lifetime instrumentation (for the delta-chase microbench).
  size_t total_retracted() const { return total_retracted_; }
  size_t total_added() const { return total_added_; }
  size_t total_refired() const { return total_refired_; }
  size_t ledger_size() const { return suppressed_.size(); }

 private:
  // A trigger that was blocked — by head satisfaction or by a ground
  // duplicate — remembered so retraction of its witness can revive it.
  // Bindings are flat (ledger entries are revalidated with the same
  // linear-scan substitution the hot path uses).
  struct SuppressedTrigger {
    size_t tgd_index = 0;
    std::vector<AtomId> matched;  // body-matched atoms, body order;
                                  // empty marks a dead ledger entry
    std::vector<Binding> bindings;
  };

  // Fires a trigger (bindings complete for the frontier): instantiates
  // existentials with fresh nulls, adds non-duplicate head atoms with
  // provenance, enqueues them on `work`, and records suppressions for
  // duplicate head atoms. Returns non-OK only on the atom cap.
  Status FireTrigger(size_t tgd_index, const AtomId* matched,
                     size_t num_matched, const Binding* bindings,
                     size_t num_bindings, std::vector<AtomId>* work);

  // Records a suppressed trigger keyed under the given witness atoms.
  void RecordSuppressed(size_t tgd_index, std::vector<AtomId> matched,
                        std::vector<Binding> bindings,
                        const std::vector<AtomId>& witnesses);

  // Runs the wave-based chase loop until the work frontier empties,
  // evaluating TGD triggers anchored at each wave atom. Same wave
  // discipline as ChaseEngine::Run, so the maintained base and a
  // from-scratch run reach competing triggers in the same order.
  Status Saturate(std::vector<AtomId> work);

  // First alive atom equal to `atom`, or kInvalidAtom.
  AtomId FindAtom(const Atom& atom) const;

  // Marks derived atom `id` dead and detaches it from provenance maps.
  void RetractAtom(AtomId id);

  // Ledger entries currently keyed under `witness`, compacted.
  std::vector<size_t> TakeSuppressedByWitness(AtomId witness);

  SymbolTable* symbols_;
  const std::vector<Tgd>* tgds_;
  ChaseOptions options_;

  bool initialized_ = false;
  FactBase chased_;
  size_t num_original_ = 0;
  // Derivation of atom id (valid while alive); index id - num_original_.
  CowVector<Derivation> derivations_;
  // parent atom -> alive derived children (lazily pruned).
  CowMap<AtomId, std::vector<AtomId>> children_;
  // (rule body predicate) -> [(tgd index, body position)]. Immutable
  // after Initialize, shared between a frozen prototype and its forks.
  using AnchorIndex =
      std::unordered_map<int32_t, std::vector<std::pair<size_t, size_t>>>;
  std::shared_ptr<const AnchorIndex> anchor_index_;

  CowVector<SuppressedTrigger> suppressed_;
  CowMap<AtomId, std::vector<size_t>> suppressed_by_witness_;

  // Owns every Derivation's parent span minted by THIS chase.
  // Adopted/forked instances never mutate an ancestor's arena; they
  // retain the ancestors' arenas so shared derivation spans stay alive.
  std::shared_ptr<Arena> derivation_arena_;
  std::vector<std::shared_ptr<Arena>> retained_arenas_;

  // FireTrigger scratch (frontier bindings + fresh-null tail).
  std::vector<Binding> head_scratch_;

  // OriginalSupport scratch: epoch-stamped visited marks.
  mutable std::vector<uint32_t> support_epoch_;
  mutable uint32_t support_epoch_counter_ = 0;
  mutable std::vector<AtomId> support_frontier_;

  size_t total_retracted_ = 0;
  size_t total_added_ = 0;
  size_t total_refired_ = 0;
};

// Sentinel for FindAtom misses.
inline constexpr AtomId kInvalidAtom = static_cast<AtomId>(-1);

}  // namespace kbrepair

#endif  // KBREPAIR_CHASE_INCREMENTAL_CHASE_H_
