// Wave-based saturation scaffolding shared by the scratch and delta
// chase engines.
//
// Both engines saturate by alternating two phases over a *wave* — the
// snapshot of the current work queue:
//
//   Phase A (read-only, parallelizable): for every wave slot, enumerate
//   the TGD triggers (and, for the scratch engine, CDD violations)
//   anchored at that slot's atom against the wave-start fact base. Each
//   slot's findings are copied into a per-worker arena and recorded in
//   slot-owned storage, so workers never contend.
//
//   Phase B (sequential, deterministic): walk the slots in wave order and
//   fire/suppress each pending trigger against the live base. Phase B is
//   where atoms are added and fresh nulls are minted, so its slot order
//   fully determines atom ids, null names, provenance and transcripts —
//   the output is byte-identical for any thread count, including 1.
//
// Completeness: a trigger (or violation) whose body involves an atom
// added during the current wave's Phase B is invisible to that wave's
// snapshot, but the new atom itself joins the next wave, where the
// pinned enumeration anchored at it finds the homomorphism. This is the
// usual semi-naive argument — every homomorphism has a last-arriving
// atom, and it is found when that atom's wave runs.

#ifndef KBREPAIR_CHASE_WAVE_H_
#define KBREPAIR_CHASE_WAVE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "kb/atom.h"
#include "kb/fact_base.h"
#include "util/arena.h"
#include "util/function_ref.h"
#include "util/thread_pool.h"

namespace kbrepair {

// A trigger discovered in Phase A, pending its Phase B head-satisfaction
// check. Spans point into the per-worker arena that enumerated it and
// stay valid until the executor's arenas are Reset() after Phase B.
struct PendingTrigger {
  size_t tgd_index = 0;
  ArenaSpan<AtomId> matched;    // body-matched atoms, body order
  ArenaSpan<Binding> bindings;  // frontier bindings, flat
};

// Runs Phase A across slots: a thread pool (lazily spawned once waves are
// big enough to amortize the handoff) plus one scratch arena per worker.
class WaveExecutor {
 public:
  // `num_threads` counts the caller; 1 disables the pool entirely.
  explicit WaveExecutor(size_t num_threads)
      : num_threads_(num_threads < 1 ? 1 : num_threads) {
    arenas_.reserve(num_threads_);
    for (size_t i = 0; i < num_threads_; ++i) {
      arenas_.push_back(std::make_unique<Arena>());
    }
  }

  size_t num_threads() const { return num_threads_; }

  // Runs fn(slot, arena) for every slot in [0, n); arena is private to
  // the executing worker for the duration of the call. fn must write
  // only slot-owned state (plus its arena). Blocks until all slots ran.
  void ForEachSlot(size_t n, const FunctionRef<void(size_t, Arena&)>& fn) {
    if (n == 0) return;
    if (num_threads_ > 1 && pool_ == nullptr && n >= kMinSlotsForPool) {
      pool_ = std::make_unique<ThreadPool>(num_threads_);
    }
    if (pool_ == nullptr || n == 1) {
      for (size_t i = 0; i < n; ++i) fn(i, *arenas_[0]);
      return;
    }
    pool_->ParallelFor(n, [&fn, this](size_t slot, size_t worker) {
      fn(slot, *arenas_[worker]);
    });
  }

  // Invalidates every span handed out during the last ForEachSlot and
  // recycles the arena chunks. Call between waves, after Phase B has
  // consumed the pending triggers.
  void ResetArenas() {
    for (auto& arena : arenas_) arena->Reset();
  }

 private:
  // Below this wave size the pool handoff costs more than the scan; the
  // threshold only affects wall-clock, never results (the wave algorithm
  // is thread-count-invariant by construction).
  static constexpr size_t kMinSlotsForPool = 8;

  size_t num_threads_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Arena>> arenas_;
};

}  // namespace kbrepair

#endif  // KBREPAIR_CHASE_WAVE_H_
