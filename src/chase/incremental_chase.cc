#include "chase/incremental_chase.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>

#include "chase/wave.h"
#include "kb/homomorphism.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/trace.h"

namespace kbrepair {

IncrementalChase::IncrementalChase(SymbolTable* symbols,
                                   const std::vector<Tgd>* tgds,
                                   ChaseOptions options)
    : symbols_(symbols), tgds_(tgds), options_(options) {
  KBREPAIR_CHECK(symbols != nullptr);
  KBREPAIR_CHECK(tgds != nullptr);
}

Status IncrementalChase::Initialize(const FactBase& facts) {
  KBREPAIR_CHECK(facts.num_alive() == facts.size());
  initialized_ = false;
  chased_ = facts;
  num_original_ = facts.size();
  derivations_.Clear();
  children_.Clear();
  suppressed_.Clear();
  suppressed_by_witness_.Clear();
  derivation_arena_ = std::make_shared<Arena>();
  retained_arenas_.clear();

  auto anchors = std::make_shared<AnchorIndex>();
  for (size_t r = 0; r < tgds_->size(); ++r) {
    const std::vector<Atom>& body = (*tgds_)[r].body();
    for (size_t j = 0; j < body.size(); ++j) {
      (*anchors)[body[j].predicate].emplace_back(r, j);
    }
  }
  anchor_index_ = std::move(anchors);

  std::vector<AtomId> work;
  work.reserve(chased_.size());
  for (AtomId id = 0; id < chased_.size(); ++id) work.push_back(id);
  KBREPAIR_RETURN_IF_ERROR(Saturate(std::move(work)));
  initialized_ = true;
  return Status::Ok();
}

void IncrementalChase::FreezeShared() {
  KBREPAIR_CHECK(initialized_);
  chased_.FreezeSharedBase();
  derivations_.Freeze();
  children_.Freeze();
  suppressed_.Freeze();
  suppressed_by_witness_.Freeze();
}

void IncrementalChase::AdoptShared(const IncrementalChase& frozen) {
  KBREPAIR_CHECK(frozen.initialized_);
  KBREPAIR_DCHECK(frozen.chased_.has_shared_base());
  chased_ = frozen.chased_;
  num_original_ = frozen.num_original_;
  derivations_ = frozen.derivations_;
  children_ = frozen.children_;
  anchor_index_ = frozen.anchor_index_;
  suppressed_ = frozen.suppressed_;
  suppressed_by_witness_ = frozen.suppressed_by_witness_;
  // The prototype's derivation spans stay alive through the retained
  // arena chain; this fork's own derivations go into a fresh arena the
  // prototype never sees.
  retained_arenas_ = frozen.retained_arenas_;
  retained_arenas_.push_back(frozen.derivation_arena_);
  derivation_arena_ = std::make_shared<Arena>();
  // A cold Initialize() never resets the lifetime counters, and a fresh
  // chase starts them at zero — so adopting the prototype's values is
  // exactly what Initialize() on the same facts would leave behind.
  total_retracted_ = frozen.total_retracted_;
  total_added_ = frozen.total_added_;
  total_refired_ = frozen.total_refired_;
  initialized_ = true;
}

AtomId IncrementalChase::FindAtom(const Atom& atom) const {
  AtomSpan candidates =
      atom.args.empty()
          ? chased_.AtomsWithPredicate(atom.predicate)
          : chased_.AtomsWithTermAt(atom.predicate, 0, atom.args[0]);
  for (AtomId id : candidates) {
    if (chased_.atom(id) == atom) return id;
  }
  return kInvalidAtom;
}

void IncrementalChase::RecordSuppressed(
    size_t tgd_index, std::vector<AtomId> matched,
    std::vector<Binding> bindings, const std::vector<AtomId>& witnesses) {
  const size_t entry = suppressed_.size();
  suppressed_.PushBack(SuppressedTrigger{tgd_index, std::move(matched),
                                         std::move(bindings)});
  for (AtomId witness : witnesses) {
    suppressed_by_witness_.Mutable(witness).push_back(entry);
  }
}

Status IncrementalChase::FireTrigger(size_t tgd_index, const AtomId* matched,
                                     size_t num_matched,
                                     const Binding* bindings,
                                     size_t num_bindings,
                                     std::vector<AtomId>* work) {
  const Tgd& tgd = (*tgds_)[tgd_index];
  head_scratch_.assign(bindings, bindings + num_bindings);
  const size_t num_frontier = head_scratch_.size();
  for (TermId var : tgd.existential_variables()) {
    head_scratch_.push_back(Binding{var, symbols_->MakeFreshNull()});
  }
  for (const Atom& head_atom : tgd.head()) {
    const Atom instance = SubstituteTerms(head_atom, head_scratch_.data(),
                                          head_scratch_.size());
    bool has_fresh_null = false;
    for (TermId arg : instance.args) {
      for (size_t k = num_frontier; k < head_scratch_.size(); ++k) {
        has_fresh_null = has_fresh_null || head_scratch_[k].term == arg;
      }
    }
    if (!has_fresh_null) {
      // Ground duplicate: remember the trigger keyed by the blocking
      // atom so retraction can revive it.
      const AtomId duplicate = FindAtom(instance);
      if (duplicate != kInvalidAtom) {
        RecordSuppressed(tgd_index,
                         std::vector<AtomId>(matched, matched + num_matched),
                         std::vector<Binding>(bindings,
                                              bindings + num_bindings),
                         {duplicate});
        continue;
      }
    }
    if (chased_.num_alive() >= options_.max_atoms) {
      return Status::Internal(
          "chase exceeded max_atoms; TGD set likely not weakly acyclic or "
          "cap too low");
    }
    const AtomId new_id = chased_.Add(instance);
    KBREPAIR_CHECK_EQ(new_id - num_original_, derivations_.size());
    Derivation derivation;
    derivation.tgd_index = tgd_index;
    derivation.parents = derivation_arena_->Copy(matched, num_matched);
    derivations_.PushBack(std::move(derivation));
    for (size_t j = 0; j < num_matched; ++j) {
      children_.Mutable(matched[j]).push_back(new_id);
    }
    work->push_back(new_id);
    ++total_added_;
  }
  return Status::Ok();
}

Status IncrementalChase::Saturate(std::vector<AtomId> wave) {
  trace::ScopedSpan span("chase.delta_saturate", trace::Phase::kDeltaChase);
  KBREPAIR_FAILPOINT("chase.saturate",
                     Status::Internal("injected chase saturation fault"));
  if (options_.cancel != nullptr) {
    KBREPAIR_RETURN_IF_ERROR(options_.cancel->Check("delta chase"));
  }
  HomomorphismFinder finder(symbols_, &chased_);
  WaveExecutor exec(options_.num_threads);
  // Per-slot Phase A findings; written by one worker each, merged in
  // slot order by Phase B.
  std::vector<std::vector<PendingTrigger>> slots;
  std::vector<AtomId> next;
  std::vector<Atom> head_query;
  size_t steps = 0;

  while (!wave.empty()) {
    if (options_.cancel != nullptr) {
      KBREPAIR_RETURN_IF_ERROR(options_.cancel->Check("delta chase"));
    }
    if (slots.size() < wave.size()) slots.resize(wave.size());

    // --- Phase A: enumerate triggers anchored at each wave atom against
    // the wave-start snapshot (read-only; same discipline as the scratch
    // engine, so both reach competing triggers in the same order).
    exec.ForEachSlot(wave.size(), [&](size_t s, Arena& arena) {
      std::vector<PendingTrigger>& triggers = slots[s];
      triggers.clear();
      const AtomId current = wave[s];
      if (!chased_.alive(current)) return;
      const PredicateId pred = chased_.atom(current).predicate;
      auto it = anchor_index_->find(pred);
      if (it == anchor_index_->end()) return;
      for (const auto& [tgd_index, body_pos] : it->second) {
        finder.FindAllPinnedViews(
            (*tgds_)[tgd_index].body(), body_pos, current,
            [&, tgd_index = tgd_index](const HomomorphismView& view) {
              PendingTrigger trigger;
              trigger.tgd_index = tgd_index;
              trigger.matched = arena.Copy(view.matched, view.num_matched);
              trigger.bindings =
                  arena.Copy(view.bindings, view.num_bindings);
              triggers.push_back(trigger);
              return true;
            });
      }
    });

    // --- Phase B: deterministic sequential fire/suppress in slot order
    // against the live base.
    next.clear();
    for (size_t s = 0; s < wave.size(); ++s) {
      if (options_.cancel != nullptr && (++steps & 63) == 0) {
        KBREPAIR_RETURN_IF_ERROR(options_.cancel->Check("delta chase"));
      }
      for (const PendingTrigger& trigger : slots[s]) {
        const Tgd& tgd = (*tgds_)[trigger.tgd_index];
        head_query.clear();
        for (const Atom& head_atom : tgd.head()) {
          head_query.push_back(SubstituteTerms(
              head_atom, trigger.bindings.ptr, trigger.bindings.len));
        }
        std::optional<Homomorphism> witness = finder.FindFirst(head_query);
        if (witness.has_value()) {
          RecordSuppressed(
              trigger.tgd_index,
              std::vector<AtomId>(trigger.matched.begin(),
                                  trigger.matched.end()),
              std::vector<Binding>(trigger.bindings.begin(),
                                   trigger.bindings.end()),
              witness->matched);
          continue;
        }
        KBREPAIR_RETURN_IF_ERROR(FireTrigger(
            trigger.tgd_index, trigger.matched.ptr, trigger.matched.len,
            trigger.bindings.ptr, trigger.bindings.len, &next));
      }
    }

    exec.ResetArenas();
    wave.swap(next);
  }
  return Status::Ok();
}

void IncrementalChase::RetractAtom(AtomId id) {
  KBREPAIR_DCHECK(!IsOriginal(id));
  chased_.Remove(id);
  const Derivation& derivation = derivations_[id - num_original_];
  for (AtomId parent : derivation.parents) {
    std::vector<AtomId>* kids = children_.FindMutable(parent);
    if (kids == nullptr) continue;
    auto entry = std::find(kids->begin(), kids->end(), id);
    if (entry != kids->end()) {
      *entry = kids->back();
      kids->pop_back();
      if (kids->empty()) children_.Erase(parent);
    }
  }
  children_.Erase(id);
  ++total_retracted_;
}

std::vector<size_t> IncrementalChase::TakeSuppressedByWitness(
    AtomId witness) {
  std::vector<size_t> entries = suppressed_by_witness_.Take(witness);
  entries.erase(std::remove_if(entries.begin(), entries.end(),
                               [&](size_t e) {
                                 return suppressed_[e].matched.empty();
                               }),
                entries.end());
  return entries;
}

StatusOr<IncrementalChase::Delta> IncrementalChase::ApplyFix(AtomId atom,
                                                             int arg,
                                                             TermId value) {
  KBREPAIR_CHECK(initialized_);
  KBREPAIR_CHECK(IsOriginal(atom));
  Delta delta;
  delta.modified = atom;

  chased_.SetArg(atom, arg, value);

  // --- Retract the cone of the fixed atom: every derived atom whose
  // provenance (transitively) used it.
  std::vector<AtomId> frontier;
  {
    const std::vector<AtomId>* kids = children_.Find(atom);
    if (kids != nullptr) frontier.assign(kids->begin(), kids->end());
  }
  std::vector<AtomId> cone;
  while (!frontier.empty()) {
    const AtomId id = frontier.back();
    frontier.pop_back();
    if (!chased_.alive(id)) continue;  // already collected via another path
    const std::vector<AtomId>* kids = children_.Find(id);
    if (kids != nullptr) {
      frontier.insert(frontier.end(), kids->begin(), kids->end());
    }
    RetractAtom(id);
    cone.push_back(id);
  }
  std::sort(cone.begin(), cone.end());
  delta.retracted = cone;

  // --- Collect suppressed triggers whose witness was retracted or
  // rewritten; they may be unblocked now.
  std::vector<size_t> revive = TakeSuppressedByWitness(atom);
  for (AtomId id : cone) {
    std::vector<size_t> more = TakeSuppressedByWitness(id);
    revive.insert(revive.end(), more.begin(), more.end());
  }
  std::sort(revive.begin(), revive.end());
  revive.erase(std::unique(revive.begin(), revive.end()), revive.end());
  // Canonical re-check order: (tgd index, matched atom ids). Matched ids
  // of original atoms are stable, so this matches the order in which a
  // from-scratch run would reach the competing triggers.
  std::sort(revive.begin(), revive.end(), [&](size_t a, size_t b) {
    const SuppressedTrigger& ta = suppressed_[a];
    const SuppressedTrigger& tb = suppressed_[b];
    if (ta.tgd_index != tb.tgd_index) return ta.tgd_index < tb.tgd_index;
    return ta.matched < tb.matched;
  });

  const size_t size_before = chased_.size();
  std::vector<AtomId> work;
  work.push_back(atom);

  HomomorphismFinder finder(symbols_, &chased_);
  std::vector<Atom> head_query;
  for (size_t entry_index : revive) {
    if (suppressed_[entry_index].matched.empty()) continue;  // killed
    SuppressedTrigger& entry = suppressed_.Mutable(entry_index);
    const Tgd& tgd = (*tgds_)[entry.tgd_index];
    // The body must still be alive and still match under the recorded
    // bindings (the fixed atom may have invalidated it).
    bool valid = true;
    for (size_t j = 0; valid && j < entry.matched.size(); ++j) {
      valid = chased_.alive(entry.matched[j]) &&
              SubstituteTerms(tgd.body()[j], entry.bindings) ==
                  chased_.atom(entry.matched[j]);
    }
    if (!valid) {
      entry.matched.clear();
      continue;
    }
    head_query.clear();
    for (const Atom& head_atom : tgd.head()) {
      head_query.push_back(SubstituteTerms(head_atom, entry.bindings));
    }
    std::optional<Homomorphism> witness = finder.FindFirst(head_query);
    if (witness.has_value()) {
      // Still blocked; re-register under the current witness.
      for (AtomId w : witness->matched) {
        suppressed_by_witness_.Mutable(w).push_back(entry_index);
      }
      continue;
    }
    // Unblocked: fire now. Move the entry out — firing may record new
    // suppressions, which can reallocate suppressed_.
    SuppressedTrigger fired = std::move(entry);
    entry.matched.clear();
    ++total_refired_;
    KBREPAIR_RETURN_IF_ERROR(FireTrigger(
        fired.tgd_index, fired.matched.data(), fired.matched.size(),
        fired.bindings.data(), fired.bindings.size(), &work));
  }

  KBREPAIR_RETURN_IF_ERROR(Saturate(std::move(work)));

  for (AtomId id = static_cast<AtomId>(size_before); id < chased_.size();
       ++id) {
    delta.added.push_back(id);
  }
  return delta;
}

std::vector<AtomId> IncrementalChase::OriginalSupport(
    const std::vector<AtomId>& ids) const {
  if (support_epoch_.size() < chased_.size()) {
    support_epoch_.resize(chased_.size(), 0);
  }
  if (support_epoch_counter_ == std::numeric_limits<uint32_t>::max()) {
    std::fill(support_epoch_.begin(), support_epoch_.end(), 0);
    support_epoch_counter_ = 0;
  }
  const uint32_t epoch = ++support_epoch_counter_;
  std::vector<AtomId>& frontier = support_frontier_;
  frontier.assign(ids.begin(), ids.end());
  std::vector<AtomId> support;
  while (!frontier.empty()) {
    const AtomId id = frontier.back();
    frontier.pop_back();
    if (support_epoch_[id] == epoch) continue;
    support_epoch_[id] = epoch;
    if (IsOriginal(id)) {
      support.push_back(id);
    } else {
      KBREPAIR_DCHECK(chased_.alive(id));
      const Derivation& d = derivations_[id - num_original_];
      frontier.insert(frontier.end(), d.parents.begin(), d.parents.end());
    }
  }
  std::sort(support.begin(), support.end());
  return support;
}

}  // namespace kbrepair
