#include "chase/support.h"

#include <algorithm>

#include "kb/atom.h"
#include "util/logging.h"

namespace kbrepair {

CanonicalSupportResolver::CanonicalSupportResolver(
    const SymbolTable* symbols, const std::vector<Tgd>* tgds,
    const FactBase* facts, size_t num_original)
    : symbols_(symbols),
      tgds_(tgds),
      facts_(facts),
      num_original_(num_original),
      finder_(symbols, facts) {
  KBREPAIR_CHECK(symbols != nullptr);
  KBREPAIR_CHECK(tgds != nullptr);
  KBREPAIR_CHECK(facts != nullptr);
}

std::vector<AtomId> CanonicalSupportResolver::Support(AtomId id) {
  if (id < num_original_) return {id};
  const Result result = Resolve(id);
  // An alive derived atom always has at least one acyclic proof (it
  // would not be in the chased base otherwise).
  KBREPAIR_CHECK(result.found);
  return result.support;
}

std::vector<AtomId> CanonicalSupportResolver::Support(
    const std::vector<AtomId>& ids) {
  std::vector<AtomId> support;
  for (const AtomId id : ids) {
    const std::vector<AtomId> one = Support(id);
    support.insert(support.end(), one.begin(), one.end());
  }
  std::sort(support.begin(), support.end());
  support.erase(std::unique(support.begin(), support.end()), support.end());
  return support;
}

bool CanonicalSupportResolver::Unify(
    const Atom& pattern, const Atom& ground,
    std::unordered_map<TermId, TermId>& bindings) const {
  if (pattern.args.size() != ground.args.size()) return false;
  for (size_t i = 0; i < pattern.args.size(); ++i) {
    const TermId t = pattern.args[i];
    const TermId g = ground.args[i];
    if (symbols_->IsVariable(t)) {
      auto [it, inserted] = bindings.emplace(t, g);
      if (!inserted && it->second != g) return false;
    } else if (t != g) {
      return false;
    }
  }
  return true;
}

CanonicalSupportResolver::Result CanonicalSupportResolver::Resolve(
    AtomId id) {
  if (id < num_original_) {
    Result result;
    result.support = {id};
    result.found = true;
    return result;
  }
  if (auto it = memo_.find(id); it != memo_.end()) {
    Result result;
    result.support = it->second;
    result.found = true;
    return result;
  }
  Result result;
  if (on_path_.count(id) > 0) {
    // Cycle: not a well-founded proof through this branch.
    result.tainted = true;
    return result;
  }
  on_path_.insert(id);

  const Atom& target = facts_->atom(id);
  for (size_t t = 0; t < tgds_->size(); ++t) {
    const Tgd& tgd = (*tgds_)[t];
    for (const Atom& head_atom : tgd.head()) {
      if (head_atom.predicate != target.predicate) continue;
      std::unordered_map<TermId, TermId> bindings;
      if (!Unify(head_atom, target, bindings)) continue;
      const std::vector<Atom> body_query =
          SubstituteTerms(tgd.body(), bindings);
      // Materialize the candidate parent sets before recursing (the
      // recursion re-enters the finder).
      std::vector<std::vector<AtomId>> candidates;
      finder_.FindAll(body_query, [&](const Homomorphism& hom) {
        candidates.push_back(hom.matched);
        return true;
      });
      for (const std::vector<AtomId>& parents : candidates) {
        std::vector<AtomId> support;
        bool viable = true;
        for (const AtomId parent : parents) {
          const Result sub = Resolve(parent);
          result.tainted = result.tainted || sub.tainted;
          if (!sub.found) {
            viable = false;
            break;
          }
          support.insert(support.end(), sub.support.begin(),
                         sub.support.end());
        }
        if (!viable) continue;
        std::sort(support.begin(), support.end());
        support.erase(std::unique(support.begin(), support.end()),
                      support.end());
        if (!result.found || support < result.support) {
          result.support = std::move(support);
          result.found = true;
        }
      }
    }
  }

  on_path_.erase(id);
  if (result.found && !result.tainted) {
    memo_.emplace(id, result.support);
  }
  return result;
}

}  // namespace kbrepair
