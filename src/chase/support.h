// Canonical original support: an engine-independent replacement for
// fire-time chase provenance.
//
// The chase records, for each derived atom, the first trigger that fired
// it — but "first" depends on saturation order, and an atom with several
// valid derivations gets different recorded parents in a from-scratch
// chase vs a maintained delta chase (where a retracted atom may be
// re-derived through another rule). Conflict supports built from such
// provenance are then engine-dependent, which breaks the differential
// guarantee of the scratch/incremental pair.
//
// CanonicalSupportResolver computes a support that is a pure function of
// the *current* atom set: the canonical support of a derived atom is the
// lexicographically smallest sorted original-atom set over all acyclic
// proof trees (backward search over the TGDs, unifying rule heads with
// the atom and enumerating body homomorphisms). Both conflict engines
// derive question supports through this resolver, so equal chased bases
// yield equal supports regardless of how they were reached.
//
// Results untainted by the cycle guard are memoized; tainted ones (a
// candidate proof revisited an atom on the current recursion path) are
// recomputed per top-level query so the value never depends on resolver
// call order. Weakly-acyclic TGD sets as generated here have acyclic
// derivations, so in practice everything memoizes.

#ifndef KBREPAIR_CHASE_SUPPORT_H_
#define KBREPAIR_CHASE_SUPPORT_H_

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kb/fact_base.h"
#include "kb/homomorphism.h"
#include "kb/symbol_table.h"
#include "rules/tgd.h"

namespace kbrepair {

class CanonicalSupportResolver {
 public:
  // `facts` is a chased base whose ids [0, num_original) are the
  // original atoms. All pointers must outlive the resolver; the base
  // must not change while the resolver is in use (memoization).
  CanonicalSupportResolver(const SymbolTable* symbols,
                           const std::vector<Tgd>* tgds,
                           const FactBase* facts, size_t num_original);

  // Canonical original support of the alive atom `id` (the atom itself
  // when original). Sorted, deduplicated.
  std::vector<AtomId> Support(AtomId id);

  // Union over several atoms. Sorted, deduplicated.
  std::vector<AtomId> Support(const std::vector<AtomId>& ids);

 private:
  struct Result {
    std::vector<AtomId> support;
    bool found = false;    // false: every proof was cut by the guard
    bool tainted = false;  // depended on the recursion path; don't memo
  };

  Result Resolve(AtomId id);

  // Unifies rule atom `pattern` (constants + variables) against the
  // ground/null atom `ground`, extending `bindings`.
  bool Unify(const Atom& pattern, const Atom& ground,
             std::unordered_map<TermId, TermId>& bindings) const;

  const SymbolTable* symbols_;
  const std::vector<Tgd>* tgds_;
  const FactBase* facts_;
  size_t num_original_;
  HomomorphismFinder finder_;

  std::unordered_map<AtomId, std::vector<AtomId>> memo_;
  std::unordered_set<AtomId> on_path_;
};

}  // namespace kbrepair

#endif  // KBREPAIR_CHASE_SUPPORT_H_
