// One managed repair session: a knowledge base plus a suspended inquiry
// dialogue, driven one protocol command at a time.
//
// A RepairSession owns its KnowledgeBase (and thus its symbol table), so
// sessions share no mutable state and can run on different workers
// concurrently. Within one session, the SessionManager serializes
// command execution — handlers here assume single-threaded access.

#ifndef KBREPAIR_SERVICE_SESSION_H_
#define KBREPAIR_SERVICE_SESSION_H_

#include <memory>
#include <string>

#include "repair/inquiry.h"
#include "repair/session_log.h"
#include "rules/knowledge_base.h"
#include "service/metrics.h"
#include "service/protocol.h"
#include "util/json.h"
#include "util/status.h"

namespace kbrepair {

// Parses a `create` request's KB source:
//   "kb": "durum_wheat_v1" | "durum_wheat_v2" | "synthetic"
//         (synthetic honours kb_seed, num_facts, num_cdds,
//          inconsistency_ratio), or
//   "kb_dlgp": inline DLGP text.
// The KB is validated (weak acyclicity etc.) before use. `label` gets a
// short description for status/metrics output.
StatusOr<KnowledgeBase> BuildKbFromParams(const JsonValue& params,
                                          std::string* label);

// Parses strategy/seed/two_phase/max_questions from `create` params.
StatusOr<InquiryOptions> InquiryOptionsFromParams(const JsonValue& params);

class RepairSession {
 public:
  // Builds the KB, starts the dialogue (Π-repairability check + initial
  // conflict census). Fails without registering anything on bad params
  // or an unrepairable KB.
  static StatusOr<std::unique_ptr<RepairSession>> Create(
      std::string id, const JsonValue& params);

  const std::string& id() const { return id_; }
  const std::string& kb_label() const { return kb_label_; }

  // `ask`: the pending question (generating it if necessary), or
  // {"done":true} once consistent. Idempotent between answers.
  StatusOr<JsonValue> Ask(ServiceMetrics* metrics);

  // `answer`: applies params["choice"], records the transcript entry.
  StatusOr<JsonValue> Answer(const JsonValue& params,
                             ServiceMetrics* metrics);

  // `status`: cheap introspection; never advances the dialogue.
  JsonValue StatusInfo() const;

  // `snapshot`: transcript JSON + current working facts.
  StatusOr<JsonValue> Snapshot() const;

  // `close`: finalizes the inquiry and reports totals; with
  // params["include_facts"] the repaired fact base rides along.
  StatusOr<JsonValue> Close(const JsonValue& params,
                            ServiceMetrics* metrics);

  // Transcript + identity, written to disk by the manager on close or
  // shutdown (when a transcript directory is configured).
  JsonValue TranscriptJson() const;

  bool closed() const { return closed_; }

 private:
  RepairSession(std::string id, std::string kb_label, KnowledgeBase kb,
                InquiryOptions options);

  std::string id_;
  std::string kb_label_;
  KnowledgeBase kb_;
  InquiryOptions options_;
  // Constructed after kb_ reaches its final address (the engine keeps a
  // KnowledgeBase*).
  std::unique_ptr<InquiryEngine> engine_;
  SessionTranscript transcript_;
  bool question_outstanding_ = false;  // served but not yet answered
  bool closed_ = false;
};

}  // namespace kbrepair

#endif  // KBREPAIR_SERVICE_SESSION_H_
