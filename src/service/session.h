// One managed repair session: a knowledge base plus a suspended inquiry
// dialogue, driven one protocol command at a time.
//
// A RepairSession owns its KnowledgeBase (and thus its symbol table), so
// sessions share no mutable state and can run on different workers
// concurrently. Within one session, the SessionManager serializes
// command execution — handlers here assume single-threaded access.

#ifndef KBREPAIR_SERVICE_SESSION_H_
#define KBREPAIR_SERVICE_SESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "repair/inquiry.h"
#include "repair/session_log.h"
#include "rules/knowledge_base.h"
#include "service/base_registry.h"
#include "service/metrics.h"
#include "service/protocol.h"
#include "service/wal.h"
#include "util/cancel.h"
#include "util/json.h"
#include "util/status.h"

namespace kbrepair {

// Parses a `create` request's KB source:
//   "kb": "durum_wheat_v1" | "durum_wheat_v2" | "synthetic"
//         (synthetic honours kb_seed, num_facts, num_cdds,
//          inconsistency_ratio, and the full generator surface:
//          num_tgds, conflict_depth, routed_violation_share,
//          cdd_min_atoms, cdd_max_atoms, min_arity, max_arity,
//          min_multiplicity, max_multiplicity — so a WAL create record
//          alone reconstructs any harness KB bit-for-bit), or
//   "kb_dlgp": inline DLGP text.
// The KB is validated (weak acyclicity etc.) before use. `label` gets a
// short description for status/metrics output.
StatusOr<KnowledgeBase> BuildKbFromParams(const JsonValue& params,
                                          std::string* label);

// Parses strategy/seed/two_phase/max_questions/engine/chase_threads/
// record_convergence ("off" | "total" | "discovered") from `create`
// params. record_convergence is dialogue-relevant for scratch two-phase
// non-mcd runs, so WALs that should replay across engines record it.
StatusOr<InquiryOptions> InquiryOptionsFromParams(const JsonValue& params);

// Matches a WAL-recorded fix (wire JSON: atom/arg numbers plus
// kind/value strings) against the fixes of a regenerated question,
// returning the offered index or nullopt. Comparison stays at the
// string level and never mutates the symbol table — interning the
// recorded terms would advance the fresh-null counter and break
// byte-identical replay. A recorded fresh null matches an offered fresh
// null of the same position even when their minted names differ.
// Shared by WAL recovery and the kbrepair-debug timeline.
std::optional<size_t> MatchRecordedFixJson(const JsonValue& recorded,
                                           const Question& question,
                                           const InquiryView& view,
                                           const SymbolTable& symbols);

// Sets the daemon-wide chase-thread default applied when a `create`
// omits "chase_threads" (kbrepaird --chase-threads). Call before serving.
void SetDefaultChaseThreads(size_t threads);

class RepairSession {
 public:
  // Builds the KB, starts the dialogue (Π-repairability check + initial
  // conflict census). Fails without registering anything on bad params
  // or an unrepairable KB. A positive `deadline_ms` bounds the initial
  // census (DeadlineExceeded past it).
  static StatusOr<std::unique_ptr<RepairSession>> Create(
      std::string id, const JsonValue& params, int64_t deadline_ms = 0);

  // `create` with params["base"]: forks the KB from the registered
  // snapshot in O(delta) — shared symbol/fact segments, adopted
  // repairability verdict and conflict censuses — instead of building
  // and re-chasing a private copy. The handle's refcount keeps the base
  // alive for the session's lifetime. Fails without side effects when
  // the snapshot is not Π-repairable.
  static StatusOr<std::unique_ptr<RepairSession>> CreateFromBase(
      std::string id, const JsonValue& params, BaseRegistry::Handle base,
      int64_t deadline_ms = 0);

  // Crash recovery: rebuilds a session from its WAL — the recorded
  // create params plus the answer history as transcript-entry records —
  // by replaying every answer through the restarted engine via
  // ReplayUser. The engine is deterministic given (params, answers), so
  // the recovered session is byte-identical to the lost one; divergence
  // (entries the fresh engine does not offer) returns Internal and the
  // WAL is left for inspection. Recovery runs without a per-command
  // deadline: it is N commands' worth of work by construction.
  static StatusOr<std::unique_ptr<RepairSession>> Recover(
      std::string id, const JsonValue& create_params,
      const std::vector<JsonValue>& entries);

  // Recovery of a base-forked session: the WAL's create record carries
  // "base":<name>, so instead of rebuilding a private KB the session is
  // re-forked from the (already recovered) registry snapshot and the
  // answer history is replayed on top — same replay contract as
  // Recover().
  static StatusOr<std::unique_ptr<RepairSession>> RecoverFromBase(
      std::string id, const JsonValue& create_params,
      BaseRegistry::Handle base, const std::vector<JsonValue>& entries);

  // Hands the session its WAL. From now on every accepted answer/close
  // is appended (and fsync'd) before execution, and the log is compacted
  // to a snapshot record every `compact_every` appends.
  void AttachWal(std::unique_ptr<SessionWal> wal, size_t compact_every);

  // Per-command deadline plumbing (manager-driven). Arming with a
  // non-positive budget is a no-op.
  void ArmDeadline(int64_t budget_ms);
  void DisarmDeadline();

  const std::string& id() const { return id_; }
  const std::string& kb_label() const { return kb_label_; }
  // Name of the shared base this session was forked from ("" for a
  // private-KB session).
  const std::string& base_name() const { return base_.name(); }

  // `ask`: the pending question (generating it if necessary), or
  // {"done":true} once consistent. Idempotent between answers.
  StatusOr<JsonValue> Ask(ServiceMetrics* metrics);

  // `answer`: applies params["choice"], records the transcript entry.
  StatusOr<JsonValue> Answer(const JsonValue& params,
                             ServiceMetrics* metrics);

  // `status`: cheap introspection; never advances the dialogue.
  JsonValue StatusInfo() const;

  // `snapshot`: transcript JSON + current working facts.
  StatusOr<JsonValue> Snapshot() const;

  // `close`: finalizes the inquiry and reports totals; with
  // params["include_facts"] the repaired fact base rides along. With
  // `wal_degraded` (the owning shard is in disk-degraded mode) the
  // close record is not appended — unlink still works on a full disk,
  // so closing is how clients free space. A crash between execute and
  // Remove() can then resurrect a session whose close was never acked;
  // the retry contract covers that (the client re-issues the close).
  StatusOr<JsonValue> Close(const JsonValue& params, ServiceMetrics* metrics,
                            bool wal_degraded = false);

  // Transcript + identity, written to disk by the manager on close or
  // shutdown (when a transcript directory is configured).
  JsonValue TranscriptJson() const;

  // Indices into the metrics label axes (StrategyLabelName /
  // EngineLabelName) for this session's strategy and *active* conflict
  // engine — after a demotion the attribution follows the engine
  // actually doing the work.
  size_t strategy_label() const;
  size_t engine_label() const;

  // Bumps the labeled session counter; the manager calls this once when
  // the session is registered (create or recovery).
  void RecordOpened(ServiceMetrics* metrics) const;

  // Folds a per-command phase-time delta (see trace::ThreadPhaseTotals)
  // into this session's labeled phase histograms. Zero phases are
  // skipped so untouched histograms stay empty.
  void ObservePhases(ServiceMetrics* metrics,
                     const trace::PhaseTotals& delta) const;

  bool closed() const { return closed_; }

  // Rough resident-byte estimate for the memory governor: working
  // overlay atoms + provenance, transcript entries, and un-compacted
  // WAL backlog, plus a fixed per-session overhead. Deliberately cheap
  // (a few size() reads) — it runs after every session command.
  int64_t EstimateMemoryBytes() const;

 private:
  RepairSession(std::string id, std::string kb_label, KnowledgeBase kb,
                InquiryOptions options, JsonValue create_params);

  // Folds any new engine demotions into the metrics (idempotent).
  void ReportEngineFallbacks(size_t total_fallbacks, ServiceMetrics* metrics);

  // Shared WAL-replay loop behind Recover()/RecoverFromBase().
  static Status ReplayWalEntries(RepairSession* session,
                                 const std::vector<JsonValue>& entries);

  std::string id_;
  std::string kb_label_;
  // Refcount on the shared base this session forked from (empty for
  // private-KB sessions). Declared before kb_ so it outlives the fork —
  // kb_ shares segments the snapshot owns.
  BaseRegistry::Handle base_;
  KnowledgeBase kb_;
  InquiryOptions options_;
  // The create request params, kept verbatim for WAL records (recovery
  // rebuilds the KB and options from them).
  JsonValue create_params_;
  // Shared with options_.chase_options so every chase the engine runs
  // honours the armed deadline.
  std::shared_ptr<CancelToken> cancel_;
  // Constructed after kb_ reaches its final address (the engine keeps a
  // KnowledgeBase*).
  std::unique_ptr<InquiryEngine> engine_;
  SessionTranscript transcript_;
  std::unique_ptr<SessionWal> wal_;
  size_t wal_compact_every_ = 64;
  size_t reported_fallbacks_ = 0;
  bool question_outstanding_ = false;  // served but not yet answered
  bool closed_ = false;
};

}  // namespace kbrepair

#endif  // KBREPAIR_SERVICE_SESSION_H_
