// SessionManager: the thread-safe registry and scheduler behind
// `kbrepaird`.
//
// Scheduling model (the classic "serial executor per key over a shared
// pool" used by actor runtimes and HTTP/2 servers):
//  * N workers pull from one ready queue (bounded by max_queue across
//    all pending commands; excess submissions are rejected, not
//    buffered — backpressure instead of unbounded memory);
//  * commands addressed to one session are executed strictly in arrival
//    order by at most one worker at a time (a `busy` bit plus a
//    per-session wait queue), so session state needs no locking of its
//    own while distinct sessions run fully in parallel;
//  * `create`/`metrics`/`trace` are session-less and run as independent
//    tasks;
//  * a reaper thread evicts sessions idle longer than the TTL;
//  * Shutdown() stops intake, drains every queued command, joins the
//    workers and flushes all remaining transcripts to transcript_dir.
//
// Completions run on worker threads; they must not call back into the
// manager (the daemon's completion just writes one line to stdout).

#ifndef KBREPAIR_SERVICE_SESSION_MANAGER_H_
#define KBREPAIR_SERVICE_SESSION_MANAGER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <variant>
#include <vector>

#include "service/base_registry.h"
#include "service/metrics.h"
#include "service/protocol.h"
#include "service/resource_governor.h"
#include "service/session.h"
#include "util/status.h"
#include "util/timer.h"

namespace kbrepair {

struct ServiceConfig {
  size_t num_workers = 4;
  // Cap on commands queued or executing across all sessions; beyond it
  // submissions fail fast with FailedPrecondition.
  size_t max_queue = 1024;
  // Sessions idle (no queued or executing command) longer than this are
  // evicted by the reaper. <= 0 disables eviction.
  double idle_ttl_seconds = 0.0;
  // When non-empty, transcripts are written here as <session-id>.json on
  // close, eviction and shutdown.
  std::string transcript_dir;
  // When non-empty, every accepted create/answer/close is write-ahead
  // logged to <wal_dir>/<session-id>.wal (fsync'd before execution).
  std::string wal_dir;
  // With wal_dir set: replay every WAL found there at startup and
  // re-register the sessions (the daemon's --recover-dir).
  bool recover = false;
  // Per-command deadline; <= 0 disables. Commands past it fail with
  // DeadlineExceeded instead of wedging a worker.
  int64_t deadline_ms = 0;
  // Compact a session's WAL into one snapshot record every N appends.
  size_t wal_compact_every = 64;
  // When non-empty, the process-wide span recorder is enabled with this
  // directory as its sink: every instrumented region records a span, the
  // `trace` command drains them to <trace_dir>/trace-NNNNN.jsonl, and
  // Shutdown() flushes whatever is still buffered. Empty = spans off
  // (phase accounting stays on either way).
  std::string trace_dir;
  // Shared-base registry. The sharded front-end installs one instance
  // here for every shard (bases are shared across shards). When null,
  // the manager creates its own — with bases.jsonl durability in
  // wal_dir, recovered before session recovery and with this manager's
  // metrics carrying the registry gauges.
  std::shared_ptr<BaseRegistry> base_registry;
  // Soft memory ceiling for --mem-budget; <= 0 = unlimited. Only
  // consulted when `governor` is null (a provided governor carries its
  // own budget).
  int64_t mem_budget_bytes = 0;
  // Shared memory governor. Like base_registry: the sharded front-end
  // installs one instance for every shard (the budget is process-wide);
  // when null the manager creates its own from mem_budget_bytes with
  // this manager's metrics carrying the gauges.
  std::shared_ptr<ResourceGovernor> governor;
};

class SessionManager {
 public:
  // Completion callbacks receive the handler outcome; the error/result
  // envelope is the wire layer's business (SubmitLine does it).
  using Completion = std::function<void(Status, JsonValue)>;

  explicit SessionManager(ServiceConfig config);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  // Enqueues a command; `done` fires exactly once, on a worker thread
  // (or inline on rejection).
  void Submit(ServiceRequest request, Completion done);

  // Wire-level submit: parses `line`, runs it, and emits exactly one
  // JSON response line (envelope included) through `emit`.
  void SubmitLine(const std::string& line,
                  std::function<void(std::string)> emit);

  // Blocking convenience for tests and synchronous clients.
  StatusOr<JsonValue> Execute(ServiceRequest request);

  // Stops intake, drains all queued commands, joins threads, flushes
  // transcripts. Idempotent; also run by the destructor.
  void Shutdown();

  ServiceMetrics& metrics() { return metrics_; }
  size_t num_workers() const { return config_.num_workers; }
  const std::shared_ptr<BaseRegistry>& base_registry() const {
    return registry_;
  }
  const std::shared_ptr<ResourceGovernor>& governor() const {
    return governor_;
  }

  // True while this manager's WAL directory is in disk-degraded
  // read-only mode: a WAL append hit ENOSPC/EDQUOT/EIO and the reaper's
  // write probe has not succeeded since. While degraded, `create` and
  // `answer` are rejected with ResourceExhausted (status/snapshot/close
  // keep working — closing sessions is how disk space comes back).
  // Thread-safe; lock-free.
  bool WalDegraded() const;

  // Highest "s-N" session number this manager has seen (assigned,
  // recovered, or externally routed). The sharded front-end seeds its
  // global id counter past every shard's value after recovery.
  uint64_t LastSessionNumber();

  // Point-in-time queue/registry sizes (for the sharded front-end's
  // aggregate `metrics` response). Thread-safe.
  size_t CommandsInFlight();
  size_t SessionsRegistered();

  // Readiness-failure causes for the HTTP exporter's /readyz: empty
  // while the service is healthy. Degrading conditions: shutdown in
  // progress, a worker currently past the stall threshold, and a WAL
  // fsync failure or engine demotion within the last
  // kReadinessHoldDownSeconds. Thread-safe.
  std::vector<std::string> ReadinessCauses();
  static constexpr double kReadinessHoldDownSeconds = 30.0;

  // /statusz snapshot: sessions, queue depth, uptime, config. Safe to
  // call from any thread at any time (including after Shutdown()).
  JsonValue StatuszJson();

 private:
  struct Task {
    ServiceRequest request;
    Completion done;
    WallTimer timer;  // request latency, submission to completion
  };
  struct SessionEntry {
    std::unique_ptr<RepairSession> session;
    std::deque<Task> waiting;
    bool busy = false;  // a worker owns this session right now
    std::chrono::steady_clock::time_point last_activity;
    // Bytes currently charged to the memory governor for this session;
    // adjusted by delta after every command so the global estimate
    // tracks the session as it grows.
    int64_t charged_bytes = 0;
  };
  // An independent task, or the key of a session with queued commands.
  using ReadyItem = std::variant<Task, std::string>;

  void WorkerLoop(size_t worker_index);
  void ReaperLoop();
  void RunIndependent(Task task);
  void RunCreate(Task task);
  void RunSessionCommand(const std::string& key);
  StatusOr<JsonValue> DispatchToSession(RepairSession* session,
                                        const ServiceRequest& request);
  JsonValue MetricsJson();
  // Handler for the `trace` command: drains the span recorder (to a
  // file when a sink directory is configured) and returns the spans.
  JsonValue TraceJson(const JsonValue& params);
  // Finishes one task: records latency/error metrics, fires `done`.
  void Complete(Task& task, const Status& status, JsonValue result);
  void TaskDone();  // decrements tasks_in_flight_, wakes Shutdown
  void WriteTranscriptFile(const std::string& session_id,
                           const std::string& dump);
  // Startup crash recovery: replays every WAL in config_.wal_dir and
  // re-registers the sessions. Unreplayable WALs are renamed aside
  // (<file>.corrupt) and counted as failed; the daemon keeps serving.
  void RecoverSessions();
  // Watchdog sweep (runs on the reaper cadence): flags workers that
  // have owned one command longer than the stall threshold.
  void CheckWorkerStalls(std::chrono::steady_clock::time_point now);
  // Re-estimates `entry`'s bytes and reports the delta to the governor
  // (call with mu_ held and the session not owned by another worker).
  void ChargeSessionLocked(SessionEntry& entry);
  // Returns the session's charge to the governor before the entry is
  // dropped (close, eviction, shutdown).
  void ReleaseChargeLocked(SessionEntry& entry);
  // Evicts idle sessions oldest-first until the estimate is back under
  // the governor's low watermark. Appends transcript flushes for the
  // caller to write outside the lock. Call with mu_ held.
  void EvictForPressureLocked(
      std::vector<std::pair<std::string, std::string>>* flushes);

  ServiceConfig config_;
  ServiceMetrics metrics_;
  // Destroyed after sessions_ is cleared by Shutdown(), so session
  // base handles always release into a live registry.
  std::shared_ptr<BaseRegistry> registry_;
  std::shared_ptr<ResourceGovernor> governor_;
  const int64_t start_ns_ = MonotonicNowNs();  // for /statusz uptime
  // Monotonic ns of the last successful WAL-dir write probe. Degraded
  // mode is level-derived: metrics_.last_wal_disk_full_ns (stamped by
  // the failing append) newer than this means the disk is still bad.
  std::atomic<int64_t> disk_recovered_ns_{0};

  std::mutex mu_;
  std::condition_variable work_cv_;    // workers wait for ready items
  std::condition_variable drain_cv_;   // Shutdown waits for in-flight 0
  std::condition_variable reaper_cv_;  // reaper interval / exit
  std::deque<ReadyItem> ready_;
  std::unordered_map<std::string, SessionEntry> sessions_;
  size_t tasks_in_flight_ = 0;  // queued + executing
  uint64_t next_session_ = 0;
  bool stopping_ = false;  // intake closed
  bool exiting_ = false;   // drain finished; threads may return
  bool shut_down_ = false;
  // Set (with reaper_cv_ notified) to pull the reaper out of its timed
  // wait early — e.g. when a create is shed under memory pressure, so
  // eviction starts now instead of on the next tick.
  bool reaper_kick_ = false;

  // Watchdog state: per-worker steady-clock ns since the worker took its
  // current item (0 = idle). Written by the owning worker, read by the
  // reaper; `stall_flagged_` is reaper-private and remembers which
  // busy-since value was already counted, so one stall is one increment.
  std::unique_ptr<std::atomic<int64_t>[]> worker_busy_since_;
  std::vector<int64_t> stall_flagged_;

  std::vector<std::thread> workers_;
  std::thread reaper_;
};

}  // namespace kbrepair

#endif  // KBREPAIR_SERVICE_SESSION_MANAGER_H_
