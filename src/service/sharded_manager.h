// ShardedSessionManager: N independent SessionManagers behind one
// protocol front-end.
//
// Scaling past one SessionManager means scaling past its one mutex:
// admission, per-session queues, eviction and recovery all serialize on
// it. Instead of making that lock cleverer, the daemon runs N whole
// managers ("shards"), each with its own workers, ready queue, reaper
// and WAL directory, and routes every command by a stable hash of the
// session id:
//
//  * `create` — the front-end assigns the globally unique "s-<n>" id
//    from one atomic counter, hashes it, and hands the create (with the
//    id pre-assigned via ServiceRequest::assigned_session_id) to the
//    owning shard;
//  * session commands (`ask`/`answer`/...) — routed by hashing the
//    client-supplied session id, so a session's commands always land on
//    the shard that owns its state;
//  * `metrics` — answered at the front-end by merging every shard's
//    ServiceMetrics into one aggregate with the single-shard JSON
//    shape (plus a per-shard summary);
//  * `trace` — routed to shard 0, the only shard given a trace_dir
//    (the span recorder is process-global; enabling it N times would
//    reset its epoch N times).
//
// The hash is FNV-1a, not std::hash: shard ownership must be stable
// across restarts (recovery re-routes each WAL to the shard its id
// hashes to) and across standard libraries.
//
// WAL layout: with 1 shard the root wal_dir is used as-is (the
// pre-shard layout); with N > 1 shard i logs under
// <wal_dir>/shard-<i>/. Recovery with a *different* shard count than
// the previous run first sweeps every WAL found anywhere in the layout
// into the directory its session id now hashes to, so scaling the
// daemon up or down never strands a session.
//
// With num_shards == 1 every call is a pure pass-through to the single
// SessionManager — the stdio daemon's behavior is byte-identical to
// the pre-sharding one.

#ifndef KBREPAIR_SERVICE_SHARDED_MANAGER_H_
#define KBREPAIR_SERVICE_SHARDED_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "service/session_manager.h"

namespace kbrepair {

struct ShardedConfig {
  size_t num_shards = 1;
  // Per-shard template. num_workers/max_queue are PER SHARD; wal_dir
  // and trace_dir are the root locations the sharded layout described
  // above is derived from.
  ServiceConfig shard;
};

class ShardedSessionManager {
 public:
  explicit ShardedSessionManager(ShardedConfig config);
  ~ShardedSessionManager();

  ShardedSessionManager(const ShardedSessionManager&) = delete;
  ShardedSessionManager& operator=(const ShardedSessionManager&) = delete;

  // Wire-level submit, same contract as SessionManager::SubmitLine:
  // parses, routes, and emits exactly one enveloped response line.
  void SubmitLine(const std::string& line,
                  std::function<void(std::string)> emit);

  // Routed submit / blocking convenience (tests).
  void Submit(ServiceRequest request, SessionManager::Completion done);
  StatusOr<JsonValue> Execute(ServiceRequest request);

  // Shuts every shard down (drains all of them). Idempotent.
  void Shutdown();

  size_t num_shards() const { return shards_.size(); }
  SessionManager& shard(size_t i) { return *shards_[i]; }

  // Aggregate observability, exporter-shaped like the single-shard
  // manager's. With N > 1 the exposition additionally carries
  // kbrepair_shard_*{shard="i"} series and /statusz a "shard" array.
  JsonValue MetricsJson();
  void AppendMetricsText(std::string* out);
  std::vector<std::string> ReadinessCauses();
  JsonValue StatuszJson();

  // Stable shard routing (FNV-1a 64 over the session id).
  static size_t ShardForSession(const std::string& session_id,
                                size_t num_shards);
  // <root>/shard-<i> for N > 1; the root itself for N == 1.
  static std::string ShardWalDir(const std::string& root, size_t shard_index,
                                 size_t num_shards);

 private:
  void RebalanceWalFiles(const std::string& root, size_t num_shards);

  ShardedConfig config_;
  std::vector<std::unique_ptr<SessionManager>> shards_;
  std::atomic<uint64_t> next_session_{0};
  const int64_t start_ns_ = MonotonicNowNs();
};

}  // namespace kbrepair

#endif  // KBREPAIR_SERVICE_SHARDED_MANAGER_H_
