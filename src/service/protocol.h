// The repair service's newline-delimited JSON wire protocol.
//
// Every request is one JSON object on one line; every response is one
// JSON object on one line. Requests carry a client-chosen correlation
// "id" which is echoed verbatim in the response, so a pipelining client
// can match out-of-order completions (the daemon answers as workers
// finish, not in arrival order).
//
//   request:  {"id":"r1","command":"create","kb":"durum_wheat_v1",
//              "strategy":"opti-mcd","seed":7}
//   response: {"id":"r1","ok":true,"result":{"session":"s-1", ...}}
//   error:    {"id":"r1","ok":false,
//              "error":{"code":"NotFound","message":"unknown session ..."}}
//
// Commands: create, ask, answer, status, snapshot, close, metrics.
// See docs/SERVICE.md for the full per-command schema.

#ifndef KBREPAIR_SERVICE_PROTOCOL_H_
#define KBREPAIR_SERVICE_PROTOCOL_H_

#include <string>

#include "repair/question.h"
#include "repair/user.h"
#include "util/json.h"
#include "util/status.h"

namespace kbrepair {

struct ServiceRequest {
  std::string id;          // echoed; may be empty
  std::string command;     // required
  std::string session_id;  // required for session commands
  JsonValue params;        // the full request object (extra fields)
  // Internal-only (never parsed from the wire): a pre-assigned id for a
  // `create`. The sharded front-end picks the id so it can route the
  // session to the shard its id hashes to; a plain SessionManager keeps
  // assigning its own ids when this is empty.
  std::string assigned_session_id;
};

// Parses one wire line. InvalidArgument on malformed JSON, a non-object
// document, or a missing/non-string "command".
StatusOr<ServiceRequest> ParseRequestLine(const std::string& line);

// Builds the one-line response envelopes.
std::string OkResponseLine(const ServiceRequest& request, JsonValue result);
std::string ErrorResponseLine(const ServiceRequest& request,
                              const Status& status);
// For lines that failed to parse: best-effort echoes an "id" if the line
// contained a parseable object with one.
std::string ErrorResponseForLine(const std::string& line,
                                 const Status& status);

// --- Wire renderings of engine objects ----------------------------------

// {"index":i,"atom":id,"arg":n,"value":"t","value_kind":"constant|null",
//  "text":"(p(a,b), 2, c)"} — index is what `answer` consumes.
JsonValue FixToWireJson(size_t index, const Fix& fix,
                        const InquiryView& view);

// {"source_cdd":k,"cdd":"! :- ...","num_fixes":n,"fixes":[...]}
JsonValue QuestionToWireJson(const Question& question,
                             const InquiryView& view);

}  // namespace kbrepair

#endif  // KBREPAIR_SERVICE_PROTOCOL_H_
