#include "service/protocol.h"

namespace kbrepair {

StatusOr<ServiceRequest> ParseRequestLine(const std::string& line) {
  KBREPAIR_ASSIGN_OR_RETURN(JsonValue json, JsonValue::Parse(line));
  if (!json.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  ServiceRequest request;
  request.id = json.Get("id").AsString();
  if (!json.Get("command").is_string() ||
      json.Get("command").AsString().empty()) {
    return Status::InvalidArgument("request needs a string 'command'");
  }
  request.command = json.Get("command").AsString();
  request.session_id = json.Get("session").AsString();
  request.params = std::move(json);
  return request;
}

namespace {

std::string Envelope(const std::string& id, bool ok, JsonValue payload) {
  JsonValue out = JsonValue::Object();
  if (!id.empty()) out.Set("id", JsonValue::String(id));
  out.Set("ok", JsonValue::Bool(ok));
  out.Set(ok ? "result" : "error", std::move(payload));
  return out.Dump();
}

JsonValue StatusToJson(const Status& status) {
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::String(StatusCodeName(status.code())));
  error.Set("message", JsonValue::String(status.message()));
  return error;
}

}  // namespace

std::string OkResponseLine(const ServiceRequest& request, JsonValue result) {
  return Envelope(request.id, /*ok=*/true, std::move(result));
}

std::string ErrorResponseLine(const ServiceRequest& request,
                              const Status& status) {
  return Envelope(request.id, /*ok=*/false, StatusToJson(status));
}

std::string ErrorResponseForLine(const std::string& line,
                                 const Status& status) {
  std::string id;
  if (StatusOr<JsonValue> json = JsonValue::Parse(line); json.ok()) {
    id = json->Get("id").AsString();
  }
  return Envelope(id, /*ok=*/false, StatusToJson(status));
}

JsonValue FixToWireJson(size_t index, const Fix& fix,
                        const InquiryView& view) {
  JsonValue out = JsonValue::Object();
  out.Set("index", JsonValue::Number(static_cast<int64_t>(index)));
  out.Set("atom", JsonValue::Number(static_cast<int64_t>(fix.atom)));
  out.Set("arg", JsonValue::Number(static_cast<int64_t>(fix.arg)));
  out.Set("value", JsonValue::String(view.symbols->term_name(fix.value)));
  out.Set("value_kind",
          JsonValue::String(view.symbols->IsNull(fix.value) ? "null"
                                                            : "constant"));
  out.Set("text", JsonValue::String(fix.ToString(*view.symbols, *view.facts)));
  return out;
}

JsonValue QuestionToWireJson(const Question& question,
                             const InquiryView& view) {
  JsonValue out = JsonValue::Object();
  out.Set("source_cdd",
          JsonValue::Number(static_cast<int64_t>(question.source_cdd)));
  if (view.cdds != nullptr && question.source_cdd < view.cdds->size()) {
    out.Set("cdd", JsonValue::String(
                       (*view.cdds)[question.source_cdd].ToString(
                           *view.symbols)));
  }
  JsonValue positions = JsonValue::Array();
  for (const Position& p : question.considered_positions) {
    JsonValue pos = JsonValue::Array();
    pos.Append(JsonValue::Number(static_cast<int64_t>(p.atom)));
    pos.Append(JsonValue::Number(static_cast<int64_t>(p.arg)));
    positions.Append(std::move(pos));
  }
  out.Set("positions", std::move(positions));
  out.Set("num_fixes",
          JsonValue::Number(static_cast<int64_t>(question.fixes.size())));
  JsonValue fixes = JsonValue::Array();
  for (size_t i = 0; i < question.fixes.size(); ++i) {
    fixes.Append(FixToWireJson(i, question.fixes[i], view));
  }
  out.Set("fixes", std::move(fixes));
  return out;
}

}  // namespace kbrepair
