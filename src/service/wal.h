// Per-session write-ahead logging for the repair service.
//
// Every accepted state-changing command (create / answer / close) is
// appended to `<dir>/<session-id>.wal` as one fsync'd line *before* it
// executes, so a crash at any point loses at most the command that had
// not yet been acknowledged. Because the inquiry engine is
// deterministic given the create parameters and the sequence of chosen
// fixes, the WAL is also a complete recovery recipe: replaying the
// create record and the answer records through ReplayUser rebuilds the
// session byte-identically (see SessionManager recovery).
//
// On-disk format (v2): the file opens with a `#kbrepair-wal v2` header
// line; every record line is framed as
//
//   <payload-bytes> <crc32c-hex8> <payload-json>\n
//
// so the reader can tell a *torn tail* (crash mid-append: fewer payload
// bytes than declared, at end of file, no trailing newline — tolerated,
// the guarded command was never acknowledged) from *bit-rot* (declared
// length present but CRC32C mismatch, or corruption anywhere before the
// final line — the file is rejected and recovery quarantines it rather
// than silently replaying a garbled history). v1 files (bare JSON
// lines, no header, no checksums) are still readable: record lines are
// self-discriminating, so logs written by older builds — including v1
// files that later builds appended framed records to — recover fine.
//
// Record payload shapes (one JSON object per line):
//   {"op":"create","params":{...}}          the create request params
//   {"op":"answer","chosen":N,"question":{...}}
//                                           one transcript entry, exactly
//                                           SessionTranscript::EntryToJson
//   {"op":"close"}                          the session ended cleanly
//   {"op":"snapshot","params":{...},"entries":[...]}
//                                           compaction: create + all
//                                           answers folded into one line
//
// Compaction (every `compact_every` appends) rewrites the log as a
// single snapshot record via tmp + fsync + rename, so the file never
// holds more than compact_every + 1 meaningful lines and readers never
// observe a partial rewrite.

#ifndef KBREPAIR_SERVICE_WAL_H_
#define KBREPAIR_SERVICE_WAL_H_

#include <memory>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace kbrepair {

class SessionWal {
 public:
  // Opens `<dir>/<session_id>.wal` for appending, creating or continuing
  // it (`dir` must exist). Unavailable on I/O failure.
  static StatusOr<std::unique_ptr<SessionWal>> Open(
      const std::string& dir, const std::string& session_id);

  ~SessionWal();
  SessionWal(const SessionWal&) = delete;
  SessionWal& operator=(const SessionWal&) = delete;

  // Appends `record` as one framed line and fsyncs. Unavailable on
  // failure — the caller must then *reject* the guarded command
  // (log-before-execute). `fsync_failed` (optional) is set when the
  // failure was at the durability step rather than the write, for
  // metrics. `disk_full` (optional) is set when the failure was
  // ENOSPC/EDQUOT/EIO (or the `fs.enospc` failpoint): the disk itself
  // is out of space or failing, so the owning shard should enter
  // degraded mode rather than hope the next append fares better.
  Status Append(const JsonValue& record, bool* fsync_failed = nullptr,
                bool* disk_full = nullptr);

  // Atomically replaces the log with a single snapshot record holding
  // the create params and the full answer history. Resets the append
  // counter. On failure the old log remains valid.
  Status Compact(const JsonValue& create_params,
                 const std::vector<JsonValue>& entries);

  // Closes and deletes the log (session completed; nothing to recover).
  // Works on a full disk — unlink frees space, never needs it.
  Status Remove();

  const std::string& path() const { return path_; }
  size_t appends_since_compaction() const { return appends_since_compaction_; }

  // Record constructors.
  static JsonValue CreateRecord(const JsonValue& params);
  static JsonValue AnswerRecord(JsonValue transcript_entry);
  static JsonValue CloseRecord();

 private:
  SessionWal(std::string path, int fd, bool needs_header)
      : path_(std::move(path)), fd_(fd), needs_header_(needs_header) {}

  std::string path_;
  int fd_ = -1;
  // True until the v2 header line has been written (new/empty file);
  // the first append carries it so an empty create never costs an
  // extra fsync.
  bool needs_header_ = false;
  size_t appends_since_compaction_ = 0;
};

// A WAL read back at recovery time.
struct WalRecovery {
  std::string session_id;
  JsonValue create_params = JsonValue::Null();
  // Transcript-entry records ({"chosen":N,"question":{...}}), in order.
  std::vector<JsonValue> entries;
  bool closed = false;             // a close record was logged
  bool dropped_torn_tail = false;  // final partial line discarded
};

// Parses one WAL file. InvalidArgument when the file is unusable
// (missing/garbled create record, framing/CRC corruption, non-JSON
// interior line); a torn *final* line is tolerated and reported via
// dropped_torn_tail.
StatusOr<WalRecovery> ReadWalFile(const std::string& path,
                                  const std::string& session_id);

// Session ids with a `<id>.wal` file in `dir`, sorted.
std::vector<std::string> ListWalSessionIds(const std::string& dir);

// Probes whether `dir` can take durable writes again: creates, syncs
// and unlinks a small scratch file (gated by the `fs.enospc` failpoint
// like real appends). Used by degraded shards to detect that the disk
// has freed up.
Status ProbeWalDirWritable(const std::string& dir);

// True when `err` (an errno value) means the disk is full or failing
// (ENOSPC, EDQUOT, EIO) rather than a transient hiccup.
bool IsDiskFullErrno(int err);

}  // namespace kbrepair

#endif  // KBREPAIR_SERVICE_WAL_H_
