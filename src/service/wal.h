// Per-session write-ahead logging for the repair service.
//
// Every accepted state-changing command (create / answer / close) is
// appended to `<dir>/<session-id>.wal` as one fsync'd line *before* it
// executes, so a crash at any point loses at most the command that had
// not yet been acknowledged. Because the inquiry engine is
// deterministic given the create parameters and the sequence of chosen
// fixes, the WAL is also a complete recovery recipe: replaying the
// create record and the answer records through ReplayUser rebuilds the
// session byte-identically (see SessionManager recovery).
//
// On-disk format (v2): the file opens with a `#kbrepair-wal v2` header
// line; every record line is framed as
//
//   <payload-bytes> <crc32c-hex8> <payload-json>\n
//
// so the reader can tell a *torn tail* (crash mid-append: fewer payload
// bytes than declared, at end of file, no trailing newline — tolerated,
// the guarded command was never acknowledged) from *bit-rot* (declared
// length present but CRC32C mismatch, or corruption anywhere before the
// final line — the file is rejected and recovery quarantines it rather
// than silently replaying a garbled history). v1 files (bare JSON
// lines, no header, no checksums) are still readable: record lines are
// self-discriminating, so logs written by older builds — including v1
// files that later builds appended framed records to — recover fine.
//
// Record payload shapes (one JSON object per line):
//   {"op":"create","params":{...}}          the create request params
//   {"op":"answer","chosen":N,"question":{...}}
//                                           one transcript entry, exactly
//                                           SessionTranscript::EntryToJson
//   {"op":"close"}                          the session ended cleanly
//   {"op":"snapshot","params":{...},"entries":[...]}
//                                           compaction: create + all
//                                           answers folded into one line
//
// Compaction (every `compact_every` appends) rewrites the log as a
// single snapshot record via tmp + fsync + rename, so the file never
// holds more than compact_every + 1 meaningful lines and readers never
// observe a partial rewrite.

#ifndef KBREPAIR_SERVICE_WAL_H_
#define KBREPAIR_SERVICE_WAL_H_

#include <memory>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace kbrepair {

class SessionWal {
 public:
  // Opens `<dir>/<session_id>.wal` for appending, creating or continuing
  // it (`dir` must exist). Unavailable on I/O failure.
  static StatusOr<std::unique_ptr<SessionWal>> Open(
      const std::string& dir, const std::string& session_id);

  ~SessionWal();
  SessionWal(const SessionWal&) = delete;
  SessionWal& operator=(const SessionWal&) = delete;

  // Appends `record` as one framed line and fsyncs. Unavailable on
  // failure — the caller must then *reject* the guarded command
  // (log-before-execute). `fsync_failed` (optional) is set when the
  // failure was at the durability step rather than the write, for
  // metrics. `disk_full` (optional) is set when the failure was
  // ENOSPC/EDQUOT/EIO (or the `fs.enospc` failpoint): the disk itself
  // is out of space or failing, so the owning shard should enter
  // degraded mode rather than hope the next append fares better.
  Status Append(const JsonValue& record, bool* fsync_failed = nullptr,
                bool* disk_full = nullptr);

  // Atomically replaces the log with a single snapshot record holding
  // the create params and the full answer history. Resets the append
  // counter. On failure the old log remains valid.
  Status Compact(const JsonValue& create_params,
                 const std::vector<JsonValue>& entries);

  // Closes and deletes the log (session completed; nothing to recover).
  // Works on a full disk — unlink frees space, never needs it.
  Status Remove();

  const std::string& path() const { return path_; }
  size_t appends_since_compaction() const { return appends_since_compaction_; }

  // Record constructors.
  static JsonValue CreateRecord(const JsonValue& params);
  static JsonValue AnswerRecord(JsonValue transcript_entry);
  static JsonValue CloseRecord();

 private:
  SessionWal(std::string path, int fd, bool needs_header)
      : path_(std::move(path)), fd_(fd), needs_header_(needs_header) {}

  std::string path_;
  int fd_ = -1;
  // True until the v2 header line has been written (new/empty file);
  // the first append carries it so an empty create never costs an
  // extra fsync.
  bool needs_header_ = false;
  size_t appends_since_compaction_ = 0;
};

// One record yielded by WalReader, with its location in the file so
// replay errors, torn-tail reports, and debugger seeks can name the
// exact line and byte they refer to.
struct WalRecordRef {
  JsonValue record = JsonValue::Null();
  // 1-based index among the file's non-empty lines (header lines
  // included in the numbering, matching historical error messages).
  size_t record_index = 0;
  // Byte offset of the start of the record's line within the file.
  uint64_t byte_offset = 0;
};

// Streaming WAL record reader. Decodes v2 framing (and bare v1 lines)
// one record at a time, reporting each record's index and byte offset.
// A torn final line (crash mid-append) ends the stream and is reported
// via dropped_torn_tail(); framing/CRC corruption anywhere else is an
// error carrying the record index and byte offset.
class WalReader {
 public:
  // Reads the whole file up front (WALs are bounded by compaction);
  // Unavailable on I/O failure.
  static StatusOr<WalReader> Open(const std::string& path);

  // Yields the next record. Sets `*done` and leaves `*out` untouched at
  // end of stream — including a tolerated torn tail, which additionally
  // sets dropped_torn_tail(). InvalidArgument on corruption.
  Status Next(WalRecordRef* out, bool* done);

  const std::string& path() const { return path_; }
  bool dropped_torn_tail() const { return dropped_torn_tail_; }
  // Location of the dropped torn-tail line; valid when
  // dropped_torn_tail() is true.
  size_t torn_record_index() const { return torn_record_index_; }
  uint64_t torn_byte_offset() const { return torn_byte_offset_; }

 private:
  WalReader(std::string path, std::string contents)
      : path_(std::move(path)), contents_(std::move(contents)) {}

  std::string path_;
  std::string contents_;
  size_t pos_ = 0;
  size_t record_index_ = 0;
  bool v2_header_ = false;
  bool dropped_torn_tail_ = false;
  size_t torn_record_index_ = 0;
  uint64_t torn_byte_offset_ = 0;
};

// Where a recovered transcript entry came from: the WAL record that
// carried it. Entries unpacked from a snapshot record all share the
// snapshot's coordinates.
struct WalEntryOrigin {
  size_t record_index = 0;
  uint64_t byte_offset = 0;
};

// A WAL read back at recovery time.
struct WalRecovery {
  std::string session_id;
  JsonValue create_params = JsonValue::Null();
  // Transcript-entry records ({"chosen":N,"question":{...}}), in order.
  std::vector<JsonValue> entries;
  // Parallel to `entries`: the WAL record each entry was read from.
  std::vector<WalEntryOrigin> entry_origins;
  bool closed = false;             // a close record was logged
  bool dropped_torn_tail = false;  // final partial line discarded
  // Location of the dropped line; valid when dropped_torn_tail is set.
  size_t torn_record_index = 0;
  uint64_t torn_byte_offset = 0;
};

// Parses one WAL file. InvalidArgument when the file is unusable
// (missing/garbled create record, framing/CRC corruption, non-JSON
// interior line) — the message names the offending record index and
// byte offset; a torn *final* line is tolerated and reported via
// dropped_torn_tail + torn_record_index/torn_byte_offset.
StatusOr<WalRecovery> ReadWalFile(const std::string& path,
                                  const std::string& session_id);

// Session ids with a `<id>.wal` file in `dir`, sorted.
std::vector<std::string> ListWalSessionIds(const std::string& dir);

// Probes whether `dir` can take durable writes again: creates, syncs
// and unlinks a small scratch file (gated by the `fs.enospc` failpoint
// like real appends). Used by degraded shards to detect that the disk
// has freed up.
Status ProbeWalDirWritable(const std::string& dir);

// True when `err` (an errno value) means the disk is full or failing
// (ENOSPC, EDQUOT, EIO) rather than a transient hiccup.
bool IsDiskFullErrno(int err);

}  // namespace kbrepair

#endif  // KBREPAIR_SERVICE_WAL_H_
