#include "service/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>

#include "util/crc32c.h"
#include "util/errno_text.h"
#include "util/failpoint.h"
#include "util/fs.h"
#include "util/trace.h"

namespace kbrepair {
namespace {

constexpr char kWalSuffix[] = ".wal";
constexpr char kWalHeaderV2[] = "#kbrepair-wal v2";
constexpr char kWalHeaderPrefix[] = "#kbrepair-wal";

std::string Crc32cHex(const std::string& payload) {
  static const char kHex[] = "0123456789abcdef";
  const uint32_t crc = Crc32c(payload);
  std::string out(8, '0');
  for (int i = 0; i < 8; ++i) {
    out[static_cast<size_t>(i)] = kHex[(crc >> (28 - 4 * i)) & 0xFu];
  }
  return out;
}

// "<payload-bytes> <crc32c-hex8> <payload>".
std::string FrameRecordLine(const std::string& payload) {
  return std::to_string(payload.size()) + " " + Crc32cHex(payload) + " " +
         payload + "\n";
}

Status WriteFully(int fd, const std::string& data, const std::string& path,
                  bool* disk_full) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (disk_full != nullptr && IsDiskFullErrno(errno)) *disk_full = true;
      return Status::Unavailable("WAL write " + path + ": " + ErrnoText());
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

// Outcome of interpreting one line as a v2 framed record.
enum class FrameParse {
  kNotFramed,  // no leading length digits: a header or bare v1 record
  kOk,         // payload extracted, length and CRC32C verified
  kTorn,       // fewer payload bytes than declared — a write torn by a crash
  kCorrupt,    // structurally framed but fails verification — bit-rot
};

FrameParse ParseFramedLine(const std::string& line, bool is_final_torn_line,
                           std::string* payload, std::string* error) {
  size_t pos = 0;
  while (pos < line.size() && std::isdigit(static_cast<unsigned char>(line[pos]))) {
    ++pos;
  }
  if (pos == 0) return FrameParse::kNotFramed;
  // The prefix parses incrementally; any structural shortfall on the
  // final unterminated line is indistinguishable from a torn write.
  const auto shortfall = [&](const char* what) {
    if (is_final_torn_line) return FrameParse::kTorn;
    *error = what;
    return FrameParse::kCorrupt;
  };
  if (pos > 9) {
    *error = "implausible record length";
    return FrameParse::kCorrupt;
  }
  const size_t declared = std::stoul(line.substr(0, pos));
  if (pos >= line.size() || line[pos] != ' ') {
    return shortfall("malformed frame after length");
  }
  ++pos;
  const size_t crc_start = pos;
  while (pos < line.size() && pos < crc_start + 8 &&
         std::isxdigit(static_cast<unsigned char>(line[pos]))) {
    ++pos;
  }
  if (pos != crc_start + 8) return shortfall("malformed frame checksum");
  const uint32_t declared_crc =
      static_cast<uint32_t>(std::stoul(line.substr(crc_start, 8), nullptr, 16));
  if (pos >= line.size() || line[pos] != ' ') {
    return shortfall("malformed frame after checksum");
  }
  ++pos;
  *payload = line.substr(pos);
  if (payload->size() < declared) {
    return shortfall("record shorter than declared length");
  }
  if (payload->size() > declared) {
    *error = "record longer than declared length";
    return FrameParse::kCorrupt;
  }
  // Full declared length is present, so this is not a tear: a tear only
  // truncates. A checksum mismatch here is bit-rot even at end of file.
  if (Crc32c(*payload) != declared_crc) {
    *error = "CRC32C mismatch (bit-rot)";
    return FrameParse::kCorrupt;
  }
  return FrameParse::kOk;
}

}  // namespace

bool IsDiskFullErrno(int err) {
  return err == ENOSPC || err == EDQUOT || err == EIO;
}

StatusOr<std::unique_ptr<SessionWal>> SessionWal::Open(
    const std::string& dir, const std::string& session_id) {
  const std::string path = dir + "/" + session_id + kWalSuffix;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Unavailable("WAL open " + path + ": " + ErrnoText());
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const Status status =
        Status::Unavailable("WAL stat " + path + ": " + ErrnoText());
    ::close(fd);
    return status;
  }
  // Only a fresh (empty) file gets the v2 header; appending framed
  // records to an existing v1 file is fine, the reader discriminates
  // per line.
  return std::unique_ptr<SessionWal>(
      new SessionWal(path, fd, /*needs_header=*/st.st_size == 0));
}

SessionWal::~SessionWal() {
  if (fd_ >= 0) ::close(fd_);
}

Status SessionWal::Append(const JsonValue& record, bool* fsync_failed,
                          bool* disk_full) {
  trace::ScopedSpan span("wal.append", trace::Phase::kWalAppend);
  if (fsync_failed != nullptr) *fsync_failed = false;
  if (disk_full != nullptr) *disk_full = false;
  if (fd_ < 0) {
    return Status::Unavailable("WAL " + path_ + " is closed");
  }
  if (failpoint::ShouldFail("fs.enospc")) {
    if (disk_full != nullptr) *disk_full = true;
    return Status::Unavailable("WAL write " + path_ +
                               ": injected ENOSPC (no space left on device)");
  }
  KBREPAIR_FAILPOINT("wal.append",
                     Status::Unavailable("injected WAL append failure"));
  std::string data = FrameRecordLine(record.Dump());
  if (needs_header_) data = std::string(kWalHeaderV2) + "\n" + data;
  KBREPAIR_RETURN_IF_ERROR(WriteFully(fd_, data, path_, disk_full));
  if (::fsync(fd_) != 0 || failpoint::ShouldFail("wal.fsync")) {
    if (fsync_failed != nullptr) *fsync_failed = true;
    if (disk_full != nullptr && IsDiskFullErrno(errno)) *disk_full = true;
    return Status::Unavailable("WAL fsync " + path_ + ": " + ErrnoText());
  }
  needs_header_ = false;
  ++appends_since_compaction_;
  return Status::Ok();
}

Status SessionWal::Compact(const JsonValue& create_params,
                           const std::vector<JsonValue>& entries) {
  JsonValue snapshot = JsonValue::Object();
  snapshot.Set("op", JsonValue::String("snapshot"));
  snapshot.Set("params", create_params);
  JsonValue entry_array = JsonValue::Array();
  for (const JsonValue& entry : entries) entry_array.Append(entry);
  snapshot.Set("entries", std::move(entry_array));

  KBREPAIR_RETURN_IF_ERROR(
      AtomicWriteFile(path_, std::string(kWalHeaderV2) + "\n" +
                                 FrameRecordLine(snapshot.Dump())));

  // The rename orphaned the inode behind the old fd: close it *before*
  // checking the reopen, so a reopen failure leaves the WAL closed
  // (Append then rejects commands) instead of silently appending to the
  // unlinked inode.
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    return Status::Unavailable("WAL reopen " + path_ + ": " + ErrnoText());
  }
  needs_header_ = false;
  appends_since_compaction_ = 0;
  return Status::Ok();
}

Status SessionWal::Remove() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (::unlink(path_.c_str()) != 0 && errno != ENOENT) {
    return Status::Unavailable("WAL unlink " + path_ + ": " + ErrnoText());
  }
  return FsyncParentDir(path_);
}

JsonValue SessionWal::CreateRecord(const JsonValue& params) {
  JsonValue record = JsonValue::Object();
  record.Set("op", JsonValue::String("create"));
  record.Set("params", params);
  return record;
}

JsonValue SessionWal::AnswerRecord(JsonValue transcript_entry) {
  JsonValue record = JsonValue::Object();
  record.Set("op", JsonValue::String("answer"));
  record.Set("chosen", transcript_entry.Get("chosen"));
  record.Set("question", transcript_entry.Get("question"));
  return record;
}

JsonValue SessionWal::CloseRecord() {
  JsonValue record = JsonValue::Object();
  record.Set("op", JsonValue::String("close"));
  return record;
}

StatusOr<WalReader> WalReader::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::Unavailable("WAL open " + path + ": " + ErrnoText());
  }
  std::string contents;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status =
          Status::Unavailable("WAL read " + path + ": " + ErrnoText());
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    contents.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return WalReader(path, std::move(contents));
}

Status WalReader::Next(WalRecordRef* out, bool* done) {
  *done = false;
  while (pos_ < contents_.size()) {
    if (dropped_torn_tail_) break;
    const uint64_t line_offset = pos_;
    size_t newline = contents_.find('\n', pos_);
    const bool unterminated = newline == std::string::npos;
    if (unterminated) newline = contents_.size();
    const std::string line = contents_.substr(pos_, newline - pos_);
    pos_ = newline + 1;
    if (line.empty()) continue;
    ++record_index_;
    const std::string where = "WAL " + path_ + " record " +
                              std::to_string(record_index_) +
                              " (byte offset " + std::to_string(line_offset) +
                              ")";
    const auto torn = [&] {
      dropped_torn_tail_ = true;
      torn_record_index_ = record_index_;
      torn_byte_offset_ = line_offset;
      *done = true;
      return Status::Ok();
    };

    if (line[0] == '#') {
      if (line == kWalHeaderV2) {
        v2_header_ = true;
        continue;
      }
      if (unterminated) {
        // Crash while writing the very first append (header included):
        // nothing was acknowledged, so dropping it loses nothing.
        return torn();
      }
      if (line.compare(0, sizeof(kWalHeaderPrefix) - 1, kWalHeaderPrefix) ==
          0) {
        return Status::InvalidArgument(where + ": unsupported WAL version '" +
                                       line + "'");
      }
      return Status::InvalidArgument(where + ": corrupt header line");
    }

    std::string payload;
    std::string frame_error;
    std::string record_text;
    switch (ParseFramedLine(line, unterminated, &payload, &frame_error)) {
      case FrameParse::kOk:
        record_text = std::move(payload);
        break;
      case FrameParse::kTorn:
        return torn();
      case FrameParse::kCorrupt:
        return Status::InvalidArgument(where + ": " + frame_error);
      case FrameParse::kNotFramed:
        // Bare v1 record: no checksum to verify, fall back to the
        // legacy policy (a garbled final line is a tear, anything
        // earlier is corruption).
        record_text = line;
        break;
    }

    StatusOr<JsonValue> parsed = JsonValue::Parse(record_text);
    if (!parsed.ok() || !parsed->is_object()) {
      // Crash mid-append: the guarded command was never acknowledged,
      // so dropping the line loses nothing that was promised durable.
      // That leniency only extends to a *terminated* final line in
      // legacy v1 files — a v2 writer frames every record, and a torn
      // frame always keeps its leading length digits, so terminated
      // garbage under a v2 header is corruption, not a tear.
      if (unterminated || (pos_ >= contents_.size() && !v2_header_)) {
        return torn();
      }
      return Status::InvalidArgument(where + ": unparseable record");
    }
    out->record = std::move(*parsed);
    out->record_index = record_index_;
    out->byte_offset = line_offset;
    return Status::Ok();
  }
  *done = true;
  return Status::Ok();
}

StatusOr<WalRecovery> ReadWalFile(const std::string& path,
                                  const std::string& session_id) {
  KBREPAIR_ASSIGN_OR_RETURN(WalReader reader, WalReader::Open(path));

  WalRecovery recovery;
  recovery.session_id = session_id;
  bool saw_create = false;

  for (;;) {
    WalRecordRef ref;
    bool done = false;
    KBREPAIR_RETURN_IF_ERROR(reader.Next(&ref, &done));
    if (done) break;
    const std::string where = "WAL " + path + " record " +
                              std::to_string(ref.record_index) +
                              " (byte offset " +
                              std::to_string(ref.byte_offset) + ")";
    const std::string op = ref.record.Get("op").AsString();
    if (op == "create") {
      if (saw_create) {
        return Status::InvalidArgument(where + ": duplicate create record");
      }
      saw_create = true;
      recovery.create_params = ref.record.Get("params");
    } else if (op == "snapshot") {
      // A snapshot restates the whole history; it can only legally be
      // the first record (compaction rewrites the file).
      if (saw_create || !recovery.entries.empty()) {
        return Status::InvalidArgument(where + ": snapshot after other records");
      }
      saw_create = true;
      recovery.create_params = ref.record.Get("params");
      const JsonValue& entries = ref.record.Get("entries");
      if (!entries.is_array()) {
        return Status::InvalidArgument(where +
                                       ": snapshot without entries array");
      }
      for (size_t i = 0; i < entries.size(); ++i) {
        recovery.entries.push_back(entries.at(i));
        recovery.entry_origins.push_back(
            WalEntryOrigin{ref.record_index, ref.byte_offset});
      }
    } else if (op == "answer") {
      if (!saw_create) {
        return Status::InvalidArgument(where + ": answer before create");
      }
      JsonValue entry = JsonValue::Object();
      entry.Set("chosen", ref.record.Get("chosen"));
      entry.Set("question", ref.record.Get("question"));
      recovery.entries.push_back(std::move(entry));
      recovery.entry_origins.push_back(
          WalEntryOrigin{ref.record_index, ref.byte_offset});
    } else if (op == "close") {
      recovery.closed = true;
    } else {
      return Status::InvalidArgument(where + ": unknown op '" + op + "'");
    }
  }
  recovery.dropped_torn_tail = reader.dropped_torn_tail();
  recovery.torn_record_index = reader.torn_record_index();
  recovery.torn_byte_offset = reader.torn_byte_offset();
  if (!saw_create) {
    return Status::InvalidArgument("WAL " + path + ": no create record");
  }
  if (!recovery.create_params.is_object()) {
    return Status::InvalidArgument("WAL " + path +
                                   ": create record without params");
  }
  return recovery;
}

std::vector<std::string> ListWalSessionIds(const std::string& dir) {
  std::vector<std::string> ids;
  for (const std::string& name : ListFilesWithSuffix(dir, kWalSuffix)) {
    ids.push_back(name.substr(0, name.size() - (sizeof(kWalSuffix) - 1)));
  }
  return ids;
}

Status ProbeWalDirWritable(const std::string& dir) {
  if (failpoint::ShouldFail("fs.enospc")) {
    return Status::Unavailable("WAL probe " + dir +
                               ": injected ENOSPC (no space left on device)");
  }
  const std::string path = dir + "/.disk-probe";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Unavailable("WAL probe open " + path + ": " + ErrnoText());
  }
  static const std::string kProbe = "kbrepair disk probe\n";
  bool disk_full = false;
  Status status = WriteFully(fd, kProbe, path, &disk_full);
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::Unavailable("WAL probe fsync " + path + ": " + ErrnoText());
  }
  ::close(fd);
  ::unlink(path.c_str());
  return status;
}

}  // namespace kbrepair
