#include "service/wal.h"

#include <fcntl.h>
#include <string.h>
#include <unistd.h>

#include <cerrno>

#include "util/failpoint.h"
#include "util/fs.h"
#include "util/trace.h"

namespace kbrepair {
namespace {

constexpr char kWalSuffix[] = ".wal";

std::string ErrnoText() { return std::string(strerror(errno)); }

Status WriteFully(int fd, const std::string& data, const std::string& path) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("WAL write " + path + ": " + ErrnoText());
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::unique_ptr<SessionWal>> SessionWal::Open(
    const std::string& dir, const std::string& session_id) {
  const std::string path = dir + "/" + session_id + kWalSuffix;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Unavailable("WAL open " + path + ": " + ErrnoText());
  }
  return std::unique_ptr<SessionWal>(new SessionWal(path, fd));
}

SessionWal::~SessionWal() {
  if (fd_ >= 0) ::close(fd_);
}

Status SessionWal::Append(const JsonValue& record, bool* fsync_failed) {
  trace::ScopedSpan span("wal.append", trace::Phase::kWalAppend);
  if (fsync_failed != nullptr) *fsync_failed = false;
  if (fd_ < 0) {
    return Status::Unavailable("WAL " + path_ + " is closed");
  }
  KBREPAIR_FAILPOINT("wal.append",
                     Status::Unavailable("injected WAL append failure"));
  KBREPAIR_RETURN_IF_ERROR(WriteFully(fd_, record.Dump() + "\n", path_));
  if (::fsync(fd_) != 0 || failpoint::ShouldFail("wal.fsync")) {
    if (fsync_failed != nullptr) *fsync_failed = true;
    return Status::Unavailable("WAL fsync " + path_ + ": " + ErrnoText());
  }
  ++appends_since_compaction_;
  return Status::Ok();
}

Status SessionWal::Compact(const JsonValue& create_params,
                           const std::vector<JsonValue>& entries) {
  JsonValue snapshot = JsonValue::Object();
  snapshot.Set("op", JsonValue::String("snapshot"));
  snapshot.Set("params", create_params);
  JsonValue entry_array = JsonValue::Array();
  for (const JsonValue& entry : entries) entry_array.Append(entry);
  snapshot.Set("entries", std::move(entry_array));

  KBREPAIR_RETURN_IF_ERROR(AtomicWriteFile(path_, snapshot.Dump() + "\n"));

  // The rename orphaned the inode behind the old fd: close it *before*
  // checking the reopen, so a reopen failure leaves the WAL closed
  // (Append then rejects commands) instead of silently appending to the
  // unlinked inode.
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    return Status::Unavailable("WAL reopen " + path_ + ": " + ErrnoText());
  }
  appends_since_compaction_ = 0;
  return Status::Ok();
}

Status SessionWal::Remove() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (::unlink(path_.c_str()) != 0 && errno != ENOENT) {
    return Status::Unavailable("WAL unlink " + path_ + ": " + ErrnoText());
  }
  return FsyncParentDir(path_);
}

JsonValue SessionWal::CreateRecord(const JsonValue& params) {
  JsonValue record = JsonValue::Object();
  record.Set("op", JsonValue::String("create"));
  record.Set("params", params);
  return record;
}

JsonValue SessionWal::AnswerRecord(JsonValue transcript_entry) {
  JsonValue record = JsonValue::Object();
  record.Set("op", JsonValue::String("answer"));
  record.Set("chosen", transcript_entry.Get("chosen"));
  record.Set("question", transcript_entry.Get("question"));
  return record;
}

JsonValue SessionWal::CloseRecord() {
  JsonValue record = JsonValue::Object();
  record.Set("op", JsonValue::String("close"));
  return record;
}

StatusOr<WalRecovery> ReadWalFile(const std::string& path,
                                  const std::string& session_id) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::Unavailable("WAL open " + path + ": " + ErrnoText());
  }
  std::string contents;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status =
          Status::Unavailable("WAL read " + path + ": " + ErrnoText());
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    contents.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  WalRecovery recovery;
  recovery.session_id = session_id;
  bool saw_create = false;

  size_t start = 0;
  while (start < contents.size()) {
    size_t newline = contents.find('\n', start);
    const bool torn = newline == std::string::npos;
    if (torn) newline = contents.size();
    const std::string line = contents.substr(start, newline - start);
    start = newline + 1;
    if (line.empty()) continue;

    StatusOr<JsonValue> parsed = JsonValue::Parse(line);
    if (!parsed.ok() || !parsed->is_object()) {
      if (torn || start >= contents.size()) {
        // Crash mid-append: the guarded command was never acknowledged,
        // so dropping the line loses nothing that was promised durable.
        recovery.dropped_torn_tail = true;
        break;
      }
      return Status::InvalidArgument("WAL " + path +
                                     ": unparseable interior record");
    }
    const std::string op = parsed->Get("op").AsString();
    if (op == "create") {
      if (saw_create) {
        return Status::InvalidArgument("WAL " + path +
                                       ": duplicate create record");
      }
      saw_create = true;
      recovery.create_params = parsed->Get("params");
    } else if (op == "snapshot") {
      // A snapshot restates the whole history; it can only legally be
      // the first record (compaction rewrites the file).
      if (saw_create || !recovery.entries.empty()) {
        return Status::InvalidArgument("WAL " + path +
                                       ": snapshot after other records");
      }
      saw_create = true;
      recovery.create_params = parsed->Get("params");
      const JsonValue& entries = parsed->Get("entries");
      if (!entries.is_array()) {
        return Status::InvalidArgument("WAL " + path +
                                       ": snapshot without entries array");
      }
      for (size_t i = 0; i < entries.size(); ++i) {
        recovery.entries.push_back(entries.at(i));
      }
    } else if (op == "answer") {
      if (!saw_create) {
        return Status::InvalidArgument("WAL " + path +
                                       ": answer before create");
      }
      JsonValue entry = JsonValue::Object();
      entry.Set("chosen", parsed->Get("chosen"));
      entry.Set("question", parsed->Get("question"));
      recovery.entries.push_back(std::move(entry));
    } else if (op == "close") {
      recovery.closed = true;
    } else {
      return Status::InvalidArgument("WAL " + path + ": unknown op '" + op +
                                     "'");
    }
  }
  if (!saw_create) {
    return Status::InvalidArgument("WAL " + path + ": no create record");
  }
  if (!recovery.create_params.is_object()) {
    return Status::InvalidArgument("WAL " + path +
                                   ": create record without params");
  }
  return recovery;
}

std::vector<std::string> ListWalSessionIds(const std::string& dir) {
  std::vector<std::string> ids;
  for (const std::string& name : ListFilesWithSuffix(dir, kWalSuffix)) {
    ids.push_back(name.substr(0, name.size() - (sizeof(kWalSuffix) - 1)));
  }
  return ids;
}

}  // namespace kbrepair
