#include "service/sharded_manager.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <utility>

#include "service/protocol.h"
#include "service/wal.h"
#include "util/log.h"

namespace kbrepair {

namespace {

constexpr char kComponent[] = "shard";

}  // namespace

size_t ShardedSessionManager::ShardForSession(const std::string& session_id,
                                              size_t num_shards) {
  if (num_shards <= 1) return 0;
  // FNV-1a 64: stable across restarts and standard libraries, which
  // std::hash is not — recovery re-routes WALs by this value.
  uint64_t hash = 14695981039346656037ull;
  for (const char c : session_id) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return static_cast<size_t>(hash % num_shards);
}

std::string ShardedSessionManager::ShardWalDir(const std::string& root,
                                               size_t shard_index,
                                               size_t num_shards) {
  if (num_shards <= 1) return root;  // the pre-shard layout
  return root + "/shard-" + std::to_string(shard_index);
}

void ShardedSessionManager::RebalanceWalFiles(const std::string& root,
                                              size_t num_shards) {
  // Collect every WAL anywhere in the layout: the root itself (the
  // 1-shard layout) and any shard-*/ subdirectory a previous run with a
  // different shard count left behind.
  std::vector<std::pair<std::string, std::string>> found;  // {dir, id}
  for (const std::string& id : ListWalSessionIds(root)) {
    found.emplace_back(root, id);
  }
  if (DIR* dir = ::opendir(root.c_str())) {
    while (dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name.compare(0, 6, "shard-") != 0) continue;
      const std::string sub = root + "/" + name;
      struct stat st{};
      if (::stat(sub.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) continue;
      for (const std::string& id : ListWalSessionIds(sub)) {
        found.emplace_back(sub, id);
      }
    }
    ::closedir(dir);
  }
  size_t moved = 0;
  for (const auto& [dir, id] : found) {
    const std::string target_dir =
        ShardWalDir(root, ShardForSession(id, num_shards), num_shards);
    if (dir == target_dir) continue;
    const std::string from = dir + "/" + id + ".wal";
    const std::string to = target_dir + "/" + id + ".wal";
    if (::rename(from.c_str(), to.c_str()) != 0) {
      logging::Error(kComponent, "WAL rebalance rename failed")
          .With("from", from)
          .With("to", to);
      continue;
    }
    ++moved;
  }
  if (moved != 0) {
    logging::Info(kComponent, "rebalanced WALs across shards")
        .With("moved", static_cast<int64_t>(moved))
        .With("shards", static_cast<int64_t>(num_shards));
  }
}

ShardedSessionManager::ShardedSessionManager(ShardedConfig config)
    : config_(std::move(config)) {
  const size_t num_shards = std::max<size_t>(1, config_.num_shards);
  const std::string wal_root = config_.shard.wal_dir;
  if (!wal_root.empty() && num_shards > 1) {
    for (size_t i = 0; i < num_shards; ++i) {
      // Best-effort; SessionWal::Open reports a usable error if the
      // directory is truly unavailable.
      ::mkdir(ShardWalDir(wal_root, i, num_shards).c_str(), 0755);
    }
  }
  if (config_.shard.recover && !wal_root.empty()) {
    RebalanceWalFiles(wal_root, num_shards);
  }
  // One memory governor serves every shard: --mem-budget bounds the
  // whole process, so per-shard budgets would mis-account shared bases
  // and let N shards each grow to the full limit.
  if (config_.shard.governor == nullptr) {
    config_.shard.governor =
        std::make_shared<ResourceGovernor>(config_.shard.mem_budget_bytes);
  }
  // One base registry serves every shard: a base registered through any
  // connection is forkable by sessions on all shards, and its refcount
  // sees them all. Its bases.jsonl lives at the WAL root (not a shard
  // dir) and is replayed before any shard recovers sessions — a
  // recovered session whose create params carry "base" re-forks from it.
  if (config_.shard.base_registry == nullptr) {
    auto registry = std::make_shared<BaseRegistry>(wal_root);
    if (config_.shard.recover && !wal_root.empty()) {
      (void)registry->RecoverFromLog();
    }
    config_.shard.base_registry = std::move(registry);
  }
  // The registry's bytes count against the budget (shared bases are
  // real memory); attach before shard construction so recovery-time
  // registrations are already accounted.
  config_.shard.base_registry->AttachGovernor(config_.shard.governor);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    ServiceConfig shard_config = config_.shard;
    if (!wal_root.empty()) {
      shard_config.wal_dir = ShardWalDir(wal_root, i, num_shards);
    }
    // The span recorder is process-global and Enable() resets its
    // epoch; only shard 0 may own it.
    if (i != 0) shard_config.trace_dir.clear();
    shards_.push_back(std::make_unique<SessionManager>(shard_config));
  }
  // The registry gauges (bases_registered, base_rss_bytes) live on
  // shard 0's metrics only, so MergeFrom aggregation counts them once;
  // same for the governor's memory gauges.
  config_.shard.base_registry->AttachMetrics(&shards_[0]->metrics());
  config_.shard.governor->AttachMetrics(&shards_[0]->metrics());
  uint64_t max_seen = 0;
  for (const auto& shard : shards_) {
    max_seen = std::max(max_seen, shard->LastSessionNumber());
  }
  next_session_.store(max_seen, std::memory_order_relaxed);
  if (num_shards > 1) {
    logging::Info(kComponent, "sharded session manager up")
        .With("shards", static_cast<int64_t>(num_shards))
        .With("workers_per_shard",
              static_cast<int64_t>(config_.shard.num_workers));
  }
}

ShardedSessionManager::~ShardedSessionManager() { Shutdown(); }

void ShardedSessionManager::Shutdown() {
  for (const auto& shard : shards_) shard->Shutdown();
}

void ShardedSessionManager::Submit(ServiceRequest request,
                                   SessionManager::Completion done) {
  if (shards_.size() == 1) {
    shards_[0]->Submit(std::move(request), std::move(done));
    return;
  }
  const std::string& command = request.command;
  if (command == "create") {
    const std::string id =
        "s-" + std::to_string(
                   next_session_.fetch_add(1, std::memory_order_relaxed) + 1);
    request.assigned_session_id = id;
    shards_[ShardForSession(id, shards_.size())]->Submit(std::move(request),
                                                         std::move(done));
    return;
  }
  if (command == "metrics") {
    // Answered at the front-end: the aggregate over every shard, in the
    // single-shard response shape. Accounted to shard 0, counted before
    // the snapshot so the response includes itself (matching the
    // single-shard ordering).
    shards_[0]->metrics().requests_total.fetch_add(1,
                                                   std::memory_order_relaxed);
    done(Status::Ok(), MetricsJson());
    return;
  }
  if (command == "trace" || command == "register-base" ||
      command == "list-bases" || command == "failpoint") {
    // The registry is shared, so any shard could serve these; shard 0
    // keeps the request accounting in one place.
    shards_[0]->Submit(std::move(request), std::move(done));
    return;
  }
  if (request.session_id.empty()) {
    // Shard 0 produces the canonical missing-/unknown-session errors.
    shards_[0]->Submit(std::move(request), std::move(done));
    return;
  }
  shards_[ShardForSession(request.session_id, shards_.size())]->Submit(
      std::move(request), std::move(done));
}

void ShardedSessionManager::SubmitLine(const std::string& line,
                                       std::function<void(std::string)> emit) {
  if (shards_.size() == 1) {
    shards_[0]->SubmitLine(line, std::move(emit));
    return;
  }
  StatusOr<ServiceRequest> parsed = ParseRequestLine(line);
  if (!parsed.ok()) {
    ServiceMetrics& front = shards_[0]->metrics();
    front.requests_total.fetch_add(1, std::memory_order_relaxed);
    front.errors_total.fetch_add(1, std::memory_order_relaxed);
    emit(ErrorResponseForLine(line, parsed.status()));
    return;
  }
  ServiceRequest request = std::move(parsed).value();
  std::string id = request.id;
  Submit(std::move(request),
         [id = std::move(id), emit = std::move(emit)](Status status,
                                                      JsonValue result) {
           ServiceRequest echo;
           echo.id = id;
           emit(status.ok() ? OkResponseLine(echo, std::move(result))
                            : ErrorResponseLine(echo, status));
         });
}

StatusOr<JsonValue> ShardedSessionManager::Execute(ServiceRequest request) {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  Status status = Status::Ok();
  JsonValue result;
  Submit(std::move(request), [&](Status s, JsonValue r) {
    std::lock_guard<std::mutex> lock(mu);
    status = std::move(s);
    result = std::move(r);
    ready = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return ready; });
  if (!status.ok()) return status;
  return result;
}

JsonValue ShardedSessionManager::MetricsJson() {
  ServiceMetrics aggregate;
  for (const auto& shard : shards_) aggregate.MergeFrom(shard->metrics());
  JsonValue out = aggregate.ToJson();

  size_t commands_in_flight = 0;
  size_t sessions_registered = 0;
  for (const auto& shard : shards_) {
    commands_in_flight += shard->CommandsInFlight();
    sessions_registered += shard->SessionsRegistered();
  }
  JsonValue service = JsonValue::Object();
  service.Set("workers",
              JsonValue::Number(static_cast<int64_t>(
                  shards_.size() * config_.shard.num_workers)));
  service.Set("commands_in_flight",
              JsonValue::Number(static_cast<int64_t>(commands_in_flight)));
  service.Set("sessions_registered",
              JsonValue::Number(static_cast<int64_t>(sessions_registered)));
  service.Set("shards",
              JsonValue::Number(static_cast<int64_t>(shards_.size())));
  out.Set("service", std::move(service));

  JsonValue per_shard = JsonValue::Array();
  for (size_t i = 0; i < shards_.size(); ++i) {
    ServiceMetrics& m = shards_[i]->metrics();
    JsonValue row = JsonValue::Object();
    row.Set("shard", JsonValue::Number(static_cast<int64_t>(i)));
    row.Set("sessions_active",
            JsonValue::Number(
                m.sessions_active.load(std::memory_order_relaxed)));
    row.Set("sessions_opened",
            JsonValue::Number(
                m.sessions_opened.load(std::memory_order_relaxed)));
    row.Set("requests_total",
            JsonValue::Number(
                m.requests_total.load(std::memory_order_relaxed)));
    row.Set("turn_delay_count",
            JsonValue::Number(m.turn_delay.count()));
    per_shard.Append(std::move(row));
  }
  out.Set("per_shard", std::move(per_shard));
  return out;
}

void ShardedSessionManager::AppendMetricsText(std::string* out) {
  ServiceMetrics aggregate;
  for (const auto& shard : shards_) aggregate.MergeFrom(shard->metrics());
  AppendPrometheusText(aggregate, out);
  if (shards_.size() > 1) {
    std::vector<const ServiceMetrics*> views;
    views.reserve(shards_.size());
    for (const auto& shard : shards_) views.push_back(&shard->metrics());
    AppendShardPrometheusText(views, out);
  }
}

std::vector<std::string> ShardedSessionManager::ReadinessCauses() {
  if (shards_.size() == 1) return shards_[0]->ReadinessCauses();
  std::vector<std::string> causes;
  for (size_t i = 0; i < shards_.size(); ++i) {
    for (const std::string& cause : shards_[i]->ReadinessCauses()) {
      causes.push_back("shard " + std::to_string(i) + ": " + cause);
    }
  }
  return causes;
}

JsonValue ShardedSessionManager::StatuszJson() {
  if (shards_.size() == 1) return shards_[0]->StatuszJson();
  JsonValue out = JsonValue::Object();
  out.Set("uptime_s", JsonValue::Number(
                          static_cast<double>(MonotonicNowNs() - start_ns_) /
                          1e9));
  out.Set("shards",
          JsonValue::Number(static_cast<int64_t>(shards_.size())));
  out.Set("workers_per_shard",
          JsonValue::Number(
              static_cast<int64_t>(config_.shard.num_workers)));
  int64_t sessions_active = 0;
  size_t commands_in_flight = 0;
  for (const auto& shard : shards_) {
    sessions_active +=
        shard->metrics().sessions_active.load(std::memory_order_relaxed);
    commands_in_flight += shard->CommandsInFlight();
  }
  out.Set("sessions_active", JsonValue::Number(sessions_active));
  out.Set("commands_in_flight",
          JsonValue::Number(static_cast<int64_t>(commands_in_flight)));
  JsonValue readiness = JsonValue::Array();
  for (const std::string& cause : ReadinessCauses()) {
    readiness.Append(JsonValue::String(cause));
  }
  out.Set("readiness_causes", std::move(readiness));
  JsonValue per_shard = JsonValue::Array();
  for (const auto& shard : shards_) {
    per_shard.Append(shard->StatuszJson());
  }
  out.Set("shard", std::move(per_shard));
  return out;
}

}  // namespace kbrepair
