// Minimal HTTP/1.1 exporter for the repair daemon's observability
// surface. One dedicated accept thread serves four read-only endpoints:
//
//   GET /metrics  Prometheus text exposition (0.0.4) of ServiceMetrics
//   GET /healthz  liveness — 200 as long as the thread is serving
//   GET /readyz   readiness — 503 with one cause per line while the
//                 service is degraded (shutdown, worker stall, recent
//                 WAL fsync failure or engine demotion)
//   GET /statusz  JSON snapshot: sessions, queue depth, uptime, build
//                 and flag info
//
// The exporter holds no reference to SessionManager's internals; the
// daemon wires it up through the three Hooks callbacks, which must be
// safe to call from the exporter thread at any time between Start()
// and Stop(). Connections are served one at a time on the accept
// thread — scrapes are rare (seconds apart) and responses are small,
// so a connection pool would be dead weight; a stuck client is bounded
// by the per-connection receive timeout.
//
// Failure injection: the `http.accept` failpoint drops accepted
// connections before reading, `http.write` fails response writes —
// both let tests exercise scraper-facing error paths deterministically.

#ifndef KBREPAIR_SERVICE_HTTP_EXPORTER_H_
#define KBREPAIR_SERVICE_HTTP_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace kbrepair {

class HttpExporter {
 public:
  struct Options {
    int port = 0;  // 0 = kernel-assigned ephemeral port
    std::string bind_address = "127.0.0.1";
    // When set, the bound port is written here (atomically, as a bare
    // decimal line) once listening — the shell-friendly way to find an
    // ephemeral port, since stdout belongs to the wire protocol.
    std::string port_file;
    size_t max_request_bytes = 8192;  // request head cap -> 413
  };

  struct Hooks {
    // Appends the Prometheus exposition body. Required.
    std::function<void(std::string*)> append_metrics;
    // Current readiness-failure causes; empty means ready. Required.
    std::function<std::vector<std::string>()> readiness_causes;
    // /statusz JSON object. Required.
    std::function<JsonValue()> statusz;
  };

  HttpExporter(Options options, Hooks hooks);
  ~HttpExporter();  // calls Stop()

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  // Binds, listens, writes the port file, starts the accept thread.
  Status Start();
  // Idempotent. Unblocks the accept loop and joins the thread.
  void Stop();

  // The bound port (valid after a successful Start()).
  int port() const { return port_; }

  // Exporter-local counters, exposed in /metrics as
  // kbrepair_http_requests_total / kbrepair_http_errors_total.
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  uint64_t errors_served() const {
    return errors_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Options options_;
  Hooks hooks_;
  int listen_fd_ = -1;
  int port_ = -1;
  int64_t start_ns_ = 0;  // MonotonicNowNs() at Start()
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
};

}  // namespace kbrepair

#endif  // KBREPAIR_SERVICE_HTTP_EXPORTER_H_
