#include "service/base_registry.h"

#include <fcntl.h>
#include <stdio.h>
#include <unistd.h>

#include <fstream>
#include <utility>
#include <vector>

#include "service/session.h"
#include "util/fs.h"
#include "util/log.h"
#include "util/logging.h"

namespace kbrepair {

namespace {

constexpr char kComponent[] = "base_registry";

std::string HashHex(uint64_t hash) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

JsonValue RegisterRecord(const std::string& name, uint64_t hash,
                         const JsonValue& params) {
  JsonValue record = JsonValue::Object();
  record.Set("op", JsonValue::String("register"));
  record.Set("name", JsonValue::String(name));
  record.Set("hash", JsonValue::String(HashHex(hash)));
  record.Set("params", params);
  return record;
}

JsonValue EvictRecord(const std::string& name) {
  JsonValue record = JsonValue::Object();
  record.Set("op", JsonValue::String("evict"));
  record.Set("name", JsonValue::String(name));
  return record;
}

// Builds the frozen snapshot a register record describes. Deterministic
// in `params`, so a re-register (or a log replay) of the same params
// reproduces the same content hash.
StatusOr<std::shared_ptr<const SharedKbSnapshot>> BuildSnapshot(
    const JsonValue& params) {
  std::string label;
  KBREPAIR_ASSIGN_OR_RETURN(KnowledgeBase kb,
                            BuildKbFromParams(params, &label));
  // Snapshots are built with plain chase options: per-session deadlines
  // come from each session's own cancel token, never baked into the
  // shared prototypes.
  return BuildSharedKbSnapshot(std::move(kb), std::move(label),
                               ChaseOptions{});
}

JsonValue BaseInfoJson(const std::string& name, const SharedKbSnapshot& snap,
                       uint64_t refcount, uint64_t forks) {
  JsonValue out = JsonValue::Object();
  out.Set("name", JsonValue::String(name));
  out.Set("kb", JsonValue::String(snap.label));
  out.Set("hash", JsonValue::String(HashHex(snap.content_hash)));
  out.Set("facts",
          JsonValue::Number(static_cast<int64_t>(snap.kb.facts().size())));
  out.Set("bytes", JsonValue::Number(static_cast<int64_t>(snap.approx_bytes)));
  out.Set("repairable", JsonValue::Bool(snap.repairable));
  out.Set("initial_conflicts",
          JsonValue::Number(static_cast<int64_t>(snap.initial_conflicts)));
  // Whether forks adopt the saturated engine prototypes or cold-start
  // their engines (the snapshot's mint guard fired).
  out.Set("engine_protos", JsonValue::Bool(snap.delta_proto != nullptr));
  out.Set("refcount", JsonValue::Number(refcount));
  out.Set("forks", JsonValue::Number(forks));
  return out;
}

}  // namespace

BaseRegistry::Handle::Handle(Handle&& other) noexcept
    : registry_(std::move(other.registry_)),
      name_(std::move(other.name_)),
      snapshot_(std::move(other.snapshot_)) {
  other.registry_.reset();
  other.snapshot_.reset();
}

BaseRegistry::Handle& BaseRegistry::Handle::operator=(
    Handle&& other) noexcept {
  if (this != &other) {
    Release();
    registry_ = std::move(other.registry_);
    name_ = std::move(other.name_);
    snapshot_ = std::move(other.snapshot_);
    other.registry_.reset();
    other.snapshot_.reset();
  }
  return *this;
}

BaseRegistry::Handle::~Handle() { Release(); }

void BaseRegistry::Handle::Release() {
  if (registry_ != nullptr && snapshot_ != nullptr) {
    registry_->Release(name_);
  }
  registry_.reset();
  snapshot_.reset();
}

BaseRegistry::BaseRegistry(std::string log_dir)
    : log_dir_(std::move(log_dir)) {}

std::string BaseRegistry::LogPath() const {
  return log_dir_ + "/bases.jsonl";
}

Status BaseRegistry::AppendLogRecord(const JsonValue& record) {
  if (log_dir_.empty()) return Status::Ok();
  const std::string path = LogPath();
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Unavailable("could not open " + path);
  }
  const std::string line = record.Dump() + "\n";
  Status status = Status::Ok();
  if (::write(fd, line.data(), line.size()) !=
      static_cast<ssize_t>(line.size())) {
    status = Status::Unavailable("short write to " + path);
  } else if (::fsync(fd) != 0) {
    status = Status::Unavailable("fsync failed for " + path);
  }
  ::close(fd);
  return status;
}

Status BaseRegistry::CompactLogLocked() {
  if (log_dir_.empty()) return Status::Ok();
  std::string contents;
  for (const auto& [name, entry] : bases_) {
    contents += RegisterRecord(name, entry.snapshot->content_hash,
                               entry.params)
                    .Dump() +
                "\n";
  }
  return AtomicWriteFile(LogPath(), contents);
}

StatusOr<JsonValue> BaseRegistry::Register(const JsonValue& params) {
  const std::string name = params.Get("name").AsString();
  if (name.empty()) {
    return Status::InvalidArgument(
        "register-base needs a non-empty 'name'");
  }
  // The snapshot build (chase + census) runs outside the lock; a
  // concurrent register of the same name is resolved by hash below.
  KBREPAIR_ASSIGN_OR_RETURN(std::shared_ptr<const SharedKbSnapshot> snapshot,
                            BuildSnapshot(params));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = bases_.find(name);
  if (it != bases_.end()) {
    if (it->second.snapshot->content_hash == snapshot->content_hash) {
      // Same KB under the same name: idempotent re-register.
      JsonValue info = BaseInfoJson(name, *it->second.snapshot,
                                    it->second.refcount, it->second.forks);
      info.Set("already_registered", JsonValue::Bool(true));
      return info;
    }
    return Status::FailedPrecondition(
        "base '" + name + "' is already registered with a different KB "
        "(hash " + HashHex(it->second.snapshot->content_hash) + " vs " +
        HashHex(snapshot->content_hash) + ")");
  }
  // Log-before-register, like the session WAL: if the record cannot be
  // made durable the registration is rejected and nothing changes.
  KBREPAIR_RETURN_IF_ERROR(
      AppendLogRecord(RegisterRecord(name, snapshot->content_hash, params)));
  Entry entry;
  entry.snapshot = snapshot;
  entry.params = params;
  entry.last_release = std::chrono::steady_clock::now();
  bases_.emplace(name, std::move(entry));
  UpdateGaugesLocked();
  logging::Info(kComponent, "registered base")
      .With("base", name)
      .With("hash", HashHex(snapshot->content_hash))
      .With("facts", static_cast<int64_t>(snapshot->kb.facts().size()));
  return BaseInfoJson(name, *snapshot, 0, 0);
}

StatusOr<BaseRegistry::Handle> BaseRegistry::Acquire(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = bases_.find(name);
  if (it == bases_.end()) {
    return Status::NotFound("unknown base '" + name + "'");
  }
  ++it->second.refcount;
  ++it->second.forks;
  return Handle(shared_from_this(), name, it->second.snapshot);
}

void BaseRegistry::Release(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  ReleaseLocked(name);
}

void BaseRegistry::ReleaseLocked(const std::string& name) {
  auto it = bases_.find(name);
  if (it == bases_.end()) return;  // defensive: evictions skip refs > 0
  KBREPAIR_DCHECK(it->second.refcount > 0);
  if (it->second.refcount > 0) --it->second.refcount;
  if (it->second.refcount == 0) {
    it->second.last_release = std::chrono::steady_clock::now();
  }
}

JsonValue BaseRegistry::ListJson() {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue list = JsonValue::Array();
  for (const auto& [name, entry] : bases_) {
    list.Append(
        BaseInfoJson(name, *entry.snapshot, entry.refcount, entry.forks));
  }
  JsonValue out = JsonValue::Object();
  out.Set("bases", std::move(list));
  return out;
}

size_t BaseRegistry::SweepExpired(double ttl_seconds) {
  if (ttl_seconds <= 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = std::chrono::steady_clock::now();
  size_t evicted = 0;
  for (auto it = bases_.begin(); it != bases_.end();) {
    const Entry& entry = it->second;
    const double idle =
        std::chrono::duration<double>(now - entry.last_release).count();
    if (entry.refcount == 0 && idle > ttl_seconds) {
      // Best-effort durability: a lost evict record only means the base
      // is rebuilt on the next recovery, which is safe.
      const Status logged = AppendLogRecord(EvictRecord(it->first));
      if (!logged.ok()) {
        logging::Warn(kComponent, "evict record append failed")
            .With("base", it->first)
            .With("error", logged.message());
      }
      logging::Info(kComponent, "evicted orphaned base")
          .With("base", it->first)
          .With("idle_s", idle);
      it = bases_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  if (evicted != 0) UpdateGaugesLocked();
  return evicted;
}

Status BaseRegistry::RecoverFromLog() {
  if (log_dir_.empty()) return Status::Ok();
  const std::string path = LogPath();
  std::ifstream in(path);
  if (!in.is_open()) return Status::Ok();  // no log: nothing registered

  // Replay to the final live set first (registers shadowed by a later
  // evict are never rebuilt), then build snapshots for the survivors.
  std::map<std::string, std::pair<std::string, JsonValue>> live;  // hash hex
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    StatusOr<JsonValue> parsed = JsonValue::Parse(line);
    if (!parsed.ok()) {
      // A torn final line (crash mid-append) is expected; anything
      // earlier is corruption worth surfacing but not dying over.
      logging::Warn(kComponent, "skipping unparsable bases.jsonl line")
          .With("line", static_cast<int64_t>(line_no))
          .With("error", parsed.status().message());
      continue;
    }
    const std::string op = parsed->Get("op").AsString();
    const std::string name = parsed->Get("name").AsString();
    if (name.empty()) continue;
    if (op == "register") {
      live[name] = {parsed->Get("hash").AsString(), parsed->Get("params")};
    } else if (op == "evict") {
      live.erase(name);
    }
  }
  in.close();

  size_t recovered = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, record] : live) {
      const auto& [recorded_hash, params] = record;
      StatusOr<std::shared_ptr<const SharedKbSnapshot>> rebuilt =
          BuildSnapshot(params);
      if (!rebuilt.ok()) {
        logging::Error(kComponent, "could not rebuild base; dropping it")
            .With("base", name)
            .With("error", rebuilt.status().message());
        continue;
      }
      if (HashHex((*rebuilt)->content_hash) != recorded_hash) {
        logging::Error(kComponent,
                       "rebuilt base hash mismatches the log; dropping it")
            .With("base", name)
            .With("recorded", recorded_hash)
            .With("rebuilt", HashHex((*rebuilt)->content_hash));
        continue;
      }
      Entry entry;
      entry.snapshot = std::move(rebuilt).value();
      entry.params = params;
      entry.last_release = std::chrono::steady_clock::now();
      bases_.emplace(name, std::move(entry));
      ++recovered;
    }
    UpdateGaugesLocked();
    const Status compacted = CompactLogLocked();
    if (!compacted.ok()) {
      logging::Warn(kComponent, "bases.jsonl compaction failed")
          .With("error", compacted.message());
    }
  }
  if (recovered != 0) {
    logging::Info(kComponent, "recovered bases from log")
        .With("bases", static_cast<int64_t>(recovered));
  }
  return Status::Ok();
}

void BaseRegistry::AttachMetrics(ServiceMetrics* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = metrics;
  UpdateGaugesLocked();
}

void BaseRegistry::AttachGovernor(std::shared_ptr<ResourceGovernor> governor) {
  std::lock_guard<std::mutex> lock(mu_);
  governor_ = std::move(governor);
  UpdateGaugesLocked();
}

void BaseRegistry::UpdateGaugesLocked() {
  if (metrics_ == nullptr && governor_ == nullptr) return;
  int64_t bytes = 0;
  for (const auto& [name, entry] : bases_) {
    bytes += static_cast<int64_t>(entry.snapshot->approx_bytes);
  }
  if (metrics_ != nullptr) {
    metrics_->bases_registered.store(static_cast<int64_t>(bases_.size()),
                                     std::memory_order_relaxed);
    metrics_->base_rss_bytes.store(bytes, std::memory_order_relaxed);
  }
  if (governor_ != nullptr) governor_->SetBaseBytes(bytes);
}

size_t BaseRegistry::NumBases() {
  std::lock_guard<std::mutex> lock(mu_);
  return bases_.size();
}

uint64_t BaseRegistry::RefCount(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = bases_.find(name);
  return it == bases_.end() ? 0 : it->second.refcount;
}

bool BaseRegistry::Has(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return bases_.find(name) != bases_.end();
}

StatusOr<uint64_t> BaseRegistry::ContentHash(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = bases_.find(name);
  if (it == bases_.end()) {
    return Status::NotFound("unknown base '" + name + "'");
  }
  return it->second.snapshot->content_hash;
}

}  // namespace kbrepair
