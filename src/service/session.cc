#include "service/session.h"

#include "util/log.h"
#include <utility>

#include "gen/durum_wheat.h"
#include "gen/synthetic.h"
#include "parser/dlgp_parser.h"

namespace kbrepair {

namespace {

StatusOr<Strategy> StrategyFromName(const std::string& name) {
  if (name == "random") return Strategy::kRandom;
  if (name == "opti-join") return Strategy::kOptiJoin;
  if (name == "opti-prop") return Strategy::kOptiProp;
  if (name == "opti-mcd") return Strategy::kOptiMcd;
  if (name == "opti-learn") return Strategy::kOptiLearn;
  return Status::InvalidArgument("unknown strategy '" + name + "'");
}

StatusOr<ConflictEngineKind> ConflictEngineFromName(const std::string& name) {
  if (name == "scratch") return ConflictEngineKind::kScratch;
  if (name == "incremental") return ConflictEngineKind::kIncremental;
  return Status::InvalidArgument("unknown engine '" + name +
                                 "' (expected 'scratch' or 'incremental')");
}

JsonValue FactsToJson(const FactBase& facts, const SymbolTable& symbols) {
  JsonValue out = JsonValue::Array();
  for (AtomId id = 0; id < facts.size(); ++id) {
    out.Append(JsonValue::String(facts.atom(id).ToString(symbols)));
  }
  return out;
}

const char* TermKindTag(TermKind kind) {
  switch (kind) {
    case TermKind::kConstant:
      return "constant";
    case TermKind::kVariable:
      return "variable";
    case TermKind::kNull:
      return "null";
  }
  return "?";
}

}  // namespace

// Comparison stays at the string level: interning the recorded terms
// into the live symbol table would advance its fresh-null counter, so
// the replayed dialogue would mint differently named nulls and
// recovery would no longer be byte-identical with the original run.
std::optional<size_t> MatchRecordedFixJson(const JsonValue& recorded,
                                           const Question& question,
                                           const InquiryView& view,
                                           const SymbolTable& symbols) {
  const AtomId atom = static_cast<AtomId>(recorded.Get("atom").AsInt(-1));
  const int arg = static_cast<int>(recorded.Get("arg").AsInt(-1));
  const std::string kind = recorded.Get("kind").AsString();
  const std::string value = recorded.Get("value").AsString();
  for (size_t i = 0; i < question.fixes.size(); ++i) {
    const Fix& offered = question.fixes[i];
    if (offered.atom != atom || offered.arg != arg) continue;
    const TermKind offered_kind = symbols.term_kind(offered.value);
    const bool exact = kind == TermKindTag(offered_kind) &&
                       value == symbols.term_name(offered.value);
    // A re-run mints a different fresh null for the same position; both
    // denote "unknown unique to the position".
    const bool both_fresh_nulls =
        kind == "null" && offered_kind == TermKind::kNull &&
        view.facts != nullptr && view.facts->TermUseCount(offered.value) == 0;
    if (exact || both_fresh_nulls) return i;
  }
  return std::nullopt;
}

namespace {

// Attributes the phase time a command spends to the session's
// (strategy, engine) metrics slot when it leaves scope. The manager
// serializes a session's commands on one worker thread, so the
// thread-local accumulator delta is exactly this command's work.
class ScopedPhaseAttribution {
 public:
  ScopedPhaseAttribution(const RepairSession& session, ServiceMetrics* metrics)
      : session_(session),
        metrics_(metrics),
        before_(trace::ThreadPhaseTotals()) {}
  ~ScopedPhaseAttribution() {
    session_.ObservePhases(metrics_, trace::ThreadPhaseTotals().Since(before_));
  }

  ScopedPhaseAttribution(const ScopedPhaseAttribution&) = delete;
  ScopedPhaseAttribution& operator=(const ScopedPhaseAttribution&) = delete;

 private:
  const RepairSession& session_;
  ServiceMetrics* metrics_;
  trace::PhaseTotals before_;
};

}  // namespace

StatusOr<KnowledgeBase> BuildKbFromParams(const JsonValue& params,
                                          std::string* label) {
  if (params.Get("kb_dlgp").is_string()) {
    KBREPAIR_ASSIGN_OR_RETURN(
        KnowledgeBase kb, ParseDlgp(params.Get("kb_dlgp").AsString()));
    KBREPAIR_RETURN_IF_ERROR(kb.Validate());
    *label = "dlgp";
    return kb;
  }
  const std::string name = params.Get("kb").AsString();
  if (name == "durum_wheat_v1" || name == "durum_wheat_v2") {
    DurumWheatOptions options;
    options.version = name == "durum_wheat_v1" ? DurumWheatVersion::kV1
                                               : DurumWheatVersion::kV2;
    if (params.Get("kb_seed").is_number()) {
      options.seed = static_cast<uint64_t>(params.Get("kb_seed").AsInt());
    }
    KBREPAIR_ASSIGN_OR_RETURN(DurumWheatKb durum,
                              GenerateDurumWheatKb(options));
    *label = name;
    return std::move(durum.kb);
  }
  if (name == "synthetic") {
    SyntheticKbOptions options;
    // Service defaults favour fast interactive sessions; callers scale
    // up explicitly.
    options.num_facts = 60;
    options.num_cdds = 6;
    options.inconsistency_ratio = 0.3;
    if (params.Get("kb_seed").is_number()) {
      options.seed = static_cast<uint64_t>(params.Get("kb_seed").AsInt());
    }
    if (params.Get("num_facts").is_number()) {
      options.num_facts =
          static_cast<size_t>(params.Get("num_facts").AsInt());
    }
    if (params.Get("num_cdds").is_number()) {
      options.num_cdds = static_cast<size_t>(params.Get("num_cdds").AsInt());
    }
    if (params.Get("inconsistency_ratio").is_number()) {
      options.inconsistency_ratio =
          params.Get("inconsistency_ratio").AsDouble();
    }
    // The full generator surface, so a WAL create record reconstructs
    // any harness KB bit-for-bit (the differential matrix uses TGD
    // chains and tight arity/multiplicity ranges the defaults lack).
    if (params.Get("num_tgds").is_number()) {
      options.num_tgds = static_cast<size_t>(params.Get("num_tgds").AsInt());
    }
    if (params.Get("conflict_depth").is_number()) {
      options.conflict_depth =
          static_cast<int>(params.Get("conflict_depth").AsInt());
    }
    if (params.Get("routed_violation_share").is_number()) {
      options.routed_violation_share =
          params.Get("routed_violation_share").AsDouble();
    }
    if (params.Get("cdd_min_atoms").is_number()) {
      options.cdd_min_atoms =
          static_cast<int>(params.Get("cdd_min_atoms").AsInt());
    }
    if (params.Get("cdd_max_atoms").is_number()) {
      options.cdd_max_atoms =
          static_cast<int>(params.Get("cdd_max_atoms").AsInt());
    }
    if (params.Get("min_arity").is_number()) {
      options.min_arity = static_cast<int>(params.Get("min_arity").AsInt());
    }
    if (params.Get("max_arity").is_number()) {
      options.max_arity = static_cast<int>(params.Get("max_arity").AsInt());
    }
    if (params.Get("min_multiplicity").is_number()) {
      options.min_multiplicity =
          static_cast<int>(params.Get("min_multiplicity").AsInt());
    }
    if (params.Get("max_multiplicity").is_number()) {
      options.max_multiplicity =
          static_cast<int>(params.Get("max_multiplicity").AsInt());
    }
    KBREPAIR_ASSIGN_OR_RETURN(SyntheticKb synthetic,
                              GenerateSyntheticKb(options));
    *label = "synthetic";
    return std::move(synthetic.kb);
  }
  if (name.empty()) {
    return Status::InvalidArgument(
        "create needs a 'kb' name or inline 'kb_dlgp' text");
  }
  return Status::InvalidArgument("unknown kb '" + name + "'");
}

namespace {
// Daemon-wide default for sessions that do not pass "chase_threads";
// set once at startup from kbrepaird's --chase-threads flag. Safe to
// vary across restarts: chase output is thread-count-invariant, so a
// WAL replayed under a different default reproduces the same state.
size_t g_default_chase_threads = 1;
}  // namespace

void SetDefaultChaseThreads(size_t threads) {
  g_default_chase_threads = threads < 1 ? 1 : threads;
}

StatusOr<InquiryOptions> InquiryOptionsFromParams(const JsonValue& params) {
  InquiryOptions options;
  options.chase_options.num_threads = g_default_chase_threads;
  if (params.Get("strategy").is_string()) {
    KBREPAIR_ASSIGN_OR_RETURN(
        options.strategy, StrategyFromName(params.Get("strategy").AsString()));
  }
  if (params.Get("seed").is_number()) {
    options.seed = static_cast<uint64_t>(params.Get("seed").AsInt());
  }
  if (params.Get("two_phase").is_bool()) {
    options.two_phase = params.Get("two_phase").AsBool();
  }
  if (params.Get("max_questions").is_number()) {
    options.max_questions =
        static_cast<size_t>(params.Get("max_questions").AsInt());
  }
  if (params.Get("engine").is_string()) {
    KBREPAIR_ASSIGN_OR_RETURN(
        options.conflict_engine,
        ConflictEngineFromName(params.Get("engine").AsString()));
  }
  if (params.Get("record_convergence").is_string()) {
    const std::string mode = params.Get("record_convergence").AsString();
    if (mode == "off") {
      options.record_convergence = ConvergenceRecording::kOff;
    } else if (mode == "total") {
      options.record_convergence = ConvergenceRecording::kTotalConflicts;
    } else if (mode == "discovered") {
      options.record_convergence = ConvergenceRecording::kDiscoveredConflicts;
    } else {
      return Status::InvalidArgument(
          "unknown record_convergence '" + mode +
          "' (expected 'off', 'total', or 'discovered')");
    }
  }
  if (params.Get("chase_threads").is_number()) {
    const int64_t threads = params.Get("chase_threads").AsInt();
    if (threads < 1 || threads > 64) {
      return Status::InvalidArgument("chase_threads must be in [1, 64]");
    }
    options.chase_options.num_threads = static_cast<size_t>(threads);
  }
  return options;
}

RepairSession::RepairSession(std::string id, std::string kb_label,
                             KnowledgeBase kb, InquiryOptions options,
                             JsonValue create_params)
    : id_(std::move(id)),
      kb_label_(std::move(kb_label)),
      kb_(std::move(kb)),
      options_(options),
      create_params_(std::move(create_params)),
      cancel_(std::make_shared<CancelToken>()) {
  // Every chase-running component the engine builds shares this token,
  // so arming it bounds a whole command.
  options_.chase_options.cancel = cancel_;
  engine_ = std::make_unique<InquiryEngine>(&kb_, options_);
}

StatusOr<std::unique_ptr<RepairSession>> RepairSession::Create(
    std::string id, const JsonValue& params, int64_t deadline_ms) {
  std::string label;
  KBREPAIR_ASSIGN_OR_RETURN(KnowledgeBase kb,
                            BuildKbFromParams(params, &label));
  KBREPAIR_ASSIGN_OR_RETURN(InquiryOptions options,
                            InquiryOptionsFromParams(params));
  std::unique_ptr<RepairSession> session(new RepairSession(
      std::move(id), std::move(label), std::move(kb), options, params));
  session->ArmDeadline(deadline_ms);
  const Status begun = session->engine_->Begin();
  session->DisarmDeadline();
  KBREPAIR_RETURN_IF_ERROR(begun);
  return session;
}

StatusOr<std::unique_ptr<RepairSession>> RepairSession::CreateFromBase(
    std::string id, const JsonValue& params, BaseRegistry::Handle base,
    int64_t deadline_ms) {
  KBREPAIR_CHECK(static_cast<bool>(base));
  KBREPAIR_ASSIGN_OR_RETURN(InquiryOptions options,
                            InquiryOptionsFromParams(params));
  const std::shared_ptr<const SharedKbSnapshot>& snapshot = base.snapshot();
  std::unique_ptr<RepairSession> session(
      new RepairSession(std::move(id), snapshot->label, snapshot->Fork(),
                        options, params));
  session->base_ = std::move(base);
  session->ArmDeadline(deadline_ms);
  // Adopts the snapshot's precomputed verdict/censuses and arms the
  // frozen engine prototypes; the seed stays valid because base_ pins
  // the snapshot for the session's lifetime.
  const Status begun =
      session->engine_->BeginShared(session->base_.snapshot()->Seed());
  session->DisarmDeadline();
  KBREPAIR_RETURN_IF_ERROR(begun);
  return session;
}

StatusOr<std::unique_ptr<RepairSession>> RepairSession::Recover(
    std::string id, const JsonValue& create_params,
    const std::vector<JsonValue>& entries) {
  std::string label;
  KBREPAIR_ASSIGN_OR_RETURN(KnowledgeBase kb,
                            BuildKbFromParams(create_params, &label));
  KBREPAIR_ASSIGN_OR_RETURN(InquiryOptions options,
                            InquiryOptionsFromParams(create_params));
  std::unique_ptr<RepairSession> session(new RepairSession(
      std::move(id), std::move(label), std::move(kb), options, create_params));
  KBREPAIR_RETURN_IF_ERROR(session->engine_->Begin());
  KBREPAIR_RETURN_IF_ERROR(ReplayWalEntries(session.get(), entries));
  return session;
}

StatusOr<std::unique_ptr<RepairSession>> RepairSession::RecoverFromBase(
    std::string id, const JsonValue& create_params,
    BaseRegistry::Handle base, const std::vector<JsonValue>& entries) {
  KBREPAIR_CHECK(static_cast<bool>(base));
  KBREPAIR_ASSIGN_OR_RETURN(InquiryOptions options,
                            InquiryOptionsFromParams(create_params));
  const std::shared_ptr<const SharedKbSnapshot>& snapshot = base.snapshot();
  std::unique_ptr<RepairSession> session(
      new RepairSession(std::move(id), snapshot->label, snapshot->Fork(),
                        options, create_params));
  session->base_ = std::move(base);
  KBREPAIR_RETURN_IF_ERROR(
      session->engine_->BeginShared(session->base_.snapshot()->Seed()));
  KBREPAIR_RETURN_IF_ERROR(ReplayWalEntries(session.get(), entries));
  return session;
}

Status RepairSession::ReplayWalEntries(RepairSession* session,
                                       const std::vector<JsonValue>& entries) {
  // Replay the WAL's answer records through the restarted engine,
  // validating each recorded fix against the question the engine
  // regenerates. The match is done on the wire JSON directly (see
  // MatchRecordedFixJson) so replay never mutates the symbol table.
  for (size_t n = 0; n < entries.size(); ++n) {
    const JsonValue& record = entries[n];
    const JsonValue& fixes_json = record.Get("question").Get("fixes");
    if (!record.Get("chosen").is_number() || !fixes_json.is_array()) {
      return Status::InvalidArgument(
          "WAL answer record " + std::to_string(n) +
          " needs 'chosen' and 'question.fixes'");
    }
    const size_t chosen = static_cast<size_t>(record.Get("chosen").AsInt(0));
    if (chosen >= fixes_json.size()) {
      return Status::InvalidArgument(
          "WAL answer record " + std::to_string(n) +
          " chose a fix index out of range");
    }
    // An append whose write landed but whose fsync failed leaves a
    // *ghost* record: the command was rejected (never executed), the
    // client retried it verbatim, and the retry appended the identical
    // line again. A ghost is therefore an exact duplicate of its
    // predecessor that the regenerated dialogue has no question for —
    // skip it. A legitimately repeated identical answer still matches
    // the next regenerated question and replays normally.
    const bool duplicate_of_previous =
        n > 0 && record.Dump() == entries[n - 1].Dump();
    KBREPAIR_ASSIGN_OR_RETURN(const Question* question,
                              session->engine_->NextQuestion());
    if (question == nullptr) {
      if (duplicate_of_previous) continue;
      return Status::Internal(
          "WAL replay diverged: dialogue reached consistency with " +
          std::to_string(entries.size() - n) + " recorded answer(s) left");
    }
    const std::optional<size_t> choice =
        MatchRecordedFixJson(fixes_json.at(chosen), *question,
                             session->engine_->View(), session->kb_.symbols());
    if (!choice.has_value()) {
      if (duplicate_of_previous) continue;
      return Status::Internal(
          "WAL replay diverged at answer " + std::to_string(n) +
          ": recorded fix not offered by the regenerated question");
    }
    const Question regenerated = *question;
    KBREPAIR_RETURN_IF_ERROR(session->engine_->Answer(*choice));
    session->transcript_.Record(regenerated, *choice);
  }
  return Status::Ok();
}

void RepairSession::AttachWal(std::unique_ptr<SessionWal> wal,
                              size_t compact_every) {
  wal_ = std::move(wal);
  if (compact_every > 0) wal_compact_every_ = compact_every;
}

void RepairSession::ArmDeadline(int64_t budget_ms) {
  if (budget_ms > 0) cancel_->ArmDeadline(budget_ms);
}

void RepairSession::DisarmDeadline() { cancel_->Disarm(); }

void RepairSession::ReportEngineFallbacks(size_t total_fallbacks,
                                          ServiceMetrics* metrics) {
  if (total_fallbacks <= reported_fallbacks_) return;
  if (metrics != nullptr) {
    metrics->engine_fallbacks.fetch_add(total_fallbacks - reported_fallbacks_,
                                        std::memory_order_relaxed);
    // Readiness signal: a demotion means the incremental latency bound
    // regressed to the scratch engine's; /readyz degrades for the
    // hold-down window.
    metrics->last_engine_demotion_ns.store(MonotonicNowNs(),
                                           std::memory_order_relaxed);
  }
  logging::Warn("session", "incremental engine demoted to scratch")
      .With("session", id_)
      .With("fallbacks", total_fallbacks - reported_fallbacks_);
  reported_fallbacks_ = total_fallbacks;
}

size_t RepairSession::strategy_label() const {
  return static_cast<size_t>(options_.strategy);
}

size_t RepairSession::engine_label() const {
  return engine_->active_engine() == ConflictEngineKind::kIncremental ? 1 : 0;
}

void RepairSession::RecordOpened(ServiceMetrics* metrics) const {
  if (metrics == nullptr) return;
  metrics->ForLabels(strategy_label(), engine_label())
      .sessions.fetch_add(1, std::memory_order_relaxed);
}

void RepairSession::ObservePhases(ServiceMetrics* metrics,
                                  const trace::PhaseTotals& delta) const {
  if (metrics == nullptr) return;
  LabeledMetrics& labeled =
      metrics->ForLabels(strategy_label(), engine_label());
  for (size_t p = 0; p < trace::kNumPhases; ++p) {
    if (delta.seconds[p] > 0.0) labeled.phases[p].Observe(delta.seconds[p]);
  }
}

StatusOr<JsonValue> RepairSession::Ask(ServiceMetrics* metrics) {
  trace::ScopedSpan span("session.ask");
  // `step` is the 1-based question index the command works on; per
  // session it is non-decreasing, which kbrepair-client --trace-dir
  // validation checks.
  if (span.recording()) {
    span.Annotate("session=" + id_ + " step=" +
                  std::to_string(engine_->progress().records.size() + 1));
  }
  ScopedPhaseAttribution attribution(*this, metrics);
  KBREPAIR_ASSIGN_OR_RETURN(const Question* question,
                            engine_->NextQuestion());
  ReportEngineFallbacks(engine_->progress().engine_fallbacks, metrics);
  JsonValue out = JsonValue::Object();
  out.Set("session", JsonValue::String(id_));
  const size_t answered = engine_->progress().records.size();
  if (question == nullptr) {
    out.Set("done", JsonValue::Bool(true));
    out.Set("questions", JsonValue::Number(static_cast<int64_t>(answered)));
    return out;
  }
  if (!question_outstanding_) {
    question_outstanding_ = true;
    if (metrics != nullptr) {
      metrics->questions_served.fetch_add(1, std::memory_order_relaxed);
      metrics->ForLabels(strategy_label(), engine_label())
          .questions.fetch_add(1, std::memory_order_relaxed);
    }
  }
  out.Set("done", JsonValue::Bool(false));
  out.Set("turn", JsonValue::Number(static_cast<int64_t>(answered + 1)));
  out.Set("question", QuestionToWireJson(*question, engine_->View()));
  return out;
}

StatusOr<JsonValue> RepairSession::Answer(const JsonValue& params,
                                          ServiceMetrics* metrics) {
  trace::ScopedSpan span("session.answer");
  if (span.recording()) {
    span.Annotate("session=" + id_ + " step=" +
                  std::to_string(engine_->progress().records.size() + 1));
  }
  ScopedPhaseAttribution attribution(*this, metrics);
  if (!params.Get("choice").is_number() ||
      params.Get("choice").AsInt() < 0) {
    return Status::InvalidArgument(
        "answer needs a non-negative numeric 'choice'");
  }
  const size_t choice = static_cast<size_t>(params.Get("choice").AsInt());
  KBREPAIR_ASSIGN_OR_RETURN(const Question* question,
                            engine_->NextQuestion());
  if (question == nullptr) {
    return Status::FailedPrecondition("session is already consistent");
  }
  if (choice >= question->fixes.size()) {
    return Status::InvalidArgument(
        "choice " + std::to_string(choice) + " out of range (question has " +
        std::to_string(question->fixes.size()) + " fixes)");
  }
  // Copy before Answer() invalidates the pending question.
  const Question recorded = *question;

  // WAL-before-execute: the accepted answer is durable before it takes
  // effect. On append failure the command is *rejected* — the engine was
  // not touched, so the client can safely retry.
  if (wal_ != nullptr) {
    const JsonValue record = SessionWal::AnswerRecord(
        SessionTranscript::EntryToJson(TranscriptEntry{recorded, choice},
                                       kb_.symbols()));
    bool fsync_failed = false;
    bool disk_full = false;
    const Status appended = wal_->Append(record, &fsync_failed, &disk_full);
    if (!appended.ok()) {
      if (metrics != nullptr) {
        if (fsync_failed) {
          metrics->wal_fsync_failures.fetch_add(1, std::memory_order_relaxed);
          metrics->last_wal_fsync_failure_ns.store(MonotonicNowNs(),
                                                   std::memory_order_relaxed);
        }
        if (disk_full) {
          metrics->wal_disk_full_failures.fetch_add(1,
                                                    std::memory_order_relaxed);
          metrics->last_wal_disk_full_ns.store(MonotonicNowNs(),
                                               std::memory_order_relaxed);
        }
        metrics->rejected_commands.fetch_add(1, std::memory_order_relaxed);
      }
      logging::Warn("session", "answer rejected: WAL append failed")
          .With("session", id_)
          .With("error", appended.message());
      // Disk-full is a resource condition, not transient flakiness: the
      // owning shard is about to flip degraded, so hand the client the
      // code that tells it to back off harder.
      if (disk_full) {
        return Status::ResourceExhausted("WAL disk full: " +
                                         appended.message());
      }
      return appended;
    }
    if (metrics != nullptr) {
      metrics->wal_appends.fetch_add(1, std::memory_order_relaxed);
    }
  }

  KBREPAIR_RETURN_IF_ERROR(engine_->Answer(choice));
  transcript_.Record(recorded, choice);
  question_outstanding_ = false;
  ReportEngineFallbacks(engine_->progress().engine_fallbacks, metrics);

  if (wal_ != nullptr &&
      wal_->appends_since_compaction() >= wal_compact_every_) {
    std::vector<JsonValue> entry_records;
    entry_records.reserve(transcript_.size());
    for (const TranscriptEntry& entry : transcript_.entries()) {
      entry_records.push_back(
          SessionTranscript::EntryToJson(entry, kb_.symbols()));
    }
    const Status compacted = wal_->Compact(create_params_, entry_records);
    if (compacted.ok()) {
      if (metrics != nullptr) {
        metrics->wal_compactions.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      // The pre-compaction log is still intact and replayable; keep
      // serving and try again after the next answer.
      logging::Warn("session", "WAL compaction failed")
          .With("session", id_)
          .With("error", compacted.message());
    }
  }

  const QuestionRecord& record = engine_->progress().records.back();
  if (metrics != nullptr) {
    metrics->answers_applied.fetch_add(1, std::memory_order_relaxed);
    metrics->turn_delay.Observe(record.delay_seconds);
    LabeledMetrics& labeled =
        metrics->ForLabels(strategy_label(), engine_label());
    labeled.answers.fetch_add(1, std::memory_order_relaxed);
    labeled.turn_delay.Observe(record.delay_seconds);
  }
  JsonValue out = JsonValue::Object();
  out.Set("session", JsonValue::String(id_));
  out.Set("applied", JsonValue::Bool(true));
  out.Set("turn", JsonValue::Number(static_cast<int64_t>(
                      engine_->progress().records.size())));
  out.Set("phase", JsonValue::Number(static_cast<int64_t>(record.phase)));
  out.Set("conflicts_remaining",
          JsonValue::Number(static_cast<int64_t>(record.conflicts_remaining)));
  return out;
}

JsonValue RepairSession::StatusInfo() const {
  JsonValue out = JsonValue::Object();
  out.Set("session", JsonValue::String(id_));
  out.Set("kb", JsonValue::String(kb_label_));
  if (base_) out.Set("base", JsonValue::String(base_.name()));
  out.Set("strategy", JsonValue::String(StrategyName(options_.strategy)));
  out.Set("engine",
          JsonValue::String(ConflictEngineName(options_.conflict_engine)));
  // Graceful degradation is visible: after a fallback the active engine
  // differs from the requested one.
  out.Set("engine_active",
          JsonValue::String(ConflictEngineName(engine_->active_engine())));
  out.Set("engine_degraded",
          JsonValue::Bool(engine_->active_engine() !=
                          options_.conflict_engine));
  out.Set("seed", JsonValue::Number(static_cast<int64_t>(options_.seed)));
  const char* state = "active";
  if (closed_) {
    state = "closed";
  } else if (engine_->finished()) {
    state = "consistent";
  } else if (question_outstanding_) {
    state = "awaiting_answer";
  }
  out.Set("state", JsonValue::String(state));
  out.Set("questions", JsonValue::Number(static_cast<int64_t>(
                           engine_->started()
                               ? engine_->progress().records.size()
                               : transcript_.size())));
  if (engine_->started()) {
    out.Set("facts", JsonValue::Number(static_cast<int64_t>(
                         engine_->working_facts().size())));
    out.Set("initial_conflicts",
            JsonValue::Number(static_cast<int64_t>(
                engine_->progress().initial_conflicts)));
  }
  return out;
}

StatusOr<JsonValue> RepairSession::Snapshot() const {
  if (!engine_->started()) {
    return Status::FailedPrecondition("session is closed");
  }
  JsonValue out = JsonValue::Object();
  out.Set("session", JsonValue::String(id_));
  out.Set("consistent", JsonValue::Bool(engine_->finished()));
  out.Set("questions", JsonValue::Number(static_cast<int64_t>(
                           engine_->progress().records.size())));
  out.Set("transcript", transcript_.ToJson(kb_.symbols()));
  out.Set("facts", FactsToJson(engine_->working_facts(), kb_.symbols()));
  return out;
}

StatusOr<JsonValue> RepairSession::Close(const JsonValue& params,
                                         ServiceMetrics* metrics,
                                         bool wal_degraded) {
  trace::ScopedSpan span("session.close");
  if (span.recording()) span.Annotate("session=" + id_);
  ScopedPhaseAttribution attribution(*this, metrics);
  if (closed_) {
    return Status::FailedPrecondition("session is already closed");
  }
  // Log the close before executing it; if the daemon dies in between,
  // recovery sees the close record and discards the WAL instead of
  // resurrecting a session the client was told nothing about. In
  // disk-degraded mode the append is skipped outright: close must keep
  // working on a full disk (Remove() below is what frees space), at the
  // cost of the resurrection window documented on Close() in the header.
  if (wal_ != nullptr && !wal_degraded) {
    bool fsync_failed = false;
    bool disk_full = false;
    const Status appended = wal_->Append(SessionWal::CloseRecord(),
                                         &fsync_failed, &disk_full);
    if (!appended.ok()) {
      if (metrics != nullptr) {
        if (fsync_failed) {
          metrics->wal_fsync_failures.fetch_add(1, std::memory_order_relaxed);
          metrics->last_wal_fsync_failure_ns.store(MonotonicNowNs(),
                                                   std::memory_order_relaxed);
        }
        if (disk_full) {
          metrics->wal_disk_full_failures.fetch_add(1,
                                                    std::memory_order_relaxed);
          metrics->last_wal_disk_full_ns.store(MonotonicNowNs(),
                                               std::memory_order_relaxed);
        }
      }
      if (disk_full) {
        // First sign of a full disk on a close: fall through and serve
        // it degraded-style anyway. Rejecting would wedge the client —
        // closing sessions is exactly how disk space comes back.
        logging::Warn("session",
                      "close record hit a full disk; closing without it")
            .With("session", id_)
            .With("error", appended.message());
      } else {
        if (metrics != nullptr) {
          metrics->rejected_commands.fetch_add(1, std::memory_order_relaxed);
        }
        logging::Warn("session", "close rejected: WAL append failed")
            .With("session", id_)
            .With("error", appended.message());
        return appended;
      }
    } else {
      if (metrics != nullptr) {
        metrics->wal_appends.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  const bool consistent = engine_->finished();
  KBREPAIR_ASSIGN_OR_RETURN(InquiryResult result, engine_->Finish());
  closed_ = true;
  ReportEngineFallbacks(result.engine_fallbacks, metrics);
  // The session ended cleanly; there is nothing left to recover.
  if (wal_ != nullptr) {
    const Status removed = wal_->Remove();
    if (!removed.ok()) {
      logging::Warn("session", "WAL removal failed")
          .With("session", id_)
          .With("error", removed.message());
    }
    wal_.reset();
  }
  JsonValue out = JsonValue::Object();
  out.Set("session", JsonValue::String(id_));
  out.Set("closed", JsonValue::Bool(true));
  out.Set("consistent", JsonValue::Bool(consistent));
  out.Set("questions",
          JsonValue::Number(static_cast<int64_t>(result.num_questions())));
  out.Set("applied_fixes",
          JsonValue::Number(static_cast<int64_t>(result.applied_fixes.size())));
  out.Set("total_seconds", JsonValue::Number(result.total_seconds));
  out.Set("mean_delay_ms",
          JsonValue::Number(result.MeanDelaySeconds() * 1e3));
  if (params.Get("include_facts").AsBool(false)) {
    out.Set("facts", FactsToJson(result.facts, kb_.symbols()));
  }
  return out;
}

int64_t RepairSession::EstimateMemoryBytes() const {
  // Calibrated against heap profiles of synthetic sessions: an overlay
  // atom plus its provenance node lands near 128 bytes, a transcript
  // entry (question copy + fix strings) near 512, and each un-compacted
  // WAL record keeps a framed JSON line (~256 bytes) alive in the page
  // cache and replay cost. The fixed overhead covers the engine, symbol
  // table delta, and bookkeeping of an idle session.
  constexpr int64_t kSessionOverheadBytes = 16 * 1024;
  constexpr int64_t kBytesPerFact = 128;
  constexpr int64_t kBytesPerTranscriptEntry = 512;
  constexpr int64_t kBytesPerWalRecord = 256;
  int64_t estimate = kSessionOverheadBytes;
  if (engine_ != nullptr && engine_->started()) {
    estimate += static_cast<int64_t>(engine_->working_facts().size()) *
                kBytesPerFact;
  }
  estimate +=
      static_cast<int64_t>(transcript_.size()) * kBytesPerTranscriptEntry;
  if (wal_ != nullptr) {
    estimate += static_cast<int64_t>(wal_->appends_since_compaction()) *
                kBytesPerWalRecord;
  }
  return estimate;
}

JsonValue RepairSession::TranscriptJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("session", JsonValue::String(id_));
  out.Set("kb", JsonValue::String(kb_label_));
  out.Set("strategy", JsonValue::String(StrategyName(options_.strategy)));
  out.Set("seed", JsonValue::Number(static_cast<int64_t>(options_.seed)));
  out.Set("transcript", transcript_.ToJson(kb_.symbols()));
  return out;
}

}  // namespace kbrepair
