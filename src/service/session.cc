#include "service/session.h"

#include <utility>

#include "gen/durum_wheat.h"
#include "gen/synthetic.h"
#include "parser/dlgp_parser.h"

namespace kbrepair {

namespace {

StatusOr<Strategy> StrategyFromName(const std::string& name) {
  if (name == "random") return Strategy::kRandom;
  if (name == "opti-join") return Strategy::kOptiJoin;
  if (name == "opti-prop") return Strategy::kOptiProp;
  if (name == "opti-mcd") return Strategy::kOptiMcd;
  if (name == "opti-learn") return Strategy::kOptiLearn;
  return Status::InvalidArgument("unknown strategy '" + name + "'");
}

StatusOr<ConflictEngineKind> ConflictEngineFromName(const std::string& name) {
  if (name == "scratch") return ConflictEngineKind::kScratch;
  if (name == "incremental") return ConflictEngineKind::kIncremental;
  return Status::InvalidArgument("unknown engine '" + name +
                                 "' (expected 'scratch' or 'incremental')");
}

JsonValue FactsToJson(const FactBase& facts, const SymbolTable& symbols) {
  JsonValue out = JsonValue::Array();
  for (AtomId id = 0; id < facts.size(); ++id) {
    out.Append(JsonValue::String(facts.atom(id).ToString(symbols)));
  }
  return out;
}

}  // namespace

StatusOr<KnowledgeBase> BuildKbFromParams(const JsonValue& params,
                                          std::string* label) {
  if (params.Get("kb_dlgp").is_string()) {
    KBREPAIR_ASSIGN_OR_RETURN(
        KnowledgeBase kb, ParseDlgp(params.Get("kb_dlgp").AsString()));
    KBREPAIR_RETURN_IF_ERROR(kb.Validate());
    *label = "dlgp";
    return kb;
  }
  const std::string name = params.Get("kb").AsString();
  if (name == "durum_wheat_v1" || name == "durum_wheat_v2") {
    DurumWheatOptions options;
    options.version = name == "durum_wheat_v1" ? DurumWheatVersion::kV1
                                               : DurumWheatVersion::kV2;
    if (params.Get("kb_seed").is_number()) {
      options.seed = static_cast<uint64_t>(params.Get("kb_seed").AsInt());
    }
    KBREPAIR_ASSIGN_OR_RETURN(DurumWheatKb durum,
                              GenerateDurumWheatKb(options));
    *label = name;
    return std::move(durum.kb);
  }
  if (name == "synthetic") {
    SyntheticKbOptions options;
    // Service defaults favour fast interactive sessions; callers scale
    // up explicitly.
    options.num_facts = 60;
    options.num_cdds = 6;
    options.inconsistency_ratio = 0.3;
    if (params.Get("kb_seed").is_number()) {
      options.seed = static_cast<uint64_t>(params.Get("kb_seed").AsInt());
    }
    if (params.Get("num_facts").is_number()) {
      options.num_facts =
          static_cast<size_t>(params.Get("num_facts").AsInt());
    }
    if (params.Get("num_cdds").is_number()) {
      options.num_cdds = static_cast<size_t>(params.Get("num_cdds").AsInt());
    }
    if (params.Get("inconsistency_ratio").is_number()) {
      options.inconsistency_ratio =
          params.Get("inconsistency_ratio").AsDouble();
    }
    KBREPAIR_ASSIGN_OR_RETURN(SyntheticKb synthetic,
                              GenerateSyntheticKb(options));
    *label = "synthetic";
    return std::move(synthetic.kb);
  }
  if (name.empty()) {
    return Status::InvalidArgument(
        "create needs a 'kb' name or inline 'kb_dlgp' text");
  }
  return Status::InvalidArgument("unknown kb '" + name + "'");
}

StatusOr<InquiryOptions> InquiryOptionsFromParams(const JsonValue& params) {
  InquiryOptions options;
  if (params.Get("strategy").is_string()) {
    KBREPAIR_ASSIGN_OR_RETURN(
        options.strategy, StrategyFromName(params.Get("strategy").AsString()));
  }
  if (params.Get("seed").is_number()) {
    options.seed = static_cast<uint64_t>(params.Get("seed").AsInt());
  }
  if (params.Get("two_phase").is_bool()) {
    options.two_phase = params.Get("two_phase").AsBool();
  }
  if (params.Get("max_questions").is_number()) {
    options.max_questions =
        static_cast<size_t>(params.Get("max_questions").AsInt());
  }
  if (params.Get("engine").is_string()) {
    KBREPAIR_ASSIGN_OR_RETURN(
        options.conflict_engine,
        ConflictEngineFromName(params.Get("engine").AsString()));
  }
  return options;
}

RepairSession::RepairSession(std::string id, std::string kb_label,
                             KnowledgeBase kb, InquiryOptions options)
    : id_(std::move(id)),
      kb_label_(std::move(kb_label)),
      kb_(std::move(kb)),
      options_(options),
      engine_(std::make_unique<InquiryEngine>(&kb_, options_)) {}

StatusOr<std::unique_ptr<RepairSession>> RepairSession::Create(
    std::string id, const JsonValue& params) {
  std::string label;
  KBREPAIR_ASSIGN_OR_RETURN(KnowledgeBase kb,
                            BuildKbFromParams(params, &label));
  KBREPAIR_ASSIGN_OR_RETURN(InquiryOptions options,
                            InquiryOptionsFromParams(params));
  std::unique_ptr<RepairSession> session(new RepairSession(
      std::move(id), std::move(label), std::move(kb), options));
  KBREPAIR_RETURN_IF_ERROR(session->engine_->Begin());
  return session;
}

StatusOr<JsonValue> RepairSession::Ask(ServiceMetrics* metrics) {
  KBREPAIR_ASSIGN_OR_RETURN(const Question* question,
                            engine_->NextQuestion());
  JsonValue out = JsonValue::Object();
  out.Set("session", JsonValue::String(id_));
  const size_t answered = engine_->progress().records.size();
  if (question == nullptr) {
    out.Set("done", JsonValue::Bool(true));
    out.Set("questions", JsonValue::Number(static_cast<int64_t>(answered)));
    return out;
  }
  if (!question_outstanding_) {
    question_outstanding_ = true;
    if (metrics != nullptr) {
      metrics->questions_served.fetch_add(1, std::memory_order_relaxed);
    }
  }
  out.Set("done", JsonValue::Bool(false));
  out.Set("turn", JsonValue::Number(static_cast<int64_t>(answered + 1)));
  out.Set("question", QuestionToWireJson(*question, engine_->View()));
  return out;
}

StatusOr<JsonValue> RepairSession::Answer(const JsonValue& params,
                                          ServiceMetrics* metrics) {
  if (!params.Get("choice").is_number() ||
      params.Get("choice").AsInt() < 0) {
    return Status::InvalidArgument(
        "answer needs a non-negative numeric 'choice'");
  }
  const size_t choice = static_cast<size_t>(params.Get("choice").AsInt());
  KBREPAIR_ASSIGN_OR_RETURN(const Question* question,
                            engine_->NextQuestion());
  if (question == nullptr) {
    return Status::FailedPrecondition("session is already consistent");
  }
  if (choice >= question->fixes.size()) {
    return Status::InvalidArgument(
        "choice " + std::to_string(choice) + " out of range (question has " +
        std::to_string(question->fixes.size()) + " fixes)");
  }
  // Copy before Answer() invalidates the pending question.
  const Question recorded = *question;
  KBREPAIR_RETURN_IF_ERROR(engine_->Answer(choice));
  transcript_.Record(recorded, choice);
  question_outstanding_ = false;

  const QuestionRecord& record = engine_->progress().records.back();
  if (metrics != nullptr) {
    metrics->answers_applied.fetch_add(1, std::memory_order_relaxed);
    metrics->turn_delay.Observe(record.delay_seconds);
  }
  JsonValue out = JsonValue::Object();
  out.Set("session", JsonValue::String(id_));
  out.Set("applied", JsonValue::Bool(true));
  out.Set("turn", JsonValue::Number(static_cast<int64_t>(
                      engine_->progress().records.size())));
  out.Set("phase", JsonValue::Number(static_cast<int64_t>(record.phase)));
  out.Set("conflicts_remaining",
          JsonValue::Number(static_cast<int64_t>(record.conflicts_remaining)));
  return out;
}

JsonValue RepairSession::StatusInfo() const {
  JsonValue out = JsonValue::Object();
  out.Set("session", JsonValue::String(id_));
  out.Set("kb", JsonValue::String(kb_label_));
  out.Set("strategy", JsonValue::String(StrategyName(options_.strategy)));
  out.Set("engine",
          JsonValue::String(ConflictEngineName(options_.conflict_engine)));
  out.Set("seed", JsonValue::Number(static_cast<int64_t>(options_.seed)));
  const char* state = "active";
  if (closed_) {
    state = "closed";
  } else if (engine_->finished()) {
    state = "consistent";
  } else if (question_outstanding_) {
    state = "awaiting_answer";
  }
  out.Set("state", JsonValue::String(state));
  out.Set("questions", JsonValue::Number(static_cast<int64_t>(
                           engine_->started()
                               ? engine_->progress().records.size()
                               : transcript_.size())));
  if (engine_->started()) {
    out.Set("facts", JsonValue::Number(static_cast<int64_t>(
                         engine_->working_facts().size())));
    out.Set("initial_conflicts",
            JsonValue::Number(static_cast<int64_t>(
                engine_->progress().initial_conflicts)));
  }
  return out;
}

StatusOr<JsonValue> RepairSession::Snapshot() const {
  if (!engine_->started()) {
    return Status::FailedPrecondition("session is closed");
  }
  JsonValue out = JsonValue::Object();
  out.Set("session", JsonValue::String(id_));
  out.Set("consistent", JsonValue::Bool(engine_->finished()));
  out.Set("questions", JsonValue::Number(static_cast<int64_t>(
                           engine_->progress().records.size())));
  out.Set("transcript", transcript_.ToJson(kb_.symbols()));
  out.Set("facts", FactsToJson(engine_->working_facts(), kb_.symbols()));
  return out;
}

StatusOr<JsonValue> RepairSession::Close(const JsonValue& params,
                                         ServiceMetrics* metrics) {
  if (closed_) {
    return Status::FailedPrecondition("session is already closed");
  }
  const bool consistent = engine_->finished();
  KBREPAIR_ASSIGN_OR_RETURN(InquiryResult result, engine_->Finish());
  closed_ = true;
  (void)metrics;
  JsonValue out = JsonValue::Object();
  out.Set("session", JsonValue::String(id_));
  out.Set("closed", JsonValue::Bool(true));
  out.Set("consistent", JsonValue::Bool(consistent));
  out.Set("questions",
          JsonValue::Number(static_cast<int64_t>(result.num_questions())));
  out.Set("applied_fixes",
          JsonValue::Number(static_cast<int64_t>(result.applied_fixes.size())));
  out.Set("total_seconds", JsonValue::Number(result.total_seconds));
  out.Set("mean_delay_ms",
          JsonValue::Number(result.MeanDelaySeconds() * 1e3));
  if (params.Get("include_facts").AsBool(false)) {
    out.Set("facts", FactsToJson(result.facts, kb_.symbols()));
  }
  return out;
}

JsonValue RepairSession::TranscriptJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("session", JsonValue::String(id_));
  out.Set("kb", JsonValue::String(kb_label_));
  out.Set("strategy", JsonValue::String(StrategyName(options_.strategy)));
  out.Set("seed", JsonValue::Number(static_cast<int64_t>(options_.seed)));
  out.Set("transcript", transcript_.ToJson(kb_.symbols()));
  return out;
}

}  // namespace kbrepair
