#include "service/metrics.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace kbrepair {

size_t LatencyHistogram::BucketForMicros(uint64_t micros) {
  size_t bucket = 0;
  while ((uint64_t{1} << (bucket + 1)) <= micros &&
         bucket + 1 < kNumBuckets) {
    ++bucket;
  }
  return bucket;
}

void LatencyHistogram::Observe(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  // Round to the nearest microsecond: truncation biased sum_micros_
  // (and so the mean) low by half a microsecond per observation, which
  // is material for the sub-microsecond deltas the phase histograms see.
  const uint64_t micros = static_cast<uint64_t>(std::llround(seconds * 1e6));
  buckets_[BucketForMicros(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  uint64_t seen = max_micros_.load(std::memory_order_relaxed);
  while (micros > seen &&
         !max_micros_.compare_exchange_weak(seen, micros,
                                            std::memory_order_relaxed)) {
  }
  seen = min_micros_.load(std::memory_order_relaxed);
  while (micros < seen &&
         !min_micros_.compare_exchange_weak(seen, micros,
                                            std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::MeanSeconds() const {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  return static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) /
         static_cast<double>(n) / 1e6;
}

double LatencyHistogram::QuantileSeconds(double q) const {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  if (q <= 0.0) return MinSeconds();
  if (q >= 1.0) return MaxSeconds();
  // Rank of the q-th sample, at least 1: with target 0 the very first
  // (possibly empty) bucket would satisfy `seen >= target` and q→0
  // would report ~2 µs regardless of the data.
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(n))));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) {
      // The bucket only brackets the sample: its upper bound can exceed
      // the largest observation (the old p95 > max bug) and its lower
      // bound can undershoot the smallest. Clamp into the observed
      // range so quantiles are monotone and never contradict min/max.
      const double upper = static_cast<double>(uint64_t{1} << (i + 1)) / 1e6;
      return std::min(std::max(upper, MinSeconds()), MaxSeconds());
    }
  }
  return MaxSeconds();
}

double LatencyHistogram::MinSeconds() const {
  const uint64_t micros = min_micros_.load(std::memory_order_relaxed);
  if (micros == UINT64_MAX) return 0.0;  // no observations yet
  return static_cast<double>(micros) / 1e6;
}

double LatencyHistogram::MaxSeconds() const {
  return static_cast<double>(max_micros_.load(std::memory_order_relaxed)) /
         1e6;
}

std::array<uint64_t, LatencyHistogram::kNumBuckets>
LatencyHistogram::BucketCounts() const {
  std::array<uint64_t, kNumBuckets> counts{};
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

JsonValue LatencyHistogram::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("count", JsonValue::Number(count()));
  out.Set("mean_ms", JsonValue::Number(MeanSeconds() * 1e3));
  out.Set("p50_ms", JsonValue::Number(QuantileSeconds(0.5) * 1e3));
  out.Set("p95_ms", JsonValue::Number(QuantileSeconds(0.95) * 1e3));
  out.Set("min_ms", JsonValue::Number(MinSeconds() * 1e3));
  out.Set("max_ms", JsonValue::Number(MaxSeconds() * 1e3));
  return out;
}

const char* StrategyLabelName(size_t index) {
  switch (index) {
    case 0: return "random";
    case 1: return "opti-join";
    case 2: return "opti-prop";
    case 3: return "opti-mcd";
    case 4: return "opti-learn";
  }
  return "unknown";
}

const char* EngineLabelName(size_t index) {
  switch (index) {
    case 0: return "scratch";
    case 1: return "incremental";
  }
  return "unknown";
}

bool LabeledMetrics::Touched() const {
  if (sessions.load(std::memory_order_relaxed) != 0) return true;
  if (questions.load(std::memory_order_relaxed) != 0) return true;
  if (answers.load(std::memory_order_relaxed) != 0) return true;
  return turn_delay.count() != 0;
}

JsonValue LabeledMetrics::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("sessions",
          JsonValue::Number(sessions.load(std::memory_order_relaxed)));
  out.Set("questions",
          JsonValue::Number(questions.load(std::memory_order_relaxed)));
  out.Set("answers",
          JsonValue::Number(answers.load(std::memory_order_relaxed)));
  out.Set("turn_delay", turn_delay.ToJson());
  for (size_t p = 0; p < trace::kNumPhases; ++p) {
    if (phases[p].count() == 0) continue;
    out.Set(std::string("phase_") +
                trace::PhaseName(static_cast<trace::Phase>(p)),
            phases[p].ToJson());
  }
  return out;
}

JsonValue ServiceMetrics::ToJson() const {
  JsonValue sessions = JsonValue::Object();
  sessions.Set("opened",
               JsonValue::Number(sessions_opened.load(std::memory_order_relaxed)));
  sessions.Set("completed",
               JsonValue::Number(sessions_completed.load(std::memory_order_relaxed)));
  sessions.Set("evicted",
               JsonValue::Number(sessions_evicted.load(std::memory_order_relaxed)));
  sessions.Set("failed",
               JsonValue::Number(sessions_failed.load(std::memory_order_relaxed)));
  sessions.Set("active",
               JsonValue::Number(sessions_active.load(std::memory_order_relaxed)));

  JsonValue traffic = JsonValue::Object();
  traffic.Set("questions_served",
              JsonValue::Number(questions_served.load(std::memory_order_relaxed)));
  traffic.Set("answers_applied",
              JsonValue::Number(answers_applied.load(std::memory_order_relaxed)));
  traffic.Set("requests_total",
              JsonValue::Number(requests_total.load(std::memory_order_relaxed)));
  traffic.Set("errors_total",
              JsonValue::Number(errors_total.load(std::memory_order_relaxed)));
  traffic.Set("rejected_overload",
              JsonValue::Number(rejected_overload.load(std::memory_order_relaxed)));
  traffic.Set("rejected_commands",
              JsonValue::Number(rejected_commands.load(std::memory_order_relaxed)));
  traffic.Set("deadline_exceeded",
              JsonValue::Number(deadline_exceeded.load(std::memory_order_relaxed)));

  JsonValue durability = JsonValue::Object();
  durability.Set("wal_appends",
                 JsonValue::Number(wal_appends.load(std::memory_order_relaxed)));
  durability.Set("wal_fsync_failures",
                 JsonValue::Number(wal_fsync_failures.load(std::memory_order_relaxed)));
  durability.Set("wal_compactions",
                 JsonValue::Number(wal_compactions.load(std::memory_order_relaxed)));
  durability.Set("transcript_write_failures",
                 JsonValue::Number(
                     transcript_write_failures.load(std::memory_order_relaxed)));
  durability.Set("sessions_recovered",
                 JsonValue::Number(sessions_recovered.load(std::memory_order_relaxed)));
  durability.Set("engine_fallbacks",
                 JsonValue::Number(engine_fallbacks.load(std::memory_order_relaxed)));
  durability.Set("worker_stalls",
                 JsonValue::Number(worker_stalls.load(std::memory_order_relaxed)));

  JsonValue by_strategy_engine = JsonValue::Object();
  for (size_t s = 0; s < kNumStrategyLabels; ++s) {
    for (size_t e = 0; e < kNumEngineLabels; ++e) {
      const LabeledMetrics& labeled = by_label[s][e];
      if (!labeled.Touched()) continue;
      by_strategy_engine.Set(std::string(StrategyLabelName(s)) + "/" +
                                 EngineLabelName(e),
                             labeled.ToJson());
    }
  }

  JsonValue out = JsonValue::Object();
  out.Set("sessions", std::move(sessions));
  out.Set("traffic", std::move(traffic));
  out.Set("durability", std::move(durability));
  out.Set("turn_delay", turn_delay.ToJson());
  out.Set("request_latency", request_latency.ToJson());
  out.Set("queue_wait", queue_wait.ToJson());
  out.Set("by_strategy_engine", std::move(by_strategy_engine));
  return out;
}

}  // namespace kbrepair
