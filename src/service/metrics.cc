#include "service/metrics.h"

#include <cmath>

namespace kbrepair {

namespace {

size_t BucketFor(uint64_t micros) {
  size_t bucket = 0;
  while ((uint64_t{1} << (bucket + 1)) <= micros &&
         bucket + 1 < 40) {
    ++bucket;
  }
  return bucket;
}

}  // namespace

void LatencyHistogram::Observe(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  const uint64_t micros = static_cast<uint64_t>(seconds * 1e6);
  buckets_[BucketFor(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  uint64_t seen = max_micros_.load(std::memory_order_relaxed);
  while (micros > seen &&
         !max_micros_.compare_exchange_weak(seen, micros,
                                            std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::MeanSeconds() const {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  return static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) /
         static_cast<double>(n) / 1e6;
}

double LatencyHistogram::QuantileSeconds(double q) const {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const uint64_t target =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(n)));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) {
      return static_cast<double>(uint64_t{1} << (i + 1)) / 1e6;
    }
  }
  return MaxSeconds();
}

double LatencyHistogram::MaxSeconds() const {
  return static_cast<double>(max_micros_.load(std::memory_order_relaxed)) /
         1e6;
}

JsonValue LatencyHistogram::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("count", JsonValue::Number(count()));
  out.Set("mean_ms", JsonValue::Number(MeanSeconds() * 1e3));
  out.Set("p50_ms", JsonValue::Number(QuantileSeconds(0.5) * 1e3));
  out.Set("p95_ms", JsonValue::Number(QuantileSeconds(0.95) * 1e3));
  out.Set("max_ms", JsonValue::Number(MaxSeconds() * 1e3));
  return out;
}

JsonValue ServiceMetrics::ToJson() const {
  JsonValue sessions = JsonValue::Object();
  sessions.Set("opened",
               JsonValue::Number(sessions_opened.load(std::memory_order_relaxed)));
  sessions.Set("completed",
               JsonValue::Number(sessions_completed.load(std::memory_order_relaxed)));
  sessions.Set("evicted",
               JsonValue::Number(sessions_evicted.load(std::memory_order_relaxed)));
  sessions.Set("failed",
               JsonValue::Number(sessions_failed.load(std::memory_order_relaxed)));
  sessions.Set("active",
               JsonValue::Number(sessions_active.load(std::memory_order_relaxed)));

  JsonValue traffic = JsonValue::Object();
  traffic.Set("questions_served",
              JsonValue::Number(questions_served.load(std::memory_order_relaxed)));
  traffic.Set("answers_applied",
              JsonValue::Number(answers_applied.load(std::memory_order_relaxed)));
  traffic.Set("requests_total",
              JsonValue::Number(requests_total.load(std::memory_order_relaxed)));
  traffic.Set("errors_total",
              JsonValue::Number(errors_total.load(std::memory_order_relaxed)));
  traffic.Set("rejected_overload",
              JsonValue::Number(rejected_overload.load(std::memory_order_relaxed)));
  traffic.Set("rejected_commands",
              JsonValue::Number(rejected_commands.load(std::memory_order_relaxed)));
  traffic.Set("deadline_exceeded",
              JsonValue::Number(deadline_exceeded.load(std::memory_order_relaxed)));

  JsonValue durability = JsonValue::Object();
  durability.Set("wal_appends",
                 JsonValue::Number(wal_appends.load(std::memory_order_relaxed)));
  durability.Set("wal_fsync_failures",
                 JsonValue::Number(wal_fsync_failures.load(std::memory_order_relaxed)));
  durability.Set("wal_compactions",
                 JsonValue::Number(wal_compactions.load(std::memory_order_relaxed)));
  durability.Set("transcript_write_failures",
                 JsonValue::Number(
                     transcript_write_failures.load(std::memory_order_relaxed)));
  durability.Set("sessions_recovered",
                 JsonValue::Number(sessions_recovered.load(std::memory_order_relaxed)));
  durability.Set("engine_fallbacks",
                 JsonValue::Number(engine_fallbacks.load(std::memory_order_relaxed)));
  durability.Set("worker_stalls",
                 JsonValue::Number(worker_stalls.load(std::memory_order_relaxed)));

  JsonValue out = JsonValue::Object();
  out.Set("sessions", std::move(sessions));
  out.Set("traffic", std::move(traffic));
  out.Set("durability", std::move(durability));
  out.Set("turn_delay", turn_delay.ToJson());
  out.Set("request_latency", request_latency.ToJson());
  return out;
}

}  // namespace kbrepair
