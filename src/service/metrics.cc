#include "service/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace kbrepair {

size_t LatencyHistogram::BucketForMicros(uint64_t micros) {
  size_t bucket = 0;
  while ((uint64_t{1} << (bucket + 1)) <= micros &&
         bucket + 1 < kNumBuckets) {
    ++bucket;
  }
  return bucket;
}

uint64_t LatencyHistogram::BucketUpperBoundMicros(size_t bucket) {
  if (bucket + 1 >= kNumBuckets) return UINT64_MAX;  // tail bucket
  return uint64_t{1} << (bucket + 1);
}

void LatencyHistogram::Observe(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  // Round to the nearest microsecond: truncation biased sum_micros_
  // (and so the mean) low by half a microsecond per observation, which
  // is material for the sub-microsecond deltas the phase histograms see.
  const uint64_t micros = static_cast<uint64_t>(std::llround(seconds * 1e6));
  buckets_[BucketForMicros(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  uint64_t seen = max_micros_.load(std::memory_order_relaxed);
  while (micros > seen &&
         !max_micros_.compare_exchange_weak(seen, micros,
                                            std::memory_order_relaxed)) {
  }
  seen = min_micros_.load(std::memory_order_relaxed);
  while (micros < seen &&
         !min_micros_.compare_exchange_weak(seen, micros,
                                            std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::MeanSeconds() const {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  return static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) /
         static_cast<double>(n) / 1e6;
}

double LatencyHistogram::QuantileSeconds(double q) const {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  if (q <= 0.0) return MinSeconds();
  if (q >= 1.0) return MaxSeconds();
  // Rank of the q-th sample, at least 1: with target 0 the very first
  // (possibly empty) bucket would satisfy `seen >= target` and q→0
  // would report ~2 µs regardless of the data.
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(n))));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) {
      // The bucket only brackets the sample: its upper bound can exceed
      // the largest observation (the old p95 > max bug) and its lower
      // bound can undershoot the smallest. Clamp into the observed
      // range so quantiles are monotone and never contradict min/max.
      const double upper = static_cast<double>(uint64_t{1} << (i + 1)) / 1e6;
      return std::min(std::max(upper, MinSeconds()), MaxSeconds());
    }
  }
  return MaxSeconds();
}

double LatencyHistogram::SumSeconds() const {
  return static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) /
         1e6;
}

double LatencyHistogram::MinSeconds() const {
  const uint64_t micros = min_micros_.load(std::memory_order_relaxed);
  if (micros == UINT64_MAX) return 0.0;  // no observations yet
  return static_cast<double>(micros) / 1e6;
}

double LatencyHistogram::MaxSeconds() const {
  return static_cast<double>(max_micros_.load(std::memory_order_relaxed)) /
         1e6;
}

std::array<uint64_t, LatencyHistogram::kNumBuckets>
LatencyHistogram::BucketCounts() const {
  std::array<uint64_t, kNumBuckets> counts{};
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::vector<LatencyHistogram::CumulativeBucket>
LatencyHistogram::CumulativeBuckets() const {
  const std::array<uint64_t, kNumBuckets> counts = BucketCounts();
  size_t last_nonzero = 0;
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    total += counts[i];
    if (counts[i] != 0) last_nonzero = i;
  }
  std::vector<CumulativeBucket> out;
  if (total == 0) {
    out.push_back(CumulativeBucket{0.0, true, 0});
    return out;
  }
  // Emit bounded buckets through the last non-empty one (trailing empty
  // buckets carry no information), then the +Inf bucket. The +Inf count
  // is the sum of THIS snapshot, not count_, so the cumulative series
  // is internally consistent even while observations race the read.
  uint64_t running = 0;
  for (size_t i = 0; i <= last_nonzero && i + 1 < kNumBuckets; ++i) {
    running += counts[i];
    out.push_back(CumulativeBucket{
        static_cast<double>(BucketUpperBoundMicros(i)) / 1e6, false,
        running});
  }
  out.push_back(CumulativeBucket{0.0, true, total});
  return out;
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_micros_.fetch_add(other.sum_micros_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  const uint64_t other_max = other.max_micros_.load(std::memory_order_relaxed);
  uint64_t seen = max_micros_.load(std::memory_order_relaxed);
  while (other_max > seen &&
         !max_micros_.compare_exchange_weak(seen, other_max,
                                            std::memory_order_relaxed)) {
  }
  const uint64_t other_min = other.min_micros_.load(std::memory_order_relaxed);
  seen = min_micros_.load(std::memory_order_relaxed);
  while (other_min < seen &&
         !min_micros_.compare_exchange_weak(seen, other_min,
                                            std::memory_order_relaxed)) {
  }
}

JsonValue LatencyHistogram::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("count", JsonValue::Number(count()));
  out.Set("mean_ms", JsonValue::Number(MeanSeconds() * 1e3));
  out.Set("p50_ms", JsonValue::Number(QuantileSeconds(0.5) * 1e3));
  out.Set("p95_ms", JsonValue::Number(QuantileSeconds(0.95) * 1e3));
  out.Set("min_ms", JsonValue::Number(MinSeconds() * 1e3));
  out.Set("max_ms", JsonValue::Number(MaxSeconds() * 1e3));
  JsonValue buckets = JsonValue::Array();
  for (const CumulativeBucket& bucket : CumulativeBuckets()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("le_ms", bucket.infinite
                           ? JsonValue::String("+Inf")
                           : JsonValue::Number(bucket.le_seconds * 1e3));
    entry.Set("count", JsonValue::Number(bucket.cumulative_count));
    buckets.Append(std::move(entry));
  }
  out.Set("buckets", std::move(buckets));
  return out;
}

const char* StrategyLabelName(size_t index) {
  switch (index) {
    case 0: return "random";
    case 1: return "opti-join";
    case 2: return "opti-prop";
    case 3: return "opti-mcd";
    case 4: return "opti-learn";
  }
  return "unknown";
}

const char* EngineLabelName(size_t index) {
  switch (index) {
    case 0: return "scratch";
    case 1: return "incremental";
  }
  return "unknown";
}

bool LabeledMetrics::Touched() const {
  if (sessions.load(std::memory_order_relaxed) != 0) return true;
  if (questions.load(std::memory_order_relaxed) != 0) return true;
  if (answers.load(std::memory_order_relaxed) != 0) return true;
  return turn_delay.count() != 0;
}

void LabeledMetrics::MergeFrom(const LabeledMetrics& other) {
  sessions.fetch_add(other.sessions.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  questions.fetch_add(other.questions.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  answers.fetch_add(other.answers.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  turn_delay.MergeFrom(other.turn_delay);
  for (size_t p = 0; p < trace::kNumPhases; ++p) {
    phases[p].MergeFrom(other.phases[p]);
  }
}

JsonValue LabeledMetrics::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("sessions",
          JsonValue::Number(sessions.load(std::memory_order_relaxed)));
  out.Set("questions",
          JsonValue::Number(questions.load(std::memory_order_relaxed)));
  out.Set("answers",
          JsonValue::Number(answers.load(std::memory_order_relaxed)));
  out.Set("turn_delay", turn_delay.ToJson());
  for (size_t p = 0; p < trace::kNumPhases; ++p) {
    if (phases[p].count() == 0) continue;
    out.Set(std::string("phase_") +
                trace::PhaseName(static_cast<trace::Phase>(p)),
            phases[p].ToJson());
  }
  return out;
}

JsonValue ServiceMetrics::ToJson() const {
  JsonValue sessions = JsonValue::Object();
  sessions.Set("opened",
               JsonValue::Number(sessions_opened.load(std::memory_order_relaxed)));
  sessions.Set("completed",
               JsonValue::Number(sessions_completed.load(std::memory_order_relaxed)));
  sessions.Set("evicted",
               JsonValue::Number(sessions_evicted.load(std::memory_order_relaxed)));
  sessions.Set("failed",
               JsonValue::Number(sessions_failed.load(std::memory_order_relaxed)));
  sessions.Set("active",
               JsonValue::Number(sessions_active.load(std::memory_order_relaxed)));

  JsonValue traffic = JsonValue::Object();
  traffic.Set("questions_served",
              JsonValue::Number(questions_served.load(std::memory_order_relaxed)));
  traffic.Set("answers_applied",
              JsonValue::Number(answers_applied.load(std::memory_order_relaxed)));
  traffic.Set("requests_total",
              JsonValue::Number(requests_total.load(std::memory_order_relaxed)));
  traffic.Set("errors_total",
              JsonValue::Number(errors_total.load(std::memory_order_relaxed)));
  traffic.Set("rejected_overload",
              JsonValue::Number(rejected_overload.load(std::memory_order_relaxed)));
  traffic.Set("rejected_commands",
              JsonValue::Number(rejected_commands.load(std::memory_order_relaxed)));
  traffic.Set("deadline_exceeded",
              JsonValue::Number(deadline_exceeded.load(std::memory_order_relaxed)));

  JsonValue durability = JsonValue::Object();
  durability.Set("wal_appends",
                 JsonValue::Number(wal_appends.load(std::memory_order_relaxed)));
  durability.Set("wal_fsync_failures",
                 JsonValue::Number(wal_fsync_failures.load(std::memory_order_relaxed)));
  durability.Set("wal_compactions",
                 JsonValue::Number(wal_compactions.load(std::memory_order_relaxed)));
  durability.Set("transcript_write_failures",
                 JsonValue::Number(
                     transcript_write_failures.load(std::memory_order_relaxed)));
  durability.Set("sessions_recovered",
                 JsonValue::Number(sessions_recovered.load(std::memory_order_relaxed)));
  durability.Set("engine_fallbacks",
                 JsonValue::Number(engine_fallbacks.load(std::memory_order_relaxed)));
  durability.Set("worker_stalls",
                 JsonValue::Number(worker_stalls.load(std::memory_order_relaxed)));
  durability.Set("wal_disk_full_failures",
                 JsonValue::Number(
                     wal_disk_full_failures.load(std::memory_order_relaxed)));
  durability.Set("rejected_degraded",
                 JsonValue::Number(rejected_degraded.load(std::memory_order_relaxed)));
  durability.Set("wal_degraded",
                 JsonValue::Number(wal_degraded.load(std::memory_order_relaxed)));

  JsonValue resources = JsonValue::Object();
  resources.Set("mem_estimated_bytes",
                JsonValue::Number(
                    mem_estimated_bytes.load(std::memory_order_relaxed)));
  resources.Set("mem_budget_bytes",
                JsonValue::Number(mem_budget_bytes.load(std::memory_order_relaxed)));
  resources.Set("mem_pressure",
                JsonValue::Number(mem_pressure.load(std::memory_order_relaxed)));
  resources.Set("rejected_pressure",
                JsonValue::Number(rejected_pressure.load(std::memory_order_relaxed)));
  resources.Set("pressure_evictions",
                JsonValue::Number(
                    pressure_evictions.load(std::memory_order_relaxed)));

  JsonValue bases = JsonValue::Object();
  bases.Set("registered",
            JsonValue::Number(bases_registered.load(std::memory_order_relaxed)));
  bases.Set("rss_bytes",
            JsonValue::Number(base_rss_bytes.load(std::memory_order_relaxed)));
  bases.Set("forks",
            JsonValue::Number(base_forks.load(std::memory_order_relaxed)));
  bases.Set("fork_latency", base_fork_latency.ToJson());

  JsonValue by_strategy_engine = JsonValue::Object();
  for (size_t s = 0; s < kNumStrategyLabels; ++s) {
    for (size_t e = 0; e < kNumEngineLabels; ++e) {
      const LabeledMetrics& labeled = by_label[s][e];
      if (!labeled.Touched()) continue;
      by_strategy_engine.Set(std::string(StrategyLabelName(s)) + "/" +
                                 EngineLabelName(e),
                             labeled.ToJson());
    }
  }

  JsonValue out = JsonValue::Object();
  out.Set("sessions", std::move(sessions));
  out.Set("traffic", std::move(traffic));
  out.Set("durability", std::move(durability));
  out.Set("resources", std::move(resources));
  out.Set("bases", std::move(bases));
  out.Set("turn_delay", turn_delay.ToJson());
  out.Set("request_latency", request_latency.ToJson());
  out.Set("queue_wait", queue_wait.ToJson());
  out.Set("by_strategy_engine", std::move(by_strategy_engine));
  return out;
}

void ServiceMetrics::MergeFrom(const ServiceMetrics& other) {
  const auto add = [](std::atomic<uint64_t>& into,
                      const std::atomic<uint64_t>& from) {
    into.fetch_add(from.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  };
  add(sessions_opened, other.sessions_opened);
  add(sessions_completed, other.sessions_completed);
  add(sessions_evicted, other.sessions_evicted);
  add(sessions_failed, other.sessions_failed);
  sessions_active.fetch_add(
      other.sessions_active.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  add(questions_served, other.questions_served);
  add(answers_applied, other.answers_applied);
  add(requests_total, other.requests_total);
  add(errors_total, other.errors_total);
  add(rejected_overload, other.rejected_overload);
  add(rejected_commands, other.rejected_commands);
  add(deadline_exceeded, other.deadline_exceeded);
  add(wal_appends, other.wal_appends);
  add(wal_fsync_failures, other.wal_fsync_failures);
  add(wal_compactions, other.wal_compactions);
  add(transcript_write_failures, other.transcript_write_failures);
  add(sessions_recovered, other.sessions_recovered);
  add(engine_fallbacks, other.engine_fallbacks);
  add(worker_stalls, other.worker_stalls);
  add(wal_disk_full_failures, other.wal_disk_full_failures);
  add(rejected_degraded, other.rejected_degraded);
  add(rejected_pressure, other.rejected_pressure);
  add(pressure_evictions, other.pressure_evictions);
  // Per-shard 0/1 flag: the aggregate counts degraded shards.
  wal_degraded.fetch_add(other.wal_degraded.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  // Governor gauges live on exactly one shard's metrics (like the
  // registry gauges below), so summing is the correct aggregation.
  mem_estimated_bytes.fetch_add(
      other.mem_estimated_bytes.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  mem_budget_bytes.fetch_add(
      other.mem_budget_bytes.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  mem_pressure.fetch_add(other.mem_pressure.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  add(base_forks, other.base_forks);
  // Registry gauges live on exactly one shard's metrics, so summing is
  // the correct aggregation.
  bases_registered.fetch_add(
      other.bases_registered.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  base_rss_bytes.fetch_add(
      other.base_rss_bytes.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  base_fork_latency.MergeFrom(other.base_fork_latency);
  const auto take_latest = [](std::atomic<int64_t>& into,
                              const std::atomic<int64_t>& from) {
    const int64_t candidate = from.load(std::memory_order_relaxed);
    int64_t seen = into.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !into.compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
    }
  };
  take_latest(last_wal_fsync_failure_ns, other.last_wal_fsync_failure_ns);
  take_latest(last_engine_demotion_ns, other.last_engine_demotion_ns);
  take_latest(last_wal_disk_full_ns, other.last_wal_disk_full_ns);
  turn_delay.MergeFrom(other.turn_delay);
  request_latency.MergeFrom(other.request_latency);
  queue_wait.MergeFrom(other.queue_wait);
  for (size_t s = 0; s < kNumStrategyLabels; ++s) {
    for (size_t e = 0; e < kNumEngineLabels; ++e) {
      by_label[s][e].MergeFrom(other.by_label[s][e]);
    }
  }
}

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {

// --- Prometheus text exposition (format 0.0.4) -------------------------

std::string FormatDoubleCompact(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.9g", value);
  return buffer;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// {strategy="opti-mcd",engine="scratch"} — empty for no labels.
std::string LabelSet(
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + EscapeLabelValue(labels[i].second) +
           "\"";
  }
  out += "}";
  return out;
}

// Same, with an extra `le` label appended (histogram bucket lines).
std::string LabelSetWithLe(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::string& le) {
  std::string out = "{";
  for (const auto& [key, value] : labels) {
    out += key + "=\"" + EscapeLabelValue(value) + "\",";
  }
  out += "le=\"" + le + "\"}";
  return out;
}

void AppendHelpType(std::string* out, const std::string& name,
                    const std::string& help, const char* type) {
  *out += "# HELP " + name + " " + help + "\n";
  *out += "# TYPE " + name + " " + std::string(type) + "\n";
}

void AppendCounter(std::string* out, const std::string& name,
                   const std::string& help, uint64_t value) {
  AppendHelpType(out, name, help, "counter");
  *out += name + " " + std::to_string(value) + "\n";
}

void AppendGauge(std::string* out, const std::string& name,
                 const std::string& help, int64_t value) {
  AppendHelpType(out, name, help, "gauge");
  *out += name + " " + std::to_string(value) + "\n";
}

// One histogram's cumulative series under an optional label set. The
// bucket lines come from LatencyHistogram::CumulativeBuckets() — the
// same snapshot path the JSON `metrics` command renders — so the two
// surfaces agree by construction.
void AppendHistogramSeries(
    std::string* out, const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& labels,
    const LatencyHistogram& histogram) {
  uint64_t total = 0;
  for (const LatencyHistogram::CumulativeBucket& bucket :
       histogram.CumulativeBuckets()) {
    const std::string le = bucket.infinite
                               ? std::string("+Inf")
                               : FormatDoubleCompact(bucket.le_seconds);
    *out += name + "_bucket" + LabelSetWithLe(labels, le) + " " +
            std::to_string(bucket.cumulative_count) + "\n";
    total = bucket.cumulative_count;
  }
  *out += name + "_sum" + LabelSet(labels) + " " +
          FormatDoubleCompact(histogram.SumSeconds()) + "\n";
  // _count must equal the +Inf bucket; derive it from the same snapshot
  // rather than re-reading the (racing) count_ counter.
  *out += name + "_count" + LabelSet(labels) + " " + std::to_string(total) +
          "\n";
}

void AppendHistogram(std::string* out, const std::string& name,
                     const std::string& help,
                     const LatencyHistogram& histogram) {
  AppendHelpType(out, name, help, "histogram");
  AppendHistogramSeries(out, name, {}, histogram);
}

}  // namespace

void AppendPrometheusText(const ServiceMetrics& metrics, std::string* out) {
  const auto load = [](const std::atomic<uint64_t>& counter) {
    return counter.load(std::memory_order_relaxed);
  };

  AppendCounter(out, "kbrepair_sessions_opened_total",
                "Sessions created (including recovered ones).",
                load(metrics.sessions_opened));
  AppendCounter(out, "kbrepair_sessions_completed_total",
                "Sessions closed via the close command.",
                load(metrics.sessions_completed));
  AppendCounter(out, "kbrepair_sessions_evicted_total",
                "Sessions reaped by the idle TTL.",
                load(metrics.sessions_evicted));
  AppendCounter(out, "kbrepair_sessions_failed_total",
                "Session create/step/recovery failures.",
                load(metrics.sessions_failed));
  AppendGauge(out, "kbrepair_sessions_active",
              "Sessions currently registered and not closed.",
              metrics.sessions_active.load(std::memory_order_relaxed));
  AppendCounter(out, "kbrepair_questions_served_total",
                "Questions handed to clients.",
                load(metrics.questions_served));
  AppendCounter(out, "kbrepair_answers_applied_total",
                "Answers applied to a session's dialogue.",
                load(metrics.answers_applied));
  AppendCounter(out, "kbrepair_requests_total",
                "Wire commands received (including rejected ones).",
                load(metrics.requests_total));
  AppendCounter(out, "kbrepair_errors_total",
                "Wire commands answered with an error envelope.",
                load(metrics.errors_total));
  AppendCounter(out, "kbrepair_rejected_overload_total",
                "Commands rejected because the ready queue was full.",
                load(metrics.rejected_overload));
  AppendCounter(out, "kbrepair_rejected_commands_total",
                "Commands refused at admission (overload, shutdown, WAL "
                "append failure).",
                load(metrics.rejected_commands));
  AppendCounter(out, "kbrepair_deadline_exceeded_total",
                "Commands cut off by the per-command deadline.",
                load(metrics.deadline_exceeded));
  AppendCounter(out, "kbrepair_wal_appends_total",
                "Durable WAL appends (fsync'd before execution).",
                load(metrics.wal_appends));
  AppendCounter(out, "kbrepair_wal_fsync_failures_total",
                "WAL appends whose fsync failed (command rejected).",
                load(metrics.wal_fsync_failures));
  AppendCounter(out, "kbrepair_wal_compactions_total",
                "Session WALs snapshot-compacted.",
                load(metrics.wal_compactions));
  AppendCounter(out, "kbrepair_transcript_write_failures_total",
                "Transcript flushes that failed.",
                load(metrics.transcript_write_failures));
  AppendCounter(out, "kbrepair_sessions_recovered_total",
                "Sessions rebuilt from their WAL at startup.",
                load(metrics.sessions_recovered));
  AppendCounter(out, "kbrepair_engine_fallbacks_total",
                "Incremental-engine demotions to the scratch engine.",
                load(metrics.engine_fallbacks));
  AppendCounter(out, "kbrepair_worker_stalls_total",
                "Commands the watchdog flagged as stalling a worker.",
                load(metrics.worker_stalls));
  AppendCounter(out, "kbrepair_wal_disk_full_failures_total",
                "WAL appends that hit ENOSPC/EIO (shard entered degraded "
                "mode).",
                load(metrics.wal_disk_full_failures));
  AppendCounter(out, "kbrepair_rejected_degraded_total",
                "Commands rejected ResourceExhausted while the owning shard "
                "was disk-degraded.",
                load(metrics.rejected_degraded));
  AppendGauge(out, "kbrepair_wal_degraded",
              "Shards currently in disk-degraded read-only mode.",
              metrics.wal_degraded.load(std::memory_order_relaxed));
  AppendGauge(out, "kbrepair_mem_estimated_bytes",
              "Governor estimate of session + base memory in use.",
              metrics.mem_estimated_bytes.load(std::memory_order_relaxed));
  AppendGauge(out, "kbrepair_mem_budget_bytes",
              "Configured memory budget (--mem-budget; 0 = unlimited).",
              metrics.mem_budget_bytes.load(std::memory_order_relaxed));
  AppendGauge(out, "kbrepair_mem_pressure",
              "1 while the governor is shedding new sessions.",
              metrics.mem_pressure.load(std::memory_order_relaxed));
  AppendCounter(out, "kbrepair_rejected_pressure_total",
                "Creates shed by the memory governor.",
                load(metrics.rejected_pressure));
  AppendCounter(out, "kbrepair_pressure_evictions_total",
                "Idle sessions evicted early to relieve memory pressure.",
                load(metrics.pressure_evictions));
  AppendGauge(out, "kbrepair_bases_registered",
              "Shared base KBs currently registered.",
              metrics.bases_registered.load(std::memory_order_relaxed));
  AppendGauge(out, "kbrepair_base_rss_bytes",
              "Approximate resident bytes of the shared base segments.",
              metrics.base_rss_bytes.load(std::memory_order_relaxed));
  AppendCounter(out, "kbrepair_base_forks_total",
                "Sessions forked from a shared base.",
                load(metrics.base_forks));

  AppendHistogram(out, "kbrepair_turn_delay_seconds",
                  "Engine compute delay producing each question "
                  "(Prop. 4.10's measured bound).",
                  metrics.turn_delay);
  AppendHistogram(out, "kbrepair_request_latency_seconds",
                  "End-to-end per-command service time (submission to "
                  "completion).",
                  metrics.request_latency);
  AppendHistogram(out, "kbrepair_queue_wait_seconds",
                  "Time a command waited in the ready queue before a "
                  "worker picked it up.",
                  metrics.queue_wait);
  AppendHistogram(out, "kbrepair_base_fork_latency_seconds",
                  "Time to fork a session from a shared base (KB fork + "
                  "census adoption).",
                  metrics.base_fork_latency);

  // Per-strategy / per-engine breakdown. HELP/TYPE once per metric
  // name, then one labeled series per touched label pair.
  AppendHelpType(out, "kbrepair_strategy_sessions_total",
                 "Sessions opened, by strategy and active engine.",
                 "counter");
  AppendHelpType(out, "kbrepair_strategy_questions_total",
                 "Questions served, by strategy and active engine.",
                 "counter");
  AppendHelpType(out, "kbrepair_strategy_answers_total",
                 "Answers applied, by strategy and active engine.",
                 "counter");
  std::string labeled_histograms;
  AppendHelpType(&labeled_histograms, "kbrepair_strategy_turn_delay_seconds",
                 "Per-question engine delay, by strategy and active engine.",
                 "histogram");
  std::string phase_histograms;
  AppendHelpType(&phase_histograms, "kbrepair_phase_seconds",
                 "Per-command time attributed to each pipeline phase, by "
                 "strategy and active engine.",
                 "histogram");
  bool any_phase = false;
  for (size_t s = 0; s < kNumStrategyLabels; ++s) {
    for (size_t e = 0; e < kNumEngineLabels; ++e) {
      const LabeledMetrics& labeled = metrics.by_label[s][e];
      if (!labeled.Touched()) continue;
      const std::vector<std::pair<std::string, std::string>> labels = {
          {"strategy", StrategyLabelName(s)}, {"engine", EngineLabelName(e)}};
      *out += "kbrepair_strategy_sessions_total" + LabelSet(labels) + " " +
              std::to_string(load(labeled.sessions)) + "\n";
      *out += "kbrepair_strategy_questions_total" + LabelSet(labels) + " " +
              std::to_string(load(labeled.questions)) + "\n";
      *out += "kbrepair_strategy_answers_total" + LabelSet(labels) + " " +
              std::to_string(load(labeled.answers)) + "\n";
      AppendHistogramSeries(&labeled_histograms,
                            "kbrepair_strategy_turn_delay_seconds", labels,
                            labeled.turn_delay);
      for (size_t p = 0; p < trace::kNumPhases; ++p) {
        if (labeled.phases[p].count() == 0) continue;
        any_phase = true;
        auto phase_labels = labels;
        phase_labels.emplace_back(
            "phase", trace::PhaseName(static_cast<trace::Phase>(p)));
        AppendHistogramSeries(&phase_histograms, "kbrepair_phase_seconds",
                              phase_labels, labeled.phases[p]);
      }
    }
  }
  *out += labeled_histograms;
  if (any_phase) *out += phase_histograms;
}

void AppendShardPrometheusText(
    const std::vector<const ServiceMetrics*>& shards, std::string* out) {
  const auto load = [](const std::atomic<uint64_t>& counter) {
    return counter.load(std::memory_order_relaxed);
  };
  struct CounterRow {
    const char* name;
    const char* help;
    std::atomic<uint64_t> ServiceMetrics::* field;
  };
  static constexpr CounterRow kRows[] = {
      {"kbrepair_shard_sessions_opened_total",
       "Sessions created on this shard.", &ServiceMetrics::sessions_opened},
      {"kbrepair_shard_sessions_completed_total",
       "Sessions closed via the close command on this shard.",
       &ServiceMetrics::sessions_completed},
      {"kbrepair_shard_sessions_evicted_total",
       "Sessions reaped by the idle TTL on this shard.",
       &ServiceMetrics::sessions_evicted},
      {"kbrepair_shard_sessions_failed_total",
       "Session failures on this shard.", &ServiceMetrics::sessions_failed},
      {"kbrepair_shard_requests_total",
       "Wire commands routed to this shard.", &ServiceMetrics::requests_total},
      {"kbrepair_shard_errors_total",
       "Commands this shard answered with an error envelope.",
       &ServiceMetrics::errors_total},
      {"kbrepair_shard_rejected_commands_total",
       "Commands this shard refused at admission.",
       &ServiceMetrics::rejected_commands},
      {"kbrepair_shard_wal_appends_total",
       "Durable WAL appends on this shard.", &ServiceMetrics::wal_appends},
  };
  // HELP/TYPE once per metric name, then one `shard="i"` line per shard
  // — interleaving the comments per shard would be an invalid
  // exposition.
  for (const CounterRow& row : kRows) {
    AppendHelpType(out, row.name, row.help, "counter");
    for (size_t i = 0; i < shards.size(); ++i) {
      *out += std::string(row.name) +
              LabelSet({{"shard", std::to_string(i)}}) + " " +
              std::to_string(load(shards[i]->*(row.field))) + "\n";
    }
  }
  AppendHelpType(out, "kbrepair_shard_sessions_active",
                 "Sessions currently registered on this shard.", "gauge");
  for (size_t i = 0; i < shards.size(); ++i) {
    *out += "kbrepair_shard_sessions_active" +
            LabelSet({{"shard", std::to_string(i)}}) + " " +
            std::to_string(
                shards[i]->sessions_active.load(std::memory_order_relaxed)) +
            "\n";
  }
  AppendHelpType(out, "kbrepair_shard_wal_degraded",
                 "1 while this shard is in disk-degraded read-only mode.",
                 "gauge");
  for (size_t i = 0; i < shards.size(); ++i) {
    *out += "kbrepair_shard_wal_degraded" +
            LabelSet({{"shard", std::to_string(i)}}) + " " +
            std::to_string(
                shards[i]->wal_degraded.load(std::memory_order_relaxed)) +
            "\n";
  }
  AppendHelpType(out, "kbrepair_shard_turn_delay_seconds",
                 "Per-question engine delay on this shard.", "histogram");
  for (size_t i = 0; i < shards.size(); ++i) {
    AppendHistogramSeries(out, "kbrepair_shard_turn_delay_seconds",
                          {{"shard", std::to_string(i)}},
                          shards[i]->turn_delay);
  }
}

}  // namespace kbrepair
