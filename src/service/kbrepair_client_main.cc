// kbrepair-client: scripted driver and correctness checker for
// `kbrepaird`.
//
// Runs N concurrent scripted repair sessions against the daemon over
// the JSON-lines protocol. Each driver thread answers every question
// with Rng(seed_i).UniformIndex(num_fixes) — the same draw RandomUser
// makes — so the whole dialogue is deterministic. After closing its
// session (include_facts) the driver replays the identical inquiry
// in-process with a fresh engine and the same seed and demands the
// repaired fact base match byte for byte: concurrency in the service
// must not change any repair.
//
// Transports (--transport):
//   stdio  spawn the daemon and speak over its stdin/stdout pipes
//          (the default; one connection by construction);
//   unix   spawn the daemon with --listen-unix on a temp socket and
//          fan the sessions over --connections socket connections;
//   tcp    same over a loopback TCP listener on an ephemeral port.
// With --connect TARGET the client skips the spawn and drives an
// already-running daemon (TARGET is a socket path or HOST:PORT); the
// spawn-only checks (exit code, metrics ledger balance) are skipped
// because the daemon's history is not ours.
//
// Exit 0 iff every session verified and — when we spawned the daemon —
// the final metrics are coherent (opened == completed == N, active ==
// 0, no errors).
//
// Usage:
//   kbrepair-client [--server PATH] [--sessions N] [--workers N]
//                   [--transport stdio|unix|tcp] [--connections N]
//                   [--connect TARGET] [--shards N]
//                   [--kb NAME] [--strategy NAME] [--seed S] [--quiet]

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "repair/inquiry.h"
#include "service/protocol.h"
#include "service/session.h"
#include "util/errno_text.h"
#include "util/json.h"
#include "util/net.h"
#include "util/rng.h"
#include "util/status.h"

namespace kbrepair {
namespace {

// ------------------------------------------------------------------
// A pipelined JSON-lines connection to a kbrepaird — either the
// stdin/stdout pipes of a process this connection spawned, or an
// adopted socket fd (Unix-domain or TCP) to a daemon owned elsewhere.
// Many threads issue Call()s concurrently; a reader thread demuxes the
// out-of-order responses by correlation id.
class ServerConnection {
 public:
  // argv must be null-terminated. Returns false if spawning failed.
  bool Spawn(const std::vector<std::string>& args) {
    int to_child[2];
    int from_child[2];
    if (pipe(to_child) != 0 || pipe(from_child) != 0) return false;
    pid_ = fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      dup2(to_child[0], STDIN_FILENO);
      dup2(from_child[1], STDOUT_FILENO);
      close(to_child[0]);
      close(to_child[1]);
      close(from_child[0]);
      close(from_child[1]);
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (const std::string& arg : args) {
        argv.push_back(const_cast<char*>(arg.c_str()));
      }
      argv.push_back(nullptr);
      execv(argv[0], argv.data());
      std::cerr << "exec " << args[0] << " failed: " << ErrnoText(errno)
                << "\n";
      _exit(127);
    }
    close(to_child[0]);
    close(from_child[1]);
    write_fd_ = to_child[1];
    read_fd_ = from_child[0];
    reader_ = std::thread([this] { ReaderLoop(); });
    return true;
  }

  // Takes ownership of an already-connected stream socket. The daemon
  // process behind it (if we spawned one) is managed by the caller.
  void AdoptSocket(int fd) {
    socket_ = true;
    read_fd_ = fd;
    write_fd_ = fd;
    reader_ = std::thread([this] { ReaderLoop(); });
  }

  // Sends `request` (stamping a fresh "id") and blocks for its response
  // envelope. Unavailable, DeadlineExceeded and ResourceExhausted mean
  // the server never executed the command, so those are retried with
  // the SAME correlation id under full-jitter exponential backoff —
  // sleep uniform in [0, base << attempt] rather than the cap itself,
  // so the many sessions that hit a momentarily saturated daemon
  // together do not come back as one synchronized thundering herd;
  // everything else is final. ResourceExhausted (degraded disk, memory
  // pressure) backs off 4x harder: the server is waiting on resources,
  // not a scheduling blip.
  StatusOr<JsonValue> Call(JsonValue request) {
    const std::string id = "r-" + std::to_string(next_id_.fetch_add(1));
    request.Set("id", JsonValue::String(id));
    const std::string line = request.Dump() + "\n";
    constexpr int kMaxAttempts = 5;
    constexpr int64_t kBackoffBaseMs = 10;
    Status last = Status::Ok();
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      if (attempt > 0) {
        retries_.fetch_add(1, std::memory_order_relaxed);
        int64_t cap_ms = kBackoffBaseMs << (attempt - 1);
        if (last.code() == StatusCode::kResourceExhausted) cap_ms *= 4;
        int64_t sleep_ms;
        {
          // Drawing under a lock is fine here: retries are rare and
          // already on a multi-millisecond path.
          std::lock_guard<std::mutex> lock(backoff_mu_);
          sleep_ms = backoff_rng_.UniformInt(0, cap_ms);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      }
      StatusOr<JsonValue> outcome = CallOnce(id, line);
      if (outcome.ok()) return outcome;
      last = outcome.status();
      if (last.code() != StatusCode::kUnavailable &&
          last.code() != StatusCode::kDeadlineExceeded &&
          last.code() != StatusCode::kResourceExhausted) {
        return last;
      }
      // A hung-up server will not come back (we spawned it): stop
      // burning backoff time and let the caller report the loss.
      if (closed()) break;
    }
    return last;
  }

  // Reseeds the retry-backoff jitter (--retry-seed / KBREPAIR_RETRY_SEED)
  // so fault drills replay identical sleep sequences. Call before
  // issuing requests.
  void SeedBackoff(uint64_t seed) {
    std::lock_guard<std::mutex> lock(backoff_mu_);
    backoff_rng_ = Rng(seed);
  }

  // Correlation ids written to the server but never answered — the
  // in-doubt commands after a crash or hangup.
  std::vector<std::string> UnansweredIds() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::vector<std::string>(pending_.begin(), pending_.end());
  }

  bool closed() {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  uint64_t retries() const { return retries_.load(std::memory_order_relaxed); }

  // Announces end-of-requests and drains. Pipes: closes the server's
  // stdin (EOF triggers its graceful shutdown), reaps the child and
  // returns its exit code (or -1). Sockets: half-closes with SHUT_WR —
  // the daemon answers everything in flight, flushes, and closes its
  // end, which ends our reader; returns 0 (the daemon process outlives
  // its connections).
  int ShutdownAndWait() {
    if (socket_) {
      if (write_fd_ >= 0) ::shutdown(write_fd_, SHUT_WR);
      if (reader_.joinable()) reader_.join();
      if (write_fd_ >= 0) {
        close(write_fd_);
        write_fd_ = -1;
        read_fd_ = -1;
      }
      return 0;
    }
    if (write_fd_ >= 0) {
      close(write_fd_);
      write_fd_ = -1;
    }
    if (reader_.joinable()) reader_.join();
    if (read_fd_ >= 0) {
      close(read_fd_);
      read_fd_ = -1;
    }
    if (pid_ <= 0) return -1;
    int wstatus = 0;
    if (waitpid(pid_, &wstatus, 0) != pid_) return -1;
    pid_ = -1;
    return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
  }

  size_t garbled_lines() const {
    return garbled_.load(std::memory_order_relaxed);
  }

 private:
  StatusOr<JsonValue> CallOnce(const std::string& id,
                               const std::string& line) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return Status::Unavailable("server connection is closed");
      }
      pending_.insert(id);
    }
    {
      std::lock_guard<std::mutex> lock(write_mu_);
      size_t off = 0;
      while (off < line.size()) {
        ssize_t n = write(write_fd_, line.data() + off, line.size() - off);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {
          const int err = errno;
          std::lock_guard<std::mutex> plock(mu_);
          pending_.erase(id);
          // With SIGPIPE ignored a dead reader surfaces here as EPIPE.
          return err == EPIPE
                     ? Status::Unavailable("server pipe closed (EPIPE)")
                     : Status::Internal("write to server failed: " +
                                        ErrnoText(err));
        }
        off += static_cast<size_t>(n);
      }
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return responses_.count(id) != 0 || closed_; });
    auto it = responses_.find(id);
    if (it == responses_.end()) {
      // EOF with the request written: leave the id in pending_ so the
      // caller can report exactly which commands are in doubt.
      return Status::Unavailable("server closed before answering " + id);
    }
    pending_.erase(id);
    JsonValue response = std::move(it->second);
    responses_.erase(it);
    lock.unlock();
    if (!response.Get("ok").AsBool(false)) {
      const JsonValue& error = response.Get("error");
      const std::string code = error.Get("code").AsString();
      const std::string message = error.Get("message").AsString();
      if (code == "Unavailable") {
        return Status::Unavailable("server error: " + message);
      }
      if (code == "DeadlineExceeded") {
        return Status::DeadlineExceeded("server error: " + message);
      }
      if (code == "ResourceExhausted") {
        return Status::ResourceExhausted("server error: " + message);
      }
      return Status::Internal("server error [" + code + "] " + message);
    }
    return response.Get("result");  // copy; the envelope dies here
  }

  void ReaderLoop() {
    std::string buffer;
    char chunk[4096];
    for (;;) {
      const ssize_t n = read(read_fd_, chunk, sizeof chunk);
      if (n <= 0) break;
      buffer.append(chunk, static_cast<size_t>(n));
      size_t pos;
      while ((pos = buffer.find('\n')) != std::string::npos) {
        HandleLine(buffer.substr(0, pos));
        buffer.erase(0, pos + 1);
      }
    }
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    cv_.notify_all();
  }

  void HandleLine(const std::string& line) {
    if (line.empty()) return;
    StatusOr<JsonValue> parsed = JsonValue::Parse(line);
    if (!parsed.ok() || !parsed->is_object() ||
        !parsed->Get("id").is_string()) {
      garbled_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    responses_.emplace(parsed->Get("id").AsString(),
                       std::move(parsed).value());
    cv_.notify_all();
  }

  pid_t pid_ = -1;
  bool socket_ = false;  // read_fd_ == write_fd_ == a connected socket
  int write_fd_ = -1;
  int read_fd_ = -1;
  std::mutex write_mu_;
  std::thread reader_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> garbled_{0};
  std::atomic<uint64_t> retries_{0};
  // Full-jitter draws for retry backoff. Seeded from entropy, not the
  // workload seed: jitter exists to decorrelate concurrent retriers,
  // and it never influences a repair outcome.
  std::mutex backoff_mu_;
  Rng backoff_rng_{std::random_device{}()};
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, JsonValue> responses_;
  std::set<std::string> pending_;  // written, not yet answered
  bool closed_ = false;
};

// ------------------------------------------------------------------
// Minimal HTTP client for the daemon's observability endpoints: one
// fresh TCP connection per GET (the exporter closes after each
// response anyway).

struct HttpResponse {
  int status = 0;
  std::string body;
};

StatusOr<HttpResponse> HttpGet(const std::string& host, int port,
                               const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::Unavailable("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad scrape host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return Status::Unavailable("connect to " + host + ":" +
                               std::to_string(port) + " failed: " +
                               ErrnoText(errno));
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: " + host + "\r\n"
      "Connection: close\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + off, request.size() - off, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      return Status::Unavailable("write to exporter failed");
    }
    off += static_cast<size_t>(n);
  }
  std::string raw;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t head_end = raw.find("\r\n\r\n");
  if (raw.compare(0, 5, "HTTP/") != 0 || head_end == std::string::npos) {
    return Status::Internal("malformed HTTP response from exporter");
  }
  const size_t sp = raw.find(' ');
  HttpResponse response;
  response.status =
      static_cast<int>(std::strtol(raw.c_str() + sp + 1, nullptr, 10));
  response.body = raw.substr(head_end + 4);
  return response;
}

// Parses "[http://]HOST:PORT[/path]" (default path /statusz).
bool ParseScrapeUrl(std::string url, std::string* host, int* port,
                    std::string* path) {
  const std::string prefix = "http://";
  if (url.compare(0, prefix.size(), prefix) == 0) {
    url = url.substr(prefix.size());
  }
  const size_t slash = url.find('/');
  *path = slash == std::string::npos ? "/statusz" : url.substr(slash);
  const std::string host_port =
      slash == std::string::npos ? url : url.substr(0, slash);
  const size_t colon = host_port.rfind(':');
  if (colon == std::string::npos) return false;
  *host = host_port.substr(0, colon);
  if (host->empty()) *host = "127.0.0.1";
  *port = static_cast<int>(
      std::strtol(host_port.c_str() + colon + 1, nullptr, 10));
  return *port > 0;
}

// Two-space-indented JSON rendering (Dump() is single-line by design).
void PrettyPrint(const JsonValue& value, size_t depth, std::string* out) {
  const std::string pad(2 * depth, ' ');
  if (value.is_object()) {
    if (value.members().empty()) {
      *out += "{}";
      return;
    }
    *out += "{\n";
    bool first = true;
    for (const auto& [key, member] : value.members()) {
      if (!first) *out += ",\n";
      first = false;
      *out += pad + "  " + JsonValue::String(key).Dump() + ": ";
      PrettyPrint(member, depth + 1, out);
    }
    *out += "\n" + pad + "}";
    return;
  }
  if (value.is_array()) {
    if (value.size() == 0) {
      *out += "[]";
      return;
    }
    *out += "[\n";
    for (size_t i = 0; i < value.size(); ++i) {
      if (i > 0) *out += ",\n";
      *out += pad + "  ";
      PrettyPrint(value.at(i), depth + 1, out);
    }
    *out += "\n" + pad + "]";
    return;
  }
  *out += value.Dump();
}

// --scrape: fetch one endpoint and pretty-print it. JSON bodies
// (/statusz) are re-indented; everything else prints verbatim.
int ScrapeMain(const std::string& url) {
  std::string host, path;
  int port = 0;
  if (!ParseScrapeUrl(url, &host, &port, &path)) {
    std::cerr << "--scrape: cannot parse '" << url
              << "' (expected [http://]HOST:PORT[/path])\n";
    return 2;
  }
  StatusOr<HttpResponse> response = HttpGet(host, port, path);
  if (!response.ok()) {
    std::cerr << "--scrape: " << response.status() << "\n";
    return 1;
  }
  StatusOr<JsonValue> parsed = JsonValue::Parse(response->body);
  if (parsed.ok() && (parsed->is_object() || parsed->is_array())) {
    std::string pretty;
    PrettyPrint(*parsed, 0, &pretty);
    std::cout << pretty << "\n";
  } else {
    std::cout << response->body;
    if (!response->body.empty() && response->body.back() != '\n') {
      std::cout << "\n";
    }
  }
  return response->status == 200 ? 0 : 1;
}

// ------------------------------------------------------------------

struct ClientOptions {
  std::string server_path;
  size_t sessions = 8;
  size_t workers = 4;
  std::string kb = "synthetic";
  std::string strategy = "random";
  std::string engine = "scratch";
  // When non-empty: register one shared base KB under this name (built
  // from --kb/--seed) before driving, fork every session from it with
  // `create {"base": NAME}`, and after the drive check the base ledger
  // (list-bases + metrics) balances. The oracle replays against the
  // base KB params, so byte-identity still holds.
  std::string base;
  // Worker threads for each session's chase saturation waves. Results
  // are byte-identical for every value (the oracle replays at the same
  // setting anyway, to exercise the same code path).
  size_t chase_threads = 1;
  uint64_t seed = 20180326;  // EDBT'18
  bool quiet = false;
  // Protocol channel: "stdio" (spawned daemon's pipes), "unix"
  // (--listen-unix socket) or "tcp" (loopback listener).
  std::string transport = "stdio";
  // When non-empty: drive an already-running daemon at this target (a
  // socket path, or HOST:PORT / :PORT for TCP) instead of spawning one.
  std::string connect;
  // Socket transports only: number of connections the sessions are
  // spread over (round-robin). Stdio is one connection by construction.
  size_t connections = 1;
  // > 0: forward --shards to the spawned daemon.
  size_t shards = 0;
  // >= 0: start the daemon with --http-port N (0 = ephemeral) and after
  // the sessions finish validate all four observability endpoints,
  // cross-checking /metrics histogram counts against the JSON `metrics`
  // command.
  int http_port = -1;
  // When non-empty: start the daemon with --trace-dir, then after the
  // sessions finish issue the `trace` command, validate the span tree
  // and print an aggregated summary.
  std::string trace_dir;
  // Extra flags forwarded to the spawned daemon (repeatable
  // --server-arg), e.g. --wal-dir or --failpoints for fault drills.
  std::vector<std::string> server_args;
  // When set (--retry-seed / KBREPAIR_RETRY_SEED): seed the retry
  // backoff jitter deterministically, decorrelated per connection, so
  // chaos drills replay the same sleep schedule. Default: entropy.
  bool retry_seed_set = false;
  uint64_t retry_seed = 0;
};

JsonValue CreateParams(const ClientOptions& options, uint64_t seed_i) {
  JsonValue params = JsonValue::Object();
  if (options.base.empty()) {
    params.Set("kb", JsonValue::String(options.kb));
    params.Set("kb_seed", JsonValue::Number(static_cast<int64_t>(seed_i)));
  } else {
    params.Set("base", JsonValue::String(options.base));
  }
  params.Set("strategy", JsonValue::String(options.strategy));
  params.Set("engine", JsonValue::String(options.engine));
  params.Set("seed", JsonValue::Number(static_cast<int64_t>(seed_i)));
  if (options.chase_threads != 1) {
    params.Set("chase_threads",
               JsonValue::Number(static_cast<int64_t>(options.chase_threads)));
  }
  return params;
}

// The KB the session actually repairs: its own (kb_seed = seed_i) in
// private mode, the one registered base (kb_seed = options.seed) when
// forking.
JsonValue OracleParams(const ClientOptions& options, uint64_t seed_i) {
  JsonValue params = JsonValue::Object();
  params.Set("kb", JsonValue::String(options.kb));
  params.Set("kb_seed",
             JsonValue::Number(static_cast<int64_t>(
                 options.base.empty() ? seed_i : options.seed)));
  params.Set("strategy", JsonValue::String(options.strategy));
  params.Set("engine", JsonValue::String(options.engine));
  params.Set("seed", JsonValue::Number(static_cast<int64_t>(seed_i)));
  if (options.chase_threads != 1) {
    params.Set("chase_threads",
               JsonValue::Number(static_cast<int64_t>(options.chase_threads)));
  }
  return params;
}

// Replays the exact inquiry locally: same KB params, same options, same
// per-turn draw. Returns the repaired facts rendered as strings.
StatusOr<std::vector<std::string>> OracleFacts(const ClientOptions& options,
                                               uint64_t seed_i) {
  const JsonValue params = OracleParams(options, seed_i);
  std::string label;
  KBREPAIR_ASSIGN_OR_RETURN(KnowledgeBase kb,
                            BuildKbFromParams(params, &label));
  KBREPAIR_ASSIGN_OR_RETURN(InquiryOptions inquiry_options,
                            InquiryOptionsFromParams(params));
  InquiryEngine engine(&kb, inquiry_options);
  KBREPAIR_RETURN_IF_ERROR(engine.Begin());
  Rng rng(seed_i);
  for (;;) {
    KBREPAIR_ASSIGN_OR_RETURN(const Question* question,
                              engine.NextQuestion());
    if (question == nullptr) break;
    KBREPAIR_RETURN_IF_ERROR(
        engine.Answer(rng.UniformIndex(question->fixes.size())));
  }
  KBREPAIR_ASSIGN_OR_RETURN(InquiryResult result, engine.Finish());
  std::vector<std::string> facts;
  facts.reserve(result.facts.size());
  for (AtomId id = 0; id < result.facts.size(); ++id) {
    facts.push_back(result.facts.atom(id).ToString(kb.symbols()));
  }
  return facts;
}

// ------------------------------------------------------------------
// /metrics exposition validation for --http-port.

// Accepts the Prometheus text format line-by-line and returns the
// parsed series (full "name{labels}" -> value). Error string on the
// first malformed line.
std::string ParseExposition(const std::string& body,
                            std::map<std::string, double>* series) {
  size_t line_no = 0;
  size_t start = 0;
  while (start < body.size()) {
    ++line_no;
    size_t end = body.find('\n', start);
    if (end == std::string::npos) {
      return "line " + std::to_string(line_no) + ": missing trailing newline";
    }
    const std::string line = body.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line.compare(0, 7, "# HELP ") == 0 ||
        line.compare(0, 7, "# TYPE ") == 0) {
      continue;
    }
    if (line[0] == '#') {
      return "line " + std::to_string(line_no) + ": unknown comment form";
    }
    // NAME or NAME{labels}, one space, a floating-point value.
    const size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) {
      return "line " + std::to_string(line_no) + ": no value: " + line;
    }
    const std::string key = line.substr(0, space);
    size_t name_end = key.find('{');
    if (name_end != std::string::npos && key.back() != '}') {
      return "line " + std::to_string(line_no) + ": unbalanced labels";
    }
    if (name_end == std::string::npos) name_end = key.size();
    for (size_t i = 0; i < name_end; ++i) {
      const char c = key[i];
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9' && i > 0) || c == '_' || c == ':';
      if (!ok) {
        return "line " + std::to_string(line_no) + ": bad metric name: " +
               key;
      }
    }
    errno = 0;
    char* parse_end = nullptr;
    const double value = std::strtod(line.c_str() + space + 1, &parse_end);
    if (parse_end == line.c_str() + space + 1 || *parse_end != '\0') {
      return "line " + std::to_string(line_no) + ": bad value: " + line;
    }
    if (series->count(key) != 0) {
      return "line " + std::to_string(line_no) + ": duplicate series " + key;
    }
    (*series)[key] = value;
  }
  return "";
}

// Fetches all four endpoints from a healthy daemon and cross-checks
// /metrics against the JSON `metrics` response. Returns "" or the
// first failure.
std::string CheckExporter(int port, const JsonValue& json_metrics,
                          bool quiet) {
  StatusOr<HttpResponse> health = HttpGet("127.0.0.1", port, "/healthz");
  if (!health.ok()) return "healthz: " + health.status().ToString();
  if (health->status != 200) {
    return "healthz: HTTP " + std::to_string(health->status);
  }
  StatusOr<HttpResponse> ready = HttpGet("127.0.0.1", port, "/readyz");
  if (!ready.ok()) return "readyz: " + ready.status().ToString();
  if (ready->status != 200) {
    return "readyz: HTTP " + std::to_string(ready->status) + " (" +
           ready->body + ")";
  }
  StatusOr<HttpResponse> statusz = HttpGet("127.0.0.1", port, "/statusz");
  if (!statusz.ok()) return "statusz: " + statusz.status().ToString();
  if (statusz->status != 200) {
    return "statusz: HTTP " + std::to_string(statusz->status);
  }
  StatusOr<JsonValue> status_json = JsonValue::Parse(statusz->body);
  if (!status_json.ok() || !status_json->is_object()) {
    return "statusz: body is not a JSON object";
  }
  if (status_json->Get("sessions_active").AsInt(-1) != 0) {
    return "statusz: sessions_active != 0 after all sessions closed";
  }
  StatusOr<HttpResponse> metrics = HttpGet("127.0.0.1", port, "/metrics");
  if (!metrics.ok()) return "metrics: " + metrics.status().ToString();
  if (metrics->status != 200) {
    return "metrics: HTTP " + std::to_string(metrics->status);
  }
  std::map<std::string, double> series;
  const std::string parse_error = ParseExposition(metrics->body, &series);
  if (!parse_error.empty()) return "metrics exposition: " + parse_error;

  // Histogram figures must match the JSON `metrics` command: both are
  // rendered from the same snapshot path, and the drivers are done, so
  // turn_delay can no longer move.
  const auto expect = [&](const std::string& name,
                          double want) -> std::string {
    auto it = series.find(name);
    if (it == series.end()) return name + " missing from /metrics";
    if (std::abs(it->second - want) > 1e-6 * (1.0 + std::abs(want))) {
      return name + " = " + std::to_string(it->second) +
             ", JSON metrics say " + std::to_string(want);
    }
    return "";
  };
  const JsonValue& turn_delay = json_metrics.Get("turn_delay");
  const double count = turn_delay.Get("count").AsDouble(-1);
  std::string problem =
      expect("kbrepair_turn_delay_seconds_count", count);
  if (problem.empty()) {
    // sum ≈ mean * count (the JSON reports mean_ms; both derive from
    // the same sum_micros counter).
    problem = expect("kbrepair_turn_delay_seconds_sum",
                     turn_delay.Get("mean_ms").AsDouble(0) * count / 1e3);
  }
  if (problem.empty()) {
    problem = expect(
        "kbrepair_questions_served_total",
        json_metrics.Get("traffic").Get("questions_served").AsDouble(-1));
  }
  if (!problem.empty()) return problem;
  if (!quiet) {
    std::cout << "exporter: " << series.size()
              << " series validated on port " << port << "\n";
  }
  return "";
}

// One scripted session over the wire. On success returns the number of
// questions answered; any mismatch or server error is a Status.
StatusOr<size_t> DriveSession(ServerConnection& server,
                              const ClientOptions& options, size_t index) {
  const uint64_t seed_i = options.seed + index;
  Rng rng(seed_i);

  JsonValue create = CreateParams(options, seed_i);
  create.Set("command", JsonValue::String("create"));
  KBREPAIR_ASSIGN_OR_RETURN(JsonValue created, server.Call(std::move(create)));
  const std::string session = created.Get("session").AsString();
  if (session.empty()) {
    return Status::Internal("create returned no session id");
  }

  size_t answered = 0;
  for (;;) {
    JsonValue ask = JsonValue::Object();
    ask.Set("command", JsonValue::String("ask"));
    ask.Set("session", JsonValue::String(session));
    KBREPAIR_ASSIGN_OR_RETURN(JsonValue asked, server.Call(std::move(ask)));
    if (asked.Get("done").AsBool(false)) break;
    const int64_t num_fixes =
        asked.Get("question").Get("num_fixes").AsInt(0);
    if (num_fixes <= 0) {
      return Status::Internal("question with no fixes on " + session);
    }
    JsonValue answer = JsonValue::Object();
    answer.Set("command", JsonValue::String("answer"));
    answer.Set("session", JsonValue::String(session));
    answer.Set("choice",
               JsonValue::Number(static_cast<int64_t>(
                   rng.UniformIndex(static_cast<size_t>(num_fixes)))));
    KBREPAIR_RETURN_IF_ERROR(server.Call(std::move(answer)).status());
    ++answered;
    if (answered > 100000) {
      return Status::Internal("session " + session + " does not converge");
    }
  }

  JsonValue close = JsonValue::Object();
  close.Set("command", JsonValue::String("close"));
  close.Set("session", JsonValue::String(session));
  close.Set("include_facts", JsonValue::Bool(true));
  KBREPAIR_ASSIGN_OR_RETURN(JsonValue closed, server.Call(std::move(close)));
  if (!closed.Get("consistent").AsBool(false)) {
    return Status::Internal("session " + session + " closed inconsistent");
  }

  // Byte-for-byte comparison against the single-threaded engine.
  KBREPAIR_ASSIGN_OR_RETURN(std::vector<std::string> oracle,
                            OracleFacts(options, seed_i));
  const JsonValue& facts = closed.Get("facts");
  if (!facts.is_array() || facts.size() != oracle.size()) {
    return Status::Internal(
        "session " + session + ": service repaired " +
        std::to_string(facts.size()) + " facts, oracle " +
        std::to_string(oracle.size()));
  }
  for (size_t i = 0; i < oracle.size(); ++i) {
    if (facts.at(i).AsString() != oracle[i]) {
      return Status::Internal("session " + session + ": fact " +
                              std::to_string(i) + " diverged: service '" +
                              facts.at(i).AsString() + "' vs oracle '" +
                              oracle[i] + "'");
    }
  }
  return answered;
}

// ------------------------------------------------------------------
// Span-tree validation and summary for --trace-dir.

struct SpanInfo {
  uint64_t id = 0;
  uint64_t parent = 0;
  std::string name;
  std::string detail;
  int64_t start_us = 0;
  int64_t dur_us = 0;
};

// Validates the `trace` response and prints an aggregated name-path
// tree. Returns a failure description, or "" when the tree is sound.
//
// Well-formedness checked:
//  * every span has an id, a name and non-negative times;
//  * ids are unique; a parent id is always smaller than its child's
//    (spans are numbered in creation order). A parent missing from the
//    drain is legal — it was still open when the buffer was drained;
//  * a child's [start, end] nests inside its parent's (1us truncation
//    slop);
//  * the expected request path is covered: scheduler (rpc.*), session
//    handlers, inquiry, chase, and — when a WAL is configured — the
//    wal.append leaf;
//  * every session.ask / session.answer span carries "session=<id>
//    step=<k>" annotations and, per session, steps never go backwards
//    in span creation order.
std::string CheckAndPrintTrace(const JsonValue& result, bool expect_wal,
                               bool quiet) {
  if (!result.Get("enabled").AsBool(false)) {
    return "trace: recorder disabled on the server";
  }
  const JsonValue& spans_json = result.Get("spans");
  if (!spans_json.is_array() || spans_json.size() == 0) {
    return "trace: no spans returned";
  }
  std::vector<SpanInfo> spans;
  spans.reserve(spans_json.size());
  std::map<uint64_t, size_t> by_id;
  for (size_t i = 0; i < spans_json.size(); ++i) {
    const JsonValue& json = spans_json.at(i);
    SpanInfo info;
    info.id = static_cast<uint64_t>(json.Get("id").AsInt(0));
    info.parent = static_cast<uint64_t>(json.Get("parent").AsInt(0));
    info.name = json.Get("name").AsString();
    info.detail = json.Get("detail").AsString();
    info.start_us = json.Get("start_us").AsInt(-1);
    info.dur_us = json.Get("dur_us").AsInt(-1);
    if (info.id == 0 || info.name.empty() || info.start_us < 0 ||
        info.dur_us < 0) {
      return "trace: malformed span at index " + std::to_string(i);
    }
    if (by_id.count(info.id) != 0) {
      return "trace: duplicate span id " + std::to_string(info.id);
    }
    by_id[info.id] = spans.size();
    spans.push_back(std::move(info));
  }
  for (const SpanInfo& span : spans) {
    if (span.parent == 0) continue;
    if (span.parent >= span.id) {
      return "trace: span " + std::to_string(span.id) +
             " has parent id >= its own";
    }
    auto it = by_id.find(span.parent);
    if (it == by_id.end()) continue;
    const SpanInfo& parent = spans[it->second];
    if (span.start_us < parent.start_us ||
        span.start_us + span.dur_us >
            parent.start_us + parent.dur_us + 1) {
      return "trace: span '" + span.name + "' not nested inside parent '" +
             parent.name + "'";
    }
  }

  // Aggregate count/total time per name path. Parents always have
  // smaller ids, so an id-ordered pass resolves each path in one step.
  std::vector<size_t> order(spans.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return spans[a].id < spans[b].id;
  });
  std::map<uint64_t, std::string> path_of;
  std::map<std::string, std::pair<size_t, int64_t>> by_path;
  std::set<std::string> names;
  for (const size_t index : order) {
    const SpanInfo& span = spans[index];
    auto parent_it = path_of.find(span.parent);
    const std::string path = parent_it != path_of.end()
                                 ? parent_it->second + "/" + span.name
                                 : span.name;
    path_of[span.id] = path;
    auto& agg = by_path[path];
    agg.first += 1;
    agg.second += span.dur_us;
    names.insert(span.name);
  }

  std::vector<std::string> required = {
      "rpc.create", "rpc.ask",           "rpc.answer",
      "rpc.close",  "session.ask",       "session.answer",
      "session.close", "inquiry.next_question"};
  if (expect_wal) required.push_back("wal.append");
  for (const std::string& name : required) {
    if (names.count(name) == 0) {
      return "trace: required span '" + name + "' missing";
    }
  }
  if (names.count("chase.saturate") == 0 &&
      names.count("chase.delta_saturate") == 0) {
    return "trace: no chase span (chase.saturate / chase.delta_saturate)";
  }

  // Session command spans carry "session=<id> step=<k>"; per session
  // the step is non-decreasing in creation (id) order — the id-sorted
  // pass above established that order. A step going backwards would
  // mean the daemon re-ran an earlier question.
  std::map<std::string, std::pair<int64_t, uint64_t>> last_step;
  for (const size_t index : order) {
    const SpanInfo& span = spans[index];
    if (span.name != "session.ask" && span.name != "session.answer") continue;
    std::string session;
    int64_t step = -1;
    std::istringstream detail(span.detail);
    std::string token;
    while (detail >> token) {
      if (token.rfind("session=", 0) == 0) session = token.substr(8);
      if (token.rfind("step=", 0) == 0) {
        step = std::atoll(token.c_str() + 5);
      }
    }
    if (session.empty() || step <= 0) {
      return "trace: span '" + span.name + "' (id " +
             std::to_string(span.id) + ") lacks session=/step= detail: '" +
             span.detail + "'";
    }
    const auto [it, inserted] =
        last_step.emplace(session, std::make_pair(step, span.id));
    if (!inserted) {
      if (step < it->second.first) {
        return "trace: session " + session + " step went backwards: span " +
               std::to_string(span.id) + " has step=" + std::to_string(step) +
               " after span " + std::to_string(it->second.second) +
               " reached step=" + std::to_string(it->second.first);
      }
      it->second = {step, span.id};
    }
  }

  if (!quiet) {
    std::cout << "trace: " << result.Get("total_spans").AsInt(0)
              << " spans, " << result.Get("dropped").AsInt(0) << " dropped";
    if (result.Get("file").is_string()) {
      std::cout << ", file " << result.Get("file").AsString();
    }
    std::cout << "\n";
    // Lexicographic order lists each parent path right before its
    // children, so indenting by depth renders the tree.
    for (const auto& [path, agg] : by_path) {
      const size_t depth =
          static_cast<size_t>(std::count(path.begin(), path.end(), '/'));
      const size_t leaf = path.rfind('/');
      std::string line(2 + 2 * depth, ' ');
      line += leaf == std::string::npos ? path : path.substr(leaf + 1);
      if (line.size() < 44) line.resize(44, ' ');
      std::cout << line << " x" << agg.first << "  "
                << static_cast<double>(agg.second) / 1e3 << " ms\n";
    }
  }
  return "";
}

// ------------------------------------------------------------------
// Socket-transport plumbing.

// Spawns kbrepaird detached from the protocol channel: stdin becomes
// /dev/null (the sockets carry the protocol; socket-mode kbrepaird
// ignores stdin and waits for SIGTERM), stdout/stderr stay inherited.
// Returns the child pid, or -1.
pid_t SpawnDetachedDaemon(const std::vector<std::string>& args) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  const int devnull = ::open("/dev/null", O_RDONLY);
  if (devnull >= 0) {
    dup2(devnull, STDIN_FILENO);
    close(devnull);
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& arg : args) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);
  execv(argv[0], argv.data());
  std::cerr << "exec " << args[0] << " failed: " << ErrnoText(errno)
            << "\n";
  _exit(127);
}

// A freshly spawned daemon needs a moment to bind its listener: retry
// `once` for up to ~10s, failing fast if the daemon dies first.
StatusOr<int> ConnectPatiently(const std::function<StatusOr<int>()>& once,
                               pid_t daemon_pid) {
  Status last = Status::Unavailable("connect never attempted");
  for (int i = 0; i < 1000; ++i) {
    StatusOr<int> fd = once();
    if (fd.ok()) return fd;
    last = fd.status();
    if (daemon_pid > 0) {
      int wstatus = 0;
      if (::waitpid(daemon_pid, &wstatus, WNOHANG) == daemon_pid) {
        return Status::Internal("daemon exited before accepting connections");
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return last;
}

// First integer in a daemon-written port file; 0 when absent/partial.
int ReadPortFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return 0;
  int port = 0;
  if (std::fscanf(f, "%d", &port) != 1) port = 0;
  std::fclose(f);
  return port;
}

// "HOST:PORT", ":PORT" or bare "PORT" (host defaults to loopback).
bool ParseTcpTarget(const std::string& target, std::string* host,
                    int* port) {
  const size_t colon = target.rfind(':');
  const std::string port_text =
      colon == std::string::npos ? target : target.substr(colon + 1);
  *host = (colon == std::string::npos || colon == 0)
              ? "127.0.0.1"
              : target.substr(0, colon);
  char* end = nullptr;
  const long value = std::strtol(port_text.c_str(), &end, 10);
  if (end == port_text.c_str() || *end != '\0') return false;
  *port = static_cast<int>(value);
  return *port > 0 && *port < 65536;
}

// mkstemp-backed unique /tmp name (the file itself is a placeholder;
// both the Unix listener and the port-file writer replace it).
std::string MakeTempPath(const char* pattern) {
  std::string path = pattern;
  const int fd = ::mkstemp(path.data());
  if (fd < 0) return "";
  ::close(fd);
  return path;
}

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--server PATH] [--server-arg ARG]... [--sessions N]"
               " [--workers N] [--kb NAME] [--strategy NAME] [--engine NAME]"
               " [--base NAME] [--chase-threads N] [--seed S]"
               " [--trace-dir DIR] [--http-port N]"
               " [--transport stdio|unix|tcp] [--connections N]"
               " [--connect TARGET] [--shards N] [--retry-seed S] [--quiet]\n"
               "       "
            << argv0
            << " --scrape [http://]HOST:PORT[/path]   fetch one"
               " observability endpoint (default path /statusz)\n";
  return 2;
}

std::string DefaultServerPath(const char* argv0) {
  const std::string self = argv0;
  const size_t slash = self.rfind('/');
  if (slash == std::string::npos) return "./kbrepaird";
  return self.substr(0, slash + 1) + "kbrepaird";
}

int Main(int argc, char** argv) {
  ClientOptions options;
  options.server_path = DefaultServerPath(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--server" && (v = next_value())) {
      options.server_path = v;
    } else if (arg == "--server-arg" && (v = next_value())) {
      options.server_args.push_back(v);
    } else if (arg == "--sessions" && (v = next_value())) {
      options.sessions = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--workers" && (v = next_value())) {
      options.workers = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--kb" && (v = next_value())) {
      options.kb = v;
    } else if (arg == "--strategy" && (v = next_value())) {
      options.strategy = v;
    } else if (arg == "--engine" && (v = next_value())) {
      options.engine = v;
    } else if (arg == "--base" && (v = next_value())) {
      options.base = v;
    } else if (arg == "--chase-threads" && (v = next_value())) {
      options.chase_threads =
          static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--seed" && (v = next_value())) {
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--trace-dir" && (v = next_value())) {
      options.trace_dir = v;
    } else if (arg == "--http-port" && (v = next_value())) {
      options.http_port = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--transport" && (v = next_value())) {
      options.transport = v;
    } else if (arg == "--connect" && (v = next_value())) {
      options.connect = v;
    } else if (arg == "--connections" && (v = next_value())) {
      options.connections =
          static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--shards" && (v = next_value())) {
      options.shards = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--retry-seed" && (v = next_value())) {
      options.retry_seed = std::strtoull(v, nullptr, 10);
      options.retry_seed_set = true;
    } else if (arg == "--scrape" && (v = next_value())) {
      return ScrapeMain(v);
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown or incomplete flag '" << arg << "'\n";
      return Usage(argv[0]);
    }
  }
  if (options.sessions == 0) options.sessions = 1;
  if (options.connections == 0) options.connections = 1;
  const bool external = !options.connect.empty();
  if (external && options.transport == "stdio") {
    // Infer the transport from the target: a path is a Unix socket,
    // anything with a port is TCP.
    options.transport =
        options.connect.find('/') != std::string::npos ? "unix" : "tcp";
  }
  if (options.transport != "stdio" && options.transport != "unix" &&
      options.transport != "tcp") {
    std::cerr << "--transport must be stdio, unix or tcp\n";
    return Usage(argv[0]);
  }
  if (options.transport == "stdio" && options.connections != 1) {
    std::cerr << "--connections requires a socket transport"
                 " (stdio is a single pipe pair)\n";
    return Usage(argv[0]);
  }
  if (external && (options.http_port >= 0 || !options.trace_dir.empty())) {
    std::cerr << "--connect drives an existing daemon; --http-port and"
                 " --trace-dir configure a spawned one\n";
    return Usage(argv[0]);
  }

  // A daemon that dies mid-stream must become a reported failure, not a
  // SIGPIPE-killed client.
  ::signal(SIGPIPE, SIG_IGN);

  std::vector<std::string> server_argv = {
      options.server_path, "--workers", std::to_string(options.workers)};
  if (options.shards > 0) {
    server_argv.push_back("--shards");
    server_argv.push_back(std::to_string(options.shards));
  }
  if (!options.trace_dir.empty()) {
    server_argv.push_back("--trace-dir");
    server_argv.push_back(options.trace_dir);
  }
  // With --http-port the daemon writes its bound port to a temp file
  // (stdout is the protocol channel) for us to read after the drive.
  std::string port_file;
  if (options.http_port >= 0) {
    port_file = MakeTempPath("/tmp/kbrepair-http-port-XXXXXX");
    if (port_file.empty()) {
      std::cerr << "cannot create HTTP port file\n";
      return 1;
    }
    server_argv.push_back("--http-port");
    server_argv.push_back(std::to_string(options.http_port));
    server_argv.push_back("--http-port-file");
    server_argv.push_back(port_file);
  }
  server_argv.insert(server_argv.end(), options.server_args.begin(),
                     options.server_args.end());

  // Establish the protocol channel(s). Stdio spawns the daemon on a
  // pipe pair; the socket transports either spawn it with a listener
  // (owning the process) or connect to --connect.
  std::vector<std::unique_ptr<ServerConnection>> conns;
  pid_t daemon_pid = -1;        // socket-transport spawn only
  std::string unix_sock_path;   // unlinked by the daemon on shutdown
  std::string listen_port_file;
  if (options.transport == "stdio") {
    auto conn = std::make_unique<ServerConnection>();
    if (!conn->Spawn(server_argv)) {
      std::cerr << "failed to spawn " << options.server_path << "\n";
      return 1;
    }
    conns.push_back(std::move(conn));
  } else {
    std::string tcp_host = "127.0.0.1";
    int tcp_port = 0;
    if (external) {
      if (options.transport == "unix") {
        unix_sock_path = options.connect;
      } else if (!ParseTcpTarget(options.connect, &tcp_host, &tcp_port)) {
        std::cerr << "--connect: cannot parse TCP target '"
                  << options.connect << "'\n";
        return 1;
      }
    } else {
      if (options.transport == "unix") {
        unix_sock_path = MakeTempPath("/tmp/kbrepair-sock-XXXXXX");
        if (unix_sock_path.empty()) {
          std::cerr << "cannot create Unix socket path\n";
          return 1;
        }
        server_argv.push_back("--listen-unix");
        server_argv.push_back(unix_sock_path);
      } else {
        listen_port_file = MakeTempPath("/tmp/kbrepair-listen-port-XXXXXX");
        if (listen_port_file.empty()) {
          std::cerr << "cannot create listener port file\n";
          return 1;
        }
        server_argv.push_back("--listen-tcp");
        server_argv.push_back("0");
        server_argv.push_back("--listen-tcp-port-file");
        server_argv.push_back(listen_port_file);
      }
      daemon_pid = SpawnDetachedDaemon(server_argv);
      if (daemon_pid < 0) {
        std::cerr << "failed to spawn " << options.server_path << "\n";
        return 1;
      }
    }
    for (size_t i = 0; i < options.connections; ++i) {
      StatusOr<int> fd = ConnectPatiently(
          [&]() -> StatusOr<int> {
            if (options.transport == "unix") {
              return net::ConnectUnix(unix_sock_path);
            }
            if (tcp_port == 0) {
              // The spawned daemon publishes its ephemeral port
              // atomically; an absent/partial file reads as 0.
              const int published = ReadPortFile(listen_port_file);
              if (published <= 0) {
                return Status::Unavailable("listener port not published yet");
              }
              tcp_port = published;
            }
            return net::ConnectTcp(tcp_host, tcp_port);
          },
          daemon_pid);
      if (!fd.ok()) {
        std::cerr << "cannot connect to the daemon: "
                  << fd.status().ToString() << "\n";
        if (daemon_pid > 0) ::kill(daemon_pid, SIGKILL);
        return 1;
      }
      auto conn = std::make_unique<ServerConnection>();
      conn->AdoptSocket(*fd);
      conns.push_back(std::move(conn));
    }
    if (!listen_port_file.empty()) ::unlink(listen_port_file.c_str());
  }
  if (!options.retry_seed_set) {
    if (const char* env = std::getenv("KBREPAIR_RETRY_SEED")) {
      options.retry_seed = std::strtoull(env, nullptr, 10);
      options.retry_seed_set = true;
    }
  }
  if (options.retry_seed_set) {
    // Decorrelate per connection so parallel links do not jitter in
    // lockstep, while each still replays deterministically.
    for (size_t i = 0; i < conns.size(); ++i) {
      conns[i]->SeedBackoff(options.retry_seed + i);
    }
  }
  ServerConnection& server = *conns.front();

  std::mutex report_mu;
  std::vector<std::string> failures;
  std::atomic<size_t> total_questions{0};

  // Shared-base mode: register the one base every session forks from.
  // A registration failure makes driving pointless, so skip straight to
  // teardown and report it.
  bool drive = true;
  if (!options.base.empty()) {
    JsonValue reg = JsonValue::Object();
    reg.Set("command", JsonValue::String("register-base"));
    reg.Set("name", JsonValue::String(options.base));
    reg.Set("kb", JsonValue::String(options.kb));
    reg.Set("kb_seed", JsonValue::Number(static_cast<int64_t>(options.seed)));
    StatusOr<JsonValue> registered = server.Call(std::move(reg));
    if (!registered.ok()) {
      failures.push_back("register-base: " + registered.status().ToString());
      drive = false;
    } else if (!options.quiet) {
      std::cout << "base '" << options.base << "' registered: "
                << registered->Dump() << "\n";
    }
  }

  std::vector<std::thread> drivers;
  drivers.reserve(drive ? options.sessions : 0);
  for (size_t i = 0; drive && i < options.sessions; ++i) {
    drivers.emplace_back([&, i] {
      // Sessions round-robin over the open connections; the protocol
      // pipelines, so many sessions per connection is the normal case.
      StatusOr<size_t> outcome =
          DriveSession(*conns[i % conns.size()], options, i);
      if (outcome.ok()) {
        total_questions.fetch_add(*outcome, std::memory_order_relaxed);
      } else {
        std::lock_guard<std::mutex> lock(report_mu);
        failures.push_back("session " + std::to_string(i) + ": " +
                           outcome.status().ToString());
      }
    });
  }
  for (std::thread& driver : drivers) driver.join();

  // The lifecycle ledger must balance: every session opened was closed.
  // Only meaningful for a daemon we spawned — an external one carries
  // whatever history it carries.
  JsonValue metrics_request = JsonValue::Object();
  metrics_request.Set("command", JsonValue::String("metrics"));
  StatusOr<JsonValue> metrics = server.Call(std::move(metrics_request));
  if (!metrics.ok()) {
    failures.push_back("metrics: " + metrics.status().ToString());
  } else {
    if (!external) {
      const JsonValue& sessions = metrics->Get("sessions");
      const int64_t opened = sessions.Get("opened").AsInt(-1);
      const int64_t completed = sessions.Get("completed").AsInt(-1);
      const int64_t active = sessions.Get("active").AsInt(-1);
      const int64_t expected = static_cast<int64_t>(options.sessions);
      if (opened != expected || completed != expected || active != 0) {
        failures.push_back(
            "metrics imbalance: opened=" + std::to_string(opened) +
            " completed=" + std::to_string(completed) +
            " active=" + std::to_string(active) + " expected " +
            std::to_string(expected) + "/" + std::to_string(expected) +
            "/0");
      }
    }
    if (!external && !options.base.empty() && drive) {
      // The base ledger must balance too: one base registered, one fork
      // per session. (Gauges live on one shard, so the sharded
      // aggregate sums correctly.)
      const JsonValue& bases = metrics->Get("bases");
      const int64_t registered = bases.Get("registered").AsInt(-1);
      const int64_t forks = bases.Get("forks").AsInt(-1);
      if (registered != 1 ||
          forks != static_cast<int64_t>(options.sessions)) {
        failures.push_back(
            "base metrics imbalance: registered=" +
            std::to_string(registered) + " forks=" + std::to_string(forks) +
            " expected 1/" + std::to_string(options.sessions));
      }
    }
    if (!options.quiet) {
      std::cout << "metrics: " << metrics->Dump() << "\n";
    }
  }

  if (!options.base.empty() && drive) {
    // list-bases over the wire: the base must still be live (it outlives
    // its sessions) with every handle released after the closes.
    JsonValue list = JsonValue::Object();
    list.Set("command", JsonValue::String("list-bases"));
    StatusOr<JsonValue> listed = server.Call(std::move(list));
    if (!listed.ok()) {
      failures.push_back("list-bases: " + listed.status().ToString());
    } else {
      const JsonValue& entries = listed->Get("bases");
      bool found = false;
      for (size_t i = 0; i < entries.size(); ++i) {
        const JsonValue& entry = entries.at(i);
        if (entry.Get("name").AsString() != options.base) continue;
        found = true;
        const int64_t refcount = entry.Get("refcount").AsInt(-1);
        const int64_t forks = entry.Get("forks").AsInt(-1);
        if (refcount != 0 || forks != static_cast<int64_t>(options.sessions)) {
          failures.push_back(
              "list-bases: refcount=" + std::to_string(refcount) +
              " forks=" + std::to_string(forks) + ", expected 0/" +
              std::to_string(options.sessions));
        }
      }
      if (!found) {
        failures.push_back("list-bases: base '" + options.base +
                           "' missing after drive");
      }
    }
  }

  if (options.http_port >= 0) {
    // The port file was written before the daemon started serving
    // requests, so after a full drive it must be present and complete.
    const int bound_port = ReadPortFile(port_file);
    if (bound_port <= 0) {
      failures.push_back("exporter: no bound port in " + port_file);
    } else if (!metrics.ok()) {
      failures.push_back("exporter: skipped (metrics command failed)");
    } else {
      const std::string problem =
          CheckExporter(bound_port, *metrics, options.quiet);
      if (!problem.empty()) failures.push_back("exporter: " + problem);
    }
    ::unlink(port_file.c_str());
  }

  if (!options.trace_dir.empty()) {
    const bool expect_wal =
        std::find(options.server_args.begin(), options.server_args.end(),
                  "--wal-dir") != options.server_args.end() ||
        std::find(options.server_args.begin(), options.server_args.end(),
                  "--recover-dir") != options.server_args.end();
    JsonValue trace_request = JsonValue::Object();
    trace_request.Set("command", JsonValue::String("trace"));
    StatusOr<JsonValue> traced = server.Call(std::move(trace_request));
    if (!traced.ok()) {
      failures.push_back("trace: " + traced.status().ToString());
    } else {
      const std::string problem =
          CheckAndPrintTrace(*traced, expect_wal, options.quiet);
      if (!problem.empty()) failures.push_back(problem);
    }
  }

  // Tear the connections down (pipes: EOF-triggered daemon shutdown;
  // sockets: SHUT_WR half-close and drain), then reap a socket-mode
  // daemon with SIGTERM — its graceful path must exit 0.
  int server_exit = 0;
  for (const auto& conn : conns) {
    const int rc = conn->ShutdownAndWait();
    if (options.transport == "stdio") server_exit = rc;
  }
  if (daemon_pid > 0) {
    ::kill(daemon_pid, SIGTERM);
    int wstatus = 0;
    server_exit =
        (::waitpid(daemon_pid, &wstatus, 0) == daemon_pid &&
         WIFEXITED(wstatus))
            ? WEXITSTATUS(wstatus)
            : -1;
  }
  if (!external && server_exit != 0) {
    failures.push_back("server exited with code " +
                       std::to_string(server_exit));
  }
  uint64_t garbled = 0;
  uint64_t retries = 0;
  std::vector<std::string> unanswered;
  for (const auto& conn : conns) {
    garbled += conn->garbled_lines();
    retries += conn->retries();
    for (std::string& id : conn->UnansweredIds()) {
      unanswered.push_back(std::move(id));
    }
  }
  if (garbled != 0) {
    failures.push_back(std::to_string(garbled) + " garbled response lines");
  }
  if (!unanswered.empty()) {
    std::string joined;
    for (const std::string& id : unanswered) {
      if (!joined.empty()) joined += ", ";
      joined += id;
    }
    failures.push_back("server hung up with " +
                       std::to_string(unanswered.size()) +
                       " unanswered command(s): " + joined);
  }
  if (!options.quiet && retries != 0) {
    std::cout << "retried " << retries
              << " command(s) after retryable errors\n";
  }

  if (!failures.empty()) {
    for (const std::string& failure : failures) {
      std::cerr << "FAIL: " << failure << "\n";
    }
    return 1;
  }
  std::cout << "OK: " << options.sessions << " sessions, "
            << total_questions.load() << " questions, repairs byte-identical"
            << " to the single-threaded engine\n";
  return 0;
}

}  // namespace
}  // namespace kbrepair

int main(int argc, char** argv) { return kbrepair::Main(argc, argv); }
