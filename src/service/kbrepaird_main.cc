// kbrepaird: the repair-session daemon.
//
// Speaks the JSON-lines protocol over stdin/stdout: one request object
// per input line, one response object per output line, correlated by the
// client-chosen "id" (responses may be out of order — they are written
// as workers finish). EOF on stdin triggers a graceful shutdown: queued
// commands drain, transcripts flush, then the process exits 0.
//
// Usage:
//   kbrepaird [--workers N] [--max-queue N] [--ttl-seconds S]
//             [--transcript-dir DIR]

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>

#include "service/session_manager.h"

namespace kbrepair {
namespace {

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--workers N] [--max-queue N] [--ttl-seconds S]"
               " [--transcript-dir DIR]\n";
  return 2;
}

int Main(int argc, char** argv) {
  ServiceConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--workers") {
      const char* v = next_value("--workers");
      if (v == nullptr) return Usage(argv[0]);
      config.num_workers = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--max-queue") {
      const char* v = next_value("--max-queue");
      if (v == nullptr) return Usage(argv[0]);
      config.max_queue = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--ttl-seconds") {
      const char* v = next_value("--ttl-seconds");
      if (v == nullptr) return Usage(argv[0]);
      config.idle_ttl_seconds = std::strtod(v, nullptr);
    } else if (arg == "--transcript-dir") {
      const char* v = next_value("--transcript-dir");
      if (v == nullptr) return Usage(argv[0]);
      config.transcript_dir = v;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown flag '" << arg << "'\n";
      return Usage(argv[0]);
    }
  }

  SessionManager manager(config);
  // Workers complete concurrently; one mutex keeps response lines whole.
  std::mutex stdout_mu;
  auto emit = [&stdout_mu](std::string line) {
    std::lock_guard<std::mutex> lock(stdout_mu);
    std::cout << line << "\n" << std::flush;
  };

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    manager.SubmitLine(line, emit);
  }
  manager.Shutdown();  // drain + flush before exiting
  return 0;
}

}  // namespace
}  // namespace kbrepair

int main(int argc, char** argv) { return kbrepair::Main(argc, argv); }
