// kbrepaird: the repair-session daemon.
//
// Speaks the JSON-lines protocol over stdin/stdout: one request object
// per input line, one response object per output line, correlated by the
// client-chosen "id" (responses may be out of order — they are written
// as workers finish). EOF on stdin triggers a graceful shutdown: queued
// commands drain, transcripts flush, then the process exits 0.
//
// Usage:
//   kbrepaird [--workers N] [--max-queue N] [--ttl-seconds S]
//             [--transcript-dir DIR] [--wal-dir DIR] [--recover-dir DIR]
//             [--deadline-ms N] [--wal-compact-every N]
//             [--trace-dir DIR] [--failpoints SPEC]
//             [--http-port N] [--http-port-file PATH]
//             [--log-level LEVEL] [--log-file PATH]

#include <signal.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>

#include "service/http_exporter.h"
#include "service/session_manager.h"
#include "util/failpoint.h"
#include "util/log.h"

namespace kbrepair {
namespace {

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--workers N] [--max-queue N] [--ttl-seconds S]"
         " [--transcript-dir DIR]\n"
         "  [--wal-dir DIR]          write-ahead log accepted commands to"
         " DIR/<session>.wal\n"
         "  [--recover-dir DIR]      like --wal-dir, plus replay every WAL"
         " found there at startup\n"
         "  [--deadline-ms N]        per-command deadline (0 = none)\n"
         "  [--wal-compact-every N]  snapshot-compact a session WAL every"
         " N appends\n"
         "  [--trace-dir DIR]        record per-phase tracing spans; the"
         " `trace` command drains them to DIR/trace-NNNNN.jsonl\n"
         "  [--failpoints SPEC]      arm failpoints, e.g."
         " 'wal.fsync=1,chase.saturate' (also via KBREPAIR_FAILPOINTS)\n"
         "  [--http-port N]          serve /metrics /healthz /readyz"
         " /statusz on 127.0.0.1:N (0 = ephemeral; port logged on stderr)\n"
         "  [--http-port-file PATH]  write the bound HTTP port to PATH\n"
         "  [--log-level LEVEL]      debug|info|warn|error (default info)\n"
         "  [--log-file PATH]        append JSON log lines to PATH instead"
         " of stderr\n";
  return 2;
}

int Main(int argc, char** argv) {
  ServiceConfig config;
  int http_port = -1;  // -1 = exporter off; 0 = ephemeral port
  std::string http_port_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--workers") {
      const char* v = next_value("--workers");
      if (v == nullptr) return Usage(argv[0]);
      config.num_workers = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--max-queue") {
      const char* v = next_value("--max-queue");
      if (v == nullptr) return Usage(argv[0]);
      config.max_queue = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--ttl-seconds") {
      const char* v = next_value("--ttl-seconds");
      if (v == nullptr) return Usage(argv[0]);
      config.idle_ttl_seconds = std::strtod(v, nullptr);
    } else if (arg == "--transcript-dir") {
      const char* v = next_value("--transcript-dir");
      if (v == nullptr) return Usage(argv[0]);
      config.transcript_dir = v;
    } else if (arg == "--wal-dir") {
      const char* v = next_value("--wal-dir");
      if (v == nullptr) return Usage(argv[0]);
      config.wal_dir = v;
    } else if (arg == "--recover-dir") {
      const char* v = next_value("--recover-dir");
      if (v == nullptr) return Usage(argv[0]);
      config.wal_dir = v;
      config.recover = true;
    } else if (arg == "--deadline-ms") {
      const char* v = next_value("--deadline-ms");
      if (v == nullptr) return Usage(argv[0]);
      config.deadline_ms = std::strtoll(v, nullptr, 10);
    } else if (arg == "--wal-compact-every") {
      const char* v = next_value("--wal-compact-every");
      if (v == nullptr) return Usage(argv[0]);
      config.wal_compact_every =
          static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--trace-dir") {
      const char* v = next_value("--trace-dir");
      if (v == nullptr) return Usage(argv[0]);
      config.trace_dir = v;
    } else if (arg == "--http-port") {
      const char* v = next_value("--http-port");
      if (v == nullptr) return Usage(argv[0]);
      http_port = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--http-port-file") {
      const char* v = next_value("--http-port-file");
      if (v == nullptr) return Usage(argv[0]);
      http_port_file = v;
    } else if (arg == "--log-level") {
      const char* v = next_value("--log-level");
      if (v == nullptr) return Usage(argv[0]);
      StatusOr<logging::Level> level = logging::ParseLevel(v);
      if (!level.ok()) {
        std::cerr << "--log-level: " << level.status() << "\n";
        return Usage(argv[0]);
      }
      logging::Logger::Instance().SetLevel(*level);
    } else if (arg == "--log-file") {
      const char* v = next_value("--log-file");
      if (v == nullptr) return Usage(argv[0]);
      const Status opened = logging::Logger::Instance().OpenFile(v);
      if (!opened.ok()) {
        std::cerr << "--log-file: " << opened << "\n";
        return Usage(argv[0]);
      }
    } else if (arg == "--failpoints") {
      const char* v = next_value("--failpoints");
      if (v == nullptr) return Usage(argv[0]);
      const Status armed = failpoint::Configure(v);
      if (!armed.ok()) {
        std::cerr << "--failpoints: " << armed << "\n";
        return Usage(argv[0]);
      }
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown flag '" << arg << "'\n";
      return Usage(argv[0]);
    }
  }

  // A client that vanishes mid-response must not kill the daemon; the
  // failed write surfaces as a stream error instead.
  ::signal(SIGPIPE, SIG_IGN);
  failpoint::InitFromEnvOnce();

  SessionManager manager(config);
  logging::Info("kbrepaird", "daemon started")
      .With("workers", static_cast<int64_t>(config.num_workers))
      .With("wal", !config.wal_dir.empty())
      .With("tracing", !config.trace_dir.empty());

  // The exporter starts after recovery (the manager constructor), so a
  // scrape never observes a half-recovered registry; it stops after
  // Shutdown(), so /readyz reports shutdown-in-progress during the
  // drain instead of going dark.
  std::unique_ptr<HttpExporter> exporter;
  if (http_port >= 0) {
    HttpExporter::Options options;
    options.port = http_port;
    options.port_file = http_port_file;
    HttpExporter::Hooks hooks;
    hooks.append_metrics = [&manager](std::string* out) {
      AppendPrometheusText(manager.metrics(), out);
    };
    hooks.readiness_causes = [&manager] { return manager.ReadinessCauses(); };
    hooks.statusz = [&manager] { return manager.StatuszJson(); };
    exporter = std::make_unique<HttpExporter>(options, std::move(hooks));
    const Status started = exporter->Start();
    if (!started.ok()) {
      // Stdout belongs to the wire protocol; the bind failure goes to
      // the log and the daemon refuses to start half-observable.
      logging::Error("kbrepaird", "http exporter failed to start")
          .With("error", started.message());
      return 1;
    }
  }

  // Workers complete concurrently; one mutex keeps response lines whole.
  std::mutex stdout_mu;
  auto emit = [&stdout_mu](std::string line) {
    std::lock_guard<std::mutex> lock(stdout_mu);
    std::cout << line << "\n" << std::flush;
  };

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    manager.SubmitLine(line, emit);
  }
  logging::Info("kbrepaird", "stdin closed; shutting down");
  manager.Shutdown();  // drain + flush before exiting
  if (exporter != nullptr) exporter->Stop();
  return 0;
}

}  // namespace
}  // namespace kbrepair

int main(int argc, char** argv) { return kbrepair::Main(argc, argv); }
