// kbrepaird: the repair-session daemon.
//
// Speaks the JSON-lines protocol over one of two transports:
//
//  * stdio (default): one request object per stdin line, one response
//    object per stdout line, correlated by the client-chosen "id"
//    (responses may be out of order — they are written as workers
//    finish). EOF on stdin triggers a graceful shutdown: queued
//    commands drain, transcripts flush, then the process exits 0.
//    Internally stdin is just one more framed connection — the same
//    LineFramer the socket transport uses.
//
//  * sockets (--listen-unix and/or --listen-tcp): a non-blocking epoll
//    listener multiplexes many concurrent client connections onto the
//    same protocol; stdin is ignored and the daemon runs until
//    SIGTERM/SIGINT, which drains and exits 0.
//
// With --shards N the session registry is split into N independent
// SessionManagers (sessions routed by a stable hash of their id, WALs
// under <wal-dir>/shard-<i>/); N defaults to 1, which is byte-identical
// to the unsharded daemon.
//
// Usage:
//   kbrepaird [--workers N] [--max-queue N] [--ttl-seconds S]
//             [--transcript-dir DIR] [--wal-dir DIR] [--recover-dir DIR]
//             [--deadline-ms N] [--wal-compact-every N]
//             [--mem-budget BYTES[K|M|G]]
//             [--trace-dir DIR] [--failpoints SPEC]
//             [--shards N] [--listen-unix PATH]
//             [--listen-tcp PORT] [--listen-tcp-port-file PATH]
//             [--http-port N] [--http-port-file PATH]
//             [--log-level LEVEL] [--log-file PATH]

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "service/http_exporter.h"
#include "service/net/framer.h"
#include "service/net/line_server.h"
#include "service/session.h"
#include "service/sharded_manager.h"
#include "util/failpoint.h"
#include "util/log.h"

namespace kbrepair {
namespace {

// Self-pipe written by the SIGTERM/SIGINT handler; poll()/epoll-era
// signal handling without sigwait threads.
int g_signal_pipe_write = -1;

extern "C" void HandleTermSignal(int) {
  if (g_signal_pipe_write >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(g_signal_pipe_write, &byte, 1);
  }
}

// "262144", "256K", "64M", "2G" -> bytes; negative on parse failure.
int64_t ParseByteSize(const std::string& text) {
  if (text.empty()) return -1;
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || value < 0) return -1;
  int64_t multiplier = 1;
  if (*end != '\0') {
    switch (*end) {
      case 'k': case 'K': multiplier = 1024; break;
      case 'm': case 'M': multiplier = 1024 * 1024; break;
      case 'g': case 'G': multiplier = 1024 * 1024 * 1024; break;
      default: return -1;
    }
    if (end[1] != '\0') return -1;
  }
  return value * multiplier;
}

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--workers N] [--max-queue N] [--ttl-seconds S]"
         " [--transcript-dir DIR]\n"
         "  [--wal-dir DIR]          write-ahead log accepted commands to"
         " DIR/<session>.wal\n"
         "  [--recover-dir DIR]      like --wal-dir, plus replay every WAL"
         " found there at startup\n"
         "  [--deadline-ms N]        per-command deadline (0 = none)\n"
         "  [--wal-compact-every N]  snapshot-compact a session WAL every"
         " N appends\n"
         "  [--mem-budget BYTES]     soft memory ceiling (K/M/G suffix ok;"
         " 0 = unlimited): at the budget new creates are shed and idle"
         " sessions evicted\n"
         "  [--trace-dir DIR]        record per-phase tracing spans; the"
         " `trace` command drains them to DIR/trace-NNNNN.jsonl\n"
         "  [--failpoints SPEC]      arm failpoints, e.g."
         " 'wal.fsync=1,chase.saturate' (also via KBREPAIR_FAILPOINTS)\n"
         "  [--shards N]             split the session registry into N"
         " independent shards (default 1)\n"
         "  [--chase-threads N]      default worker threads per session"
         " chase saturation (1-64; create params override; results are"
         " identical for any N)\n"
         "  [--listen-unix PATH]     accept JSON-lines connections on a"
         " Unix-domain socket at PATH\n"
         "  [--listen-tcp PORT]      accept JSON-lines connections on"
         " 127.0.0.1:PORT (0 = ephemeral)\n"
         "  [--listen-tcp-port-file PATH]  write the bound JSON-lines TCP"
         " port to PATH\n"
         "  [--http-port N]          serve /metrics /healthz /readyz"
         " /statusz on 127.0.0.1:N (0 = ephemeral; port logged on stderr)\n"
         "  [--http-port-file PATH]  write the bound HTTP port to PATH\n"
         "  [--log-level LEVEL]      debug|info|warn|error (default info)\n"
         "  [--log-file PATH]        append JSON log lines to PATH instead"
         " of stderr\n";
  return 2;
}

// The stdio transport: reads stdin through the same LineFramer the
// socket transport uses — stdin is literally a single-connection
// adapter over the shared framing code — while also watching the
// signal self-pipe so SIGTERM drains instead of killing mid-command.
void ServeStdio(ShardedSessionManager& manager, int signal_fd) {
  std::mutex stdout_mu;
  auto emit = [&stdout_mu](std::string line) {
    std::lock_guard<std::mutex> lock(stdout_mu);
    std::cout << line << "\n" << std::flush;
  };

  net::LineFramer framer;
  char buffer[65536];
  for (;;) {
    pollfd fds[2] = {{STDIN_FILENO, POLLIN, 0}, {signal_fd, POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) {
      logging::Info("kbrepaird", "termination signal; shutting down");
      return;
    }
    if (fds[0].revents == 0) continue;
    const ssize_t n = ::read(STDIN_FILENO, buffer, sizeof buffer);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF: graceful shutdown
    std::vector<std::string> lines;
    if (!framer.Feed(buffer, static_cast<size_t>(n), &lines)) {
      for (std::string& line : lines) manager.SubmitLine(line, emit);
      emit(ErrorResponseForLine(
          "", Status::InvalidArgument(
                  "request line exceeds " +
                  std::to_string(framer.max_line_bytes()) + " bytes")));
      logging::Error("kbrepaird", "unbounded stdin line; shutting down");
      return;
    }
    for (std::string& line : lines) manager.SubmitLine(line, emit);
  }
  logging::Info("kbrepaird", "stdin closed; shutting down");
}

int Main(int argc, char** argv) {
  ServiceConfig config;
  size_t shards = 1;
  std::string listen_unix;
  int listen_tcp = -1;  // -1 = no TCP listener; 0 = ephemeral port
  std::string listen_tcp_port_file;
  int http_port = -1;  // -1 = exporter off; 0 = ephemeral port
  std::string http_port_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--workers") {
      const char* v = next_value("--workers");
      if (v == nullptr) return Usage(argv[0]);
      config.num_workers = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--max-queue") {
      const char* v = next_value("--max-queue");
      if (v == nullptr) return Usage(argv[0]);
      config.max_queue = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--ttl-seconds") {
      const char* v = next_value("--ttl-seconds");
      if (v == nullptr) return Usage(argv[0]);
      config.idle_ttl_seconds = std::strtod(v, nullptr);
    } else if (arg == "--transcript-dir") {
      const char* v = next_value("--transcript-dir");
      if (v == nullptr) return Usage(argv[0]);
      config.transcript_dir = v;
    } else if (arg == "--wal-dir") {
      const char* v = next_value("--wal-dir");
      if (v == nullptr) return Usage(argv[0]);
      config.wal_dir = v;
    } else if (arg == "--recover-dir") {
      const char* v = next_value("--recover-dir");
      if (v == nullptr) return Usage(argv[0]);
      config.wal_dir = v;
      config.recover = true;
    } else if (arg == "--deadline-ms") {
      const char* v = next_value("--deadline-ms");
      if (v == nullptr) return Usage(argv[0]);
      config.deadline_ms = std::strtoll(v, nullptr, 10);
    } else if (arg == "--wal-compact-every") {
      const char* v = next_value("--wal-compact-every");
      if (v == nullptr) return Usage(argv[0]);
      config.wal_compact_every =
          static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--mem-budget") {
      const char* v = next_value("--mem-budget");
      if (v == nullptr) return Usage(argv[0]);
      const int64_t bytes = ParseByteSize(v);
      if (bytes < 0) {
        std::cerr << "--mem-budget: expected BYTES with optional K/M/G"
                     " suffix, got '" << v << "'\n";
        return Usage(argv[0]);
      }
      config.mem_budget_bytes = bytes;
    } else if (arg == "--trace-dir") {
      const char* v = next_value("--trace-dir");
      if (v == nullptr) return Usage(argv[0]);
      config.trace_dir = v;
    } else if (arg == "--shards") {
      const char* v = next_value("--shards");
      if (v == nullptr) return Usage(argv[0]);
      shards = static_cast<size_t>(std::strtoull(v, nullptr, 10));
      if (shards == 0) {
        std::cerr << "--shards must be >= 1\n";
        return Usage(argv[0]);
      }
    } else if (arg == "--chase-threads") {
      const char* v = next_value("--chase-threads");
      if (v == nullptr) return Usage(argv[0]);
      const size_t threads =
          static_cast<size_t>(std::strtoull(v, nullptr, 10));
      if (threads < 1 || threads > 64) {
        std::cerr << "--chase-threads must be in [1, 64]\n";
        return Usage(argv[0]);
      }
      SetDefaultChaseThreads(threads);
    } else if (arg == "--listen-unix") {
      const char* v = next_value("--listen-unix");
      if (v == nullptr) return Usage(argv[0]);
      listen_unix = v;
    } else if (arg == "--listen-tcp") {
      const char* v = next_value("--listen-tcp");
      if (v == nullptr) return Usage(argv[0]);
      listen_tcp = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--listen-tcp-port-file") {
      const char* v = next_value("--listen-tcp-port-file");
      if (v == nullptr) return Usage(argv[0]);
      listen_tcp_port_file = v;
    } else if (arg == "--http-port") {
      const char* v = next_value("--http-port");
      if (v == nullptr) return Usage(argv[0]);
      http_port = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--http-port-file") {
      const char* v = next_value("--http-port-file");
      if (v == nullptr) return Usage(argv[0]);
      http_port_file = v;
    } else if (arg == "--log-level") {
      const char* v = next_value("--log-level");
      if (v == nullptr) return Usage(argv[0]);
      StatusOr<logging::Level> level = logging::ParseLevel(v);
      if (!level.ok()) {
        std::cerr << "--log-level: " << level.status() << "\n";
        return Usage(argv[0]);
      }
      logging::Logger::Instance().SetLevel(*level);
    } else if (arg == "--log-file") {
      const char* v = next_value("--log-file");
      if (v == nullptr) return Usage(argv[0]);
      const Status opened = logging::Logger::Instance().OpenFile(v);
      if (!opened.ok()) {
        std::cerr << "--log-file: " << opened << "\n";
        return Usage(argv[0]);
      }
    } else if (arg == "--failpoints") {
      const char* v = next_value("--failpoints");
      if (v == nullptr) return Usage(argv[0]);
      const Status armed = failpoint::Configure(v);
      if (!armed.ok()) {
        std::cerr << "--failpoints: " << armed << "\n";
        return Usage(argv[0]);
      }
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown flag '" << arg << "'\n";
      return Usage(argv[0]);
    }
  }

  // A client that vanishes mid-response must not kill the daemon; the
  // failed write surfaces as a stream error instead.
  ::signal(SIGPIPE, SIG_IGN);
  failpoint::InitFromEnvOnce();

  // Graceful SIGTERM/SIGINT via a self-pipe, for both transports.
  int signal_pipe[2];
  if (::pipe(signal_pipe) != 0) {
    std::cerr << "pipe() failed\n";
    return 1;
  }
  g_signal_pipe_write = signal_pipe[1];
  struct sigaction action {};
  action.sa_handler = HandleTermSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  ShardedConfig sharded_config;
  sharded_config.num_shards = shards;
  sharded_config.shard = config;
  ShardedSessionManager manager(sharded_config);

  const bool socket_mode = !listen_unix.empty() || listen_tcp >= 0;
  logging::Info("kbrepaird", "daemon started")
      .With("workers", static_cast<int64_t>(config.num_workers))
      .With("shards", static_cast<int64_t>(shards))
      .With("transport", socket_mode ? "socket" : "stdio")
      .With("wal", !config.wal_dir.empty())
      .With("mem_budget_bytes", config.mem_budget_bytes)
      .With("tracing", !config.trace_dir.empty());

  // The exporter starts after recovery (the manager constructor), so a
  // scrape never observes a half-recovered registry; it stops after
  // Shutdown(), so /readyz reports shutdown-in-progress during the
  // drain instead of going dark.
  std::unique_ptr<HttpExporter> exporter;
  if (http_port >= 0) {
    HttpExporter::Options options;
    options.port = http_port;
    options.port_file = http_port_file;
    HttpExporter::Hooks hooks;
    hooks.append_metrics = [&manager](std::string* out) {
      manager.AppendMetricsText(out);
    };
    hooks.readiness_causes = [&manager] { return manager.ReadinessCauses(); };
    hooks.statusz = [&manager] { return manager.StatuszJson(); };
    exporter = std::make_unique<HttpExporter>(options, std::move(hooks));
    const Status started = exporter->Start();
    if (!started.ok()) {
      // Stdout belongs to the wire protocol; the bind failure goes to
      // the log and the daemon refuses to start half-observable.
      logging::Error("kbrepaird", "http exporter failed to start")
          .With("error", started.message());
      return 1;
    }
  }

  std::unique_ptr<net::LineServer> server;
  if (socket_mode) {
    net::LineServerOptions options;
    options.unix_path = listen_unix;
    options.tcp = listen_tcp >= 0;
    options.tcp_port = listen_tcp >= 0 ? listen_tcp : 0;
    options.tcp_port_file = listen_tcp_port_file;
    net::LineServer::Handlers handlers;
    // Handlers only run while the server is alive; capturing the
    // unique_ptr by reference is safe and lets Send target it.
    handlers.on_line = [&manager, &server](net::LineServer::ConnId conn,
                                           std::string line) {
      manager.SubmitLine(line, [&server, conn](std::string response) {
        server->Send(conn, response + "\n");
      });
    };
    handlers.framing_error = [](const std::string& reason) {
      return ErrorResponseForLine("", Status::InvalidArgument(reason)) + "\n";
    };
    server = std::make_unique<net::LineServer>(options, std::move(handlers));
    const Status started = server->Start();
    if (!started.ok()) {
      logging::Error("kbrepaird", "listener failed to start")
          .With("error", started.message());
      return 1;
    }

    // Sockets carry the protocol; stdin is ignored. Park until a
    // termination signal arrives.
    char byte;
    for (;;) {
      const ssize_t n = ::read(signal_pipe[0], &byte, 1);
      if (n > 0) break;
      if (n < 0 && errno == EINTR) continue;
      if (n == 0) break;
    }
    logging::Info("kbrepaird", "termination signal; shutting down");
  } else {
    ServeStdio(manager, signal_pipe[0]);
  }

  // Drain first (queued commands complete and their responses flush
  // through the still-running transport), then stop the transport.
  manager.Shutdown();
  if (server != nullptr) server->Stop();
  if (exporter != nullptr) exporter->Stop();
  return 0;
}

}  // namespace
}  // namespace kbrepair

int main(int argc, char** argv) { return kbrepair::Main(argc, argv); }
