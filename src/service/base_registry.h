// BaseRegistry: named, refcounted, shared SharedKbSnapshots for the
// repair service.
//
// A client registers a base KB once (`register-base`); every later
// `create --base <name>` forks a session from the frozen snapshot in
// O(delta) instead of re-building and re-chasing a private copy. The
// registry is shared across shards (one instance behind the sharded
// front-end), so a base registered through any connection serves every
// shard's sessions.
//
// Lifecycle:
//  * Register is idempotent for an identical KB (the deterministic
//    content hash matches) and fails with FailedPrecondition when the
//    name is taken by a different KB.
//  * Acquire hands out a refcounted Handle; the session holds it for its
//    lifetime, so a base always outlives the sessions forked from it.
//  * SweepExpired (driven by the manager's reaper) evicts bases that are
//    orphaned — refcount zero — and have been idle past the TTL. A
//    referenced base is never evicted.
//
// Durability: with a log directory configured, every register/evict is
// appended (fsync'd) to <dir>/bases.jsonl as one JSON line:
//   {"op":"register","name":...,"hash":"<hex>","params":{...}}
//   {"op":"evict","name":...}
// RecoverFromLog() replays the log at startup — BEFORE session WAL
// recovery, so recovered sessions whose create params carry
// "base":<name> can re-fork — rebuilding each snapshot from its params
// and verifying the recorded content hash. The replayed log is then
// compacted to the live set.

#ifndef KBREPAIR_SERVICE_BASE_REGISTRY_H_
#define KBREPAIR_SERVICE_BASE_REGISTRY_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "repair/kb_snapshot.h"
#include "service/metrics.h"
#include "service/resource_governor.h"
#include "util/json.h"
#include "util/status.h"

namespace kbrepair {

class BaseRegistry : public std::enable_shared_from_this<BaseRegistry> {
 public:
  // RAII refcount on one registered base. Movable; releases on
  // destruction. Holds the registry alive, so a handle can safely
  // outlive the manager that acquired it.
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& other) noexcept;
    Handle& operator=(Handle&& other) noexcept;
    ~Handle();
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    explicit operator bool() const { return snapshot_ != nullptr; }
    const std::string& name() const { return name_; }
    const std::shared_ptr<const SharedKbSnapshot>& snapshot() const {
      return snapshot_;
    }
    void Release();

   private:
    friend class BaseRegistry;
    Handle(std::shared_ptr<BaseRegistry> registry, std::string name,
           std::shared_ptr<const SharedKbSnapshot> snapshot)
        : registry_(std::move(registry)),
          name_(std::move(name)),
          snapshot_(std::move(snapshot)) {}

    std::shared_ptr<BaseRegistry> registry_;
    std::string name_;
    std::shared_ptr<const SharedKbSnapshot> snapshot_;
  };

  // `log_dir`: directory for bases.jsonl (empty = in-memory only).
  explicit BaseRegistry(std::string log_dir = "");

  // Builds the KB named by `params` (same source fields as `create`:
  // kb/kb_dlgp/kb_seed/...) under params["name"], snapshots it and
  // registers the snapshot. Returns the base's info JSON.
  StatusOr<JsonValue> Register(const JsonValue& params);

  // Refcounted acquisition; NotFound for unknown names.
  StatusOr<Handle> Acquire(const std::string& name);

  // {"bases":[{name, kb, hash, facts, bytes, refcount, forks, ...}]}.
  JsonValue ListJson();

  // Evicts orphaned (refcount-0) bases idle longer than `ttl_seconds`.
  // Returns how many were evicted. No-op for ttl <= 0.
  size_t SweepExpired(double ttl_seconds);

  // Replays <log_dir>/bases.jsonl, rebuilding every still-live base.
  // Bases whose rebuilt hash mismatches the recorded one are dropped
  // with an error log (their sessions will fail recovery and be
  // quarantined). The log is compacted to the survivors.
  Status RecoverFromLog();

  // Points the registry's gauges (bases_registered, base_rss_bytes) at
  // `metrics` and seeds them with the current state. Attach exactly one
  // metrics sink (shard 0 in a sharded daemon) or aggregation would
  // double-count.
  void AttachMetrics(ServiceMetrics* metrics);

  // Reports the registry's resident-byte total to the memory governor
  // whenever it changes, so shared bases count against --mem-budget.
  void AttachGovernor(std::shared_ptr<ResourceGovernor> governor);

  // Introspection for tests.
  size_t NumBases();
  uint64_t RefCount(const std::string& name);
  bool Has(const std::string& name);
  StatusOr<uint64_t> ContentHash(const std::string& name);

 private:
  struct Entry {
    std::shared_ptr<const SharedKbSnapshot> snapshot;
    JsonValue params;
    uint64_t refcount = 0;
    uint64_t forks = 0;
    // Eviction clock: last time the base became (or stayed) orphaned.
    std::chrono::steady_clock::time_point last_release;
  };

  void ReleaseLocked(const std::string& name);
  void UpdateGaugesLocked();
  std::string LogPath() const;
  // Appends one fsync'd line to bases.jsonl. Ok when no log_dir.
  Status AppendLogRecord(const JsonValue& record);
  // Rewrites the log as the live set (atomic replace).
  Status CompactLogLocked();

  friend class Handle;
  void Release(const std::string& name);

  const std::string log_dir_;
  std::mutex mu_;
  // Ordered so ListJson and the compacted log are deterministic.
  std::map<std::string, Entry> bases_;
  ServiceMetrics* metrics_ = nullptr;
  std::shared_ptr<ResourceGovernor> governor_;
};

}  // namespace kbrepair

#endif  // KBREPAIR_SERVICE_BASE_REGISTRY_H_
