#include "service/net/framer.h"

#include <cstring>

namespace kbrepair {
namespace net {

bool LineFramer::Feed(const char* data, size_t size,
                      std::vector<std::string>* lines) {
  if (overflowed_) return false;
  size_t offset = 0;
  while (offset < size) {
    const char* nl = static_cast<const char*>(
        std::memchr(data + offset, '\n', size - offset));
    if (nl == nullptr) {
      partial_.append(data + offset, size - offset);
      break;
    }
    const size_t line_end = static_cast<size_t>(nl - data);
    partial_.append(data + offset, line_end - offset);
    offset = line_end + 1;
    if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
    if (partial_.size() > max_line_bytes_) {
      overflowed_ = true;
      partial_.clear();
      return false;
    }
    if (!partial_.empty()) lines->push_back(std::move(partial_));
    partial_.clear();
  }
  if (partial_.size() > max_line_bytes_) {
    overflowed_ = true;
    partial_.clear();
    return false;
  }
  return true;
}

}  // namespace net
}  // namespace kbrepair
