#include "service/net/line_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/errno_text.h"
#include "util/log.h"
#include "util/net.h"

namespace kbrepair {
namespace net {

namespace {

constexpr char kComponent[] = "net";

// epoll_event.data.u64 tags below the first connection id.
constexpr uint64_t kWakeTag = 0;
constexpr uint64_t kUnixTag = 1;
constexpr uint64_t kTcpTag = 2;

}  // namespace

LineServer::LineServer(LineServerOptions options, Handlers handlers)
    : options_(std::move(options)), handlers_(std::move(handlers)) {}

LineServer::~LineServer() { Stop(); }

Status LineServer::Start() {
  if (options_.unix_path.empty() && !options_.tcp) {
    return Status::InvalidArgument("net: no listener configured");
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::Unavailable("net: epoll_create1 failed: " + ErrnoText());
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    const Status status = Status::Unavailable(
        "net: eventfd failed: " + ErrnoText());
    Stop();
    return status;
  }

  const auto add_to_epoll = [this](int fd, uint64_t tag) -> Status {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = tag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      return Status::Unavailable("net: epoll_ctl(ADD) failed: " + ErrnoText());
    }
    return Status::Ok();
  };

  Status status = add_to_epoll(wake_fd_, kWakeTag);
  if (!status.ok()) {
    Stop();
    return status;
  }

  if (!options_.unix_path.empty()) {
    StatusOr<int> fd = ListenUnix(options_.unix_path, options_.backlog);
    if (!fd.ok()) {
      Stop();
      return fd.status();
    }
    unix_listen_fd_ = fd.value();
    status = SetNonBlocking(unix_listen_fd_);
    if (status.ok()) status = add_to_epoll(unix_listen_fd_, kUnixTag);
    if (!status.ok()) {
      Stop();
      return status;
    }
    logging::Info(kComponent, "listening on unix socket")
        .With("path", options_.unix_path);
  }

  if (options_.tcp) {
    StatusOr<int> fd =
        ListenTcp(options_.tcp_bind_address, options_.tcp_port,
                  options_.backlog);
    if (!fd.ok()) {
      Stop();
      return fd.status();
    }
    tcp_listen_fd_ = fd.value();
    StatusOr<int> port = BoundTcpPort(tcp_listen_fd_);
    if (!port.ok()) {
      Stop();
      return port.status();
    }
    tcp_port_ = port.value();
    if (!options_.tcp_port_file.empty()) {
      status = WritePortFile(options_.tcp_port_file, tcp_port_);
      if (!status.ok()) {
        Stop();
        return status;
      }
    }
    status = SetNonBlocking(tcp_listen_fd_);
    if (status.ok()) status = add_to_epoll(tcp_listen_fd_, kTcpTag);
    if (!status.ok()) {
      Stop();
      return status;
    }
    logging::Info(kComponent, "listening on tcp")
        .With("address", options_.tcp_bind_address)
        .With("port", tcp_port_);
  }

  stopping_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Loop(); });
  started_ = true;
  return Status::Ok();
}

void LineServer::Stop() {
  if (started_) {
    stopping_.store(true, std::memory_order_relaxed);
    WakeLoop();
    thread_.join();
    started_ = false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, conn] : conns_) {
      (void)id;
      ::close(conn->fd);
    }
    conns_.clear();
    dirty_.clear();
  }
  const auto close_fd = [](int* fd) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  };
  close_fd(&unix_listen_fd_);
  close_fd(&tcp_listen_fd_);
  close_fd(&wake_fd_);
  close_fd(&epoll_fd_);
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  active_.store(0, std::memory_order_relaxed);
}

void LineServer::WakeLoop() {
  if (wake_fd_ < 0) return;
  const uint64_t one = 1;
  // A full eventfd counter still wakes the loop; ignore write errors.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void LineServer::Send(ConnId id, std::string data) {
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(id);
    if (it == conns_.end()) return;  // raced with a disconnect: drop
    Conn* conn = it->second.get();
    conn->outbuf += data;
    if (conn->pending_lines > 0) --conn->pending_lines;
    if (conn->eof && conn->pending_lines == 0) {
      conn->close_after_flush = true;
    }
    if (conn->outbuf.size() - conn->out_off >
        options_.max_output_buffer_bytes) {
      // Slow or stuck reader: drop the connection rather than buffer
      // without bound. The loop closes it on the next wake.
      conn->close_after_flush = true;
      conn->outbuf.clear();
      conn->out_off = 0;
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    dirty_.push_back(id);
    wake = true;
  }
  if (wake) WakeLoop();
}

void LineServer::CloseAfterFlush(ConnId id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    it->second->close_after_flush = true;
    dirty_.push_back(id);
  }
  WakeLoop();
}

void LineServer::AcceptAll(int listen_fd) {
  while (true) {
    StatusOr<int> accepted = AcceptConnection(listen_fd);
    if (!accepted.ok()) {
      if (!stopping_.load(std::memory_order_relaxed)) {
        logging::Error(kComponent, "accept failed")
            .With("error", accepted.status().message());
      }
      return;
    }
    const int fd = accepted.value();
    if (fd < 0) return;  // EAGAIN: the backlog is drained
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    if (listen_fd == tcp_listen_fd_) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
    ConnId id;
    {
      std::lock_guard<std::mutex> lock(mu_);
      id = next_conn_id_++;
      conns_.emplace(id,
                     std::make_unique<Conn>(fd, options_.max_line_bytes));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      std::lock_guard<std::mutex> lock(mu_);
      conns_.erase(id);
      ::close(fd);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    active_.fetch_add(1, std::memory_order_relaxed);
  }
}

void LineServer::HandleReadable(ConnId id) {
  Conn* conn = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    conn = it->second.get();
  }
  // Only the loop thread erases connections, so `conn` stays valid
  // across the handler calls below; the framer is loop-thread-only.
  char buffer[65536];
  bool should_close = false;
  std::vector<std::string> lines;
  while (true) {
    const ssize_t n = ::read(conn->fd, buffer, sizeof buffer);
    if (n > 0) {
      if (!conn->framer.Feed(buffer, static_cast<size_t>(n), &lines)) {
        // Unbounded line: answer once, then hang up after the flush.
        if (handlers_.framing_error) {
          Send(id, handlers_.framing_error(
                       "line exceeds " +
                       std::to_string(conn->framer.max_line_bytes()) +
                       " bytes"));
        }
        dropped_.fetch_add(1, std::memory_order_relaxed);
        CloseAfterFlush(id);
        break;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EOF or a hard error. A buffered partial line was a torn final
    // command and is dropped, matching stdio EOF semantics.
    should_close = true;
    break;
  }
  if (!lines.empty()) {
    // Count the dispatched lines BEFORE running the handlers: a
    // completion (and its Send) can fire on a worker thread while we
    // are still dispatching, and must see itself as pending.
    std::lock_guard<std::mutex> lock(mu_);
    conn->pending_lines += lines.size();
  }
  for (std::string& line : lines) {
    if (handlers_.on_line) handlers_.on_line(id, std::move(line));
  }
  if (should_close) {
    // Half-close: stop reading, but tear down only once every
    // dispatched line has been answered and the answers have flushed.
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = conns_.find(id);
      if (it != conns_.end()) {
        Conn* c = it->second.get();
        c->eof = true;
        if (c->pending_lines == 0) c->close_after_flush = true;
        UpdateInterestLocked(id, c);
        dirty_.push_back(id);
      }
    }
    WakeLoop();
  }
}

void LineServer::UpdateInterestLocked(ConnId id, Conn* conn) {
  // An EOF'd socket stays level-triggered readable forever (read()
  // keeps returning 0); keep polling only for what the connection
  // still needs.
  epoll_event ev{};
  ev.events = (conn->eof ? 0u : static_cast<uint32_t>(EPOLLIN)) |
              (conn->want_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  ev.data.u64 = id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void LineServer::FlushLocked(ConnId id, Conn* conn) {
  while (conn->out_off < conn->outbuf.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->outbuf.data() + conn->out_off,
               conn->outbuf.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        UpdateInterestLocked(id, conn);
      }
      return;
    }
    // Hard write error: the peer is gone; drop everything.
    conn->outbuf.clear();
    conn->out_off = 0;
    conn->close_after_flush = true;
    return;
  }
  // Fully drained.
  conn->outbuf.clear();
  conn->out_off = 0;
  if (conn->want_write) {
    conn->want_write = false;
    UpdateInterestLocked(id, conn);
  }
}

void LineServer::CloseConnLocked(ConnId id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  conns_.erase(it);
  active_.fetch_sub(1, std::memory_order_relaxed);
}

void LineServer::Loop() {
  std::vector<epoll_event> events(256);
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      logging::Error(kComponent, "epoll_wait failed")
          .With("error", ErrnoText());
      break;
    }
    std::vector<ConnId> closed;
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof drained) > 0) {
        }
        continue;
      }
      if (tag == kUnixTag) {
        AcceptAll(unix_listen_fd_);
        continue;
      }
      if (tag == kTcpTag) {
        AcceptAll(tcp_listen_fd_);
        continue;
      }
      const ConnId id = tag;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = conns_.find(id);
        if (it != conns_.end()) {
          // Deliver what the kernel already buffered for us? No: the
          // peer reset — tear down without guessing at torn input.
          CloseConnLocked(id);
          closed.push_back(id);
        }
        continue;
      }
      if (events[i].events & EPOLLIN) HandleReadable(id);
      if (events[i].events & EPOLLOUT) {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = conns_.find(id);
        if (it != conns_.end()) {
          Conn* conn = it->second.get();
          FlushLocked(id, conn);
          if (conn->close_after_flush &&
              conn->out_off >= conn->outbuf.size()) {
            CloseConnLocked(id);
            closed.push_back(id);
          }
        }
      }
    }
    // Drain connections with freshly queued output or pending closes.
    std::vector<ConnId> dirty;
    {
      std::lock_guard<std::mutex> lock(mu_);
      dirty.swap(dirty_);
      for (const ConnId id : dirty) {
        auto it = conns_.find(id);
        if (it == conns_.end()) continue;
        Conn* conn = it->second.get();
        FlushLocked(id, conn);
        if (conn->close_after_flush && conn->out_off >= conn->outbuf.size()) {
          CloseConnLocked(id);
          closed.push_back(id);
        }
      }
    }
    if (handlers_.on_close) {
      for (const ConnId id : closed) handlers_.on_close(id);
    }
  }
  // Final best-effort flush: Stop() runs after the manager drained, so
  // responses queued by the very last completions are sitting in
  // outbufs; give each socket one non-blocking chance to take them.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, conn] : conns_) FlushLocked(id, conn.get());
}

}  // namespace net
}  // namespace kbrepair
