// LineServer: the daemon's connection listener for the JSON-lines
// protocol.
//
// One epoll event-loop thread owns every socket: it accepts from a
// Unix-domain listener and/or a loopback TCP listener (both optional,
// both non-blocking), reads whatever byte chunks the kernel delivers,
// reassembles protocol lines with LineFramer, and hands each completed
// line to `on_line` — the same strings the stdio transport reads with
// getline, so both transports are byte-identical at the protocol
// layer.
//
// Threading contract:
//  * on_line / on_close run on the event-loop thread; they must not
//    block (the daemon's on_line just enqueues into SessionManager).
//  * Send() is safe from any thread (worker completions call it): it
//    appends to the connection's output buffer under a lock and wakes
//    the loop via an eventfd; all socket writes happen on the loop
//    thread, with EPOLLOUT armed only while a buffer is backlogged.
//  * A Send to a connection that is already gone is silently dropped —
//    completions can race with disconnects by design.
//
// Overload and abuse handling:
//  * a line longer than max_line_bytes gets one error line (built by
//    the `framing_error` hook) and the connection is closed after the
//    buffer flushes — there is no way to resynchronize inside an
//    unbounded line;
//  * a connection whose unread output exceeds max_output_buffer_bytes
//    (a slow or stuck reader) is dropped;
//  * a connection that closes mid-line had a torn final command, which
//    is discarded, matching stdio EOF semantics.

#ifndef KBREPAIR_SERVICE_NET_LINE_SERVER_H_
#define KBREPAIR_SERVICE_NET_LINE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/net/framer.h"
#include "util/status.h"

namespace kbrepair {
namespace net {

struct LineServerOptions {
  // Unix-domain listener path; empty disables it.
  std::string unix_path;
  // TCP listener (loopback by default); tcp_port 0 picks an ephemeral
  // port, published to tcp_port_file when set.
  bool tcp = false;
  std::string tcp_bind_address = "127.0.0.1";
  int tcp_port = 0;
  std::string tcp_port_file;
  int backlog = 128;
  size_t max_line_bytes = LineFramer::kDefaultMaxLineBytes;
  // Per-connection cap on buffered-but-unsent response bytes.
  size_t max_output_buffer_bytes = 64u << 20;
};

class LineServer {
 public:
  using ConnId = uint64_t;

  struct Handlers {
    // One framed protocol line from a connection. Required.
    std::function<void(ConnId, std::string)> on_line;
    // The connection is gone (client close, error, or drop). Optional.
    std::function<void(ConnId)> on_close;
    // Builds the single error line sent before dropping a connection
    // that overflowed max_line_bytes. Optional (nothing sent if unset).
    std::function<std::string(const std::string& reason)> framing_error;
  };

  LineServer(LineServerOptions options, Handlers handlers);
  ~LineServer();

  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  // Binds the listeners and starts the event-loop thread. At least one
  // of unix_path / tcp must be configured.
  Status Start();

  // Closes listeners and every connection, joins the loop thread,
  // unlinks the Unix socket path. Idempotent.
  void Stop();

  // Queues `data` (the caller includes the trailing '\n') for `conn`.
  // Thread-safe; drops silently if the connection no longer exists.
  void Send(ConnId conn, std::string data);

  // Closes `conn` once its pending output has flushed. Thread-safe.
  void CloseAfterFlush(ConnId conn);

  // The TCP listener's bound port (resolves tcp_port 0), -1 when no
  // TCP listener is configured. Valid after Start().
  int tcp_port() const { return tcp_port_; }

  uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  uint64_t connections_active() const {
    return active_.load(std::memory_order_relaxed);
  }
  uint64_t connections_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int fd = -1;
    LineFramer framer;
    std::string outbuf;     // bytes queued for the socket
    size_t out_off = 0;     // already-written prefix of outbuf
    bool want_write = false;       // EPOLLOUT currently armed
    bool close_after_flush = false;
    // The protocol answers every request line with exactly one response
    // line, so a half-closed (EOF'd) connection is torn down only once
    // every dispatched line has been answered and flushed — EOF means
    // "no more requests", not "drop my in-flight responses" (matching
    // stdio, where EOF drains the manager before exiting).
    uint64_t pending_lines = 0;
    bool eof = false;
    Conn(int fd_in, size_t max_line) : fd(fd_in), framer(max_line) {}
  };

  void Loop();
  void AcceptAll(int listen_fd);
  void HandleReadable(ConnId id);
  // Flushes as much of conn->outbuf as the socket accepts; arms or
  // disarms EPOLLOUT to match. Caller holds mu_.
  void FlushLocked(ConnId id, Conn* conn);
  // Re-registers the connection's epoll interest from its eof /
  // want_write state. Caller holds mu_.
  void UpdateInterestLocked(ConnId id, Conn* conn);
  // Caller holds mu_. Removes the connection and fires on_close.
  void CloseConnLocked(ConnId id);
  void WakeLoop();

  LineServerOptions options_;
  Handlers handlers_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: Send()/Stop() nudge the loop
  int unix_listen_fd_ = -1;
  int tcp_listen_fd_ = -1;
  int tcp_port_ = -1;

  std::mutex mu_;
  std::unordered_map<ConnId, std::unique_ptr<Conn>> conns_;
  // Connections with freshly queued output, drained on each wake.
  std::vector<ConnId> dirty_;
  ConnId next_conn_id_ = 16;  // ids below 16 are reserved for listeners

  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> active_{0};
  std::atomic<uint64_t> dropped_{0};
  bool started_ = false;
  std::thread thread_;
};

}  // namespace net
}  // namespace kbrepair

#endif  // KBREPAIR_SERVICE_NET_LINE_SERVER_H_
