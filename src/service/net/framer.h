// Length-tolerant line framing for the JSON-lines wire protocol.
//
// A TCP or Unix-socket read hands the server an arbitrary byte chunk:
// half a line, three lines and a fragment, one byte. LineFramer
// accumulates those chunks and re-emits exactly the newline-delimited
// lines the stdio transport would have seen, so both transports feed
// identical strings into SessionManager::SubmitLine. A trailing '\r'
// is stripped (telnet/CRLF clients), empty lines are dropped, and a
// line longer than `max_line_bytes` poisons the stream — the caller
// should answer with one error envelope and drop the connection, since
// resynchronizing inside an unbounded line is guesswork.

#ifndef KBREPAIR_SERVICE_NET_FRAMER_H_
#define KBREPAIR_SERVICE_NET_FRAMER_H_

#include <cstddef>
#include <string>
#include <vector>

namespace kbrepair {
namespace net {

class LineFramer {
 public:
  static constexpr size_t kDefaultMaxLineBytes = 1 << 20;  // 1 MiB

  explicit LineFramer(size_t max_line_bytes = kDefaultMaxLineBytes)
      : max_line_bytes_(max_line_bytes) {}

  // Appends `size` bytes and appends every newly completed line to
  // `lines` (without the terminator; '\r\n' and '\n' both end a line;
  // empty lines are skipped). Returns false once the line under
  // construction exceeds max_line_bytes: the framer is poisoned and
  // every later Feed also returns false.
  bool Feed(const char* data, size_t size, std::vector<std::string>* lines);

  // True when a partial (unterminated) line is buffered. A connection
  // that closes mid-line had a torn final command; the server drops it
  // rather than guessing.
  bool HasPartial() const { return !partial_.empty(); }

  bool overflowed() const { return overflowed_; }
  size_t max_line_bytes() const { return max_line_bytes_; }

 private:
  size_t max_line_bytes_;
  std::string partial_;
  bool overflowed_ = false;
};

}  // namespace net
}  // namespace kbrepair

#endif  // KBREPAIR_SERVICE_NET_FRAMER_H_
