// Memory governance for the repair daemon.
//
// The daemon's working set is dominated by per-session engine state
// (overlay atoms, provenance nodes, transcripts, WAL backlog) plus the
// shared base segments. None of that is visible to the allocator-level
// limits operators actually configure (cgroup memory.max), and by the
// time the kernel notices the daemon is over, the OOM killer takes out
// every session at once. The ResourceGovernor keeps a cheap running
// byte *estimate* against a configured `--mem-budget` and lets the
// service degrade before the cliff:
//
//  - at/over budget, new `create`s are shed with Unavailable +
//    retry-after (clients already retry with backoff);
//  - the shard reapers evict idle sessions (oldest first) and sweep
//    orphaned bases until the estimate is back under the low watermark
//    (90% of budget — hysteresis so shedding stops promptly);
//  - `pressure` is surfaced as a /metrics gauge and a /readyz cause so
//    load balancers drain the instance instead of piling on.
//
// One governor is shared by every shard of a daemon (the budget is a
// process-wide limit), exactly like the shared BaseRegistry: the
// sharded manager constructs it once and hands the same instance to
// each shard's ServiceConfig. All methods are thread-safe; accounting
// is relaxed atomics, so the estimate is advisory, not linearizable —
// which is fine, it guards a soft limit.

#ifndef KBREPAIR_SERVICE_RESOURCE_GOVERNOR_H_
#define KBREPAIR_SERVICE_RESOURCE_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace kbrepair {

struct ServiceMetrics;

class ResourceGovernor {
 public:
  // budget_bytes <= 0 means unlimited: nothing is ever shed or evicted.
  explicit ResourceGovernor(int64_t budget_bytes);

  // Attach exactly one metrics sink (shard 0 in a sharded daemon) or
  // aggregation would double-count the gauges. Call before traffic.
  void AttachMetrics(ServiceMetrics* metrics);

  // Session accounting: shard managers report estimate deltas as
  // sessions are created, advance, and are closed/evicted.
  void AdjustSessionBytes(int64_t delta);

  // Base accounting: the registry reports its current resident total
  // whenever it changes (absolute, not a delta — the registry already
  // maintains the total for its own gauge).
  void SetBaseBytes(int64_t bytes);

  int64_t budget_bytes() const { return budget_bytes_; }
  int64_t estimated_bytes() const;

  // True when the estimate is at/over budget: creates are shed and
  // /readyz reports memory-pressure.
  bool UnderPressure() const;

  // Bytes the reapers should free to get back under the low watermark
  // (90% of budget); <= 0 when no eviction is needed.
  int64_t BytesOverEvictTarget() const;

  // Human-readable rejection text for a shed create, including a
  // retry-after hint sized to the reaper cadence.
  std::string ShedMessage() const;

 private:
  void PublishGauges();

  const int64_t budget_bytes_;
  std::atomic<int64_t> session_bytes_{0};
  std::atomic<int64_t> base_bytes_{0};
  std::atomic<ServiceMetrics*> metrics_{nullptr};
};

}  // namespace kbrepair

#endif  // KBREPAIR_SERVICE_RESOURCE_GOVERNOR_H_
