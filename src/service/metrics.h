// Service-wide counters and latency histograms, surfaced through the
// wire protocol's `metrics` command.
//
// Everything here is updated from worker threads on the hot path, so the
// implementation is lock-free: plain atomic counters plus a fixed-bucket
// logarithmic histogram (the standard approach of server metric
// libraries — increments are one relaxed fetch_add, quantiles are
// estimated from bucket upper bounds at read time).

#ifndef KBREPAIR_SERVICE_METRICS_H_
#define KBREPAIR_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/trace.h"

namespace kbrepair {

// Log2-bucketed latency histogram: bucket i counts samples in
// [2^i, 2^(i+1)) microseconds; the last bucket absorbs the tail.
// QuantileSeconds() returns the upper bound of the bucket holding the
// q-th sample — an overestimate by at most 2x, which is the usual trade
// for lock-free recording — clamped into [MinSeconds(), MaxSeconds()]
// so reported quantiles always satisfy min ≤ p50 ≤ p95 ≤ max.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 40;  // up to ~2^40 us ≈ 12.7 days

  // Bucket index for a (rounded) microsecond value; exposed for the
  // metric-invariant tests.
  static size_t BucketForMicros(uint64_t micros);

  // Inclusive upper bound of bucket i in microseconds (2^(i+1)). The
  // last bucket absorbs the tail and is unbounded: UINT64_MAX.
  static uint64_t BucketUpperBoundMicros(size_t bucket);

  void Observe(double seconds);

  uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double MeanSeconds() const;
  double SumSeconds() const;
  double QuantileSeconds(double q) const;
  double MinSeconds() const;
  double MaxSeconds() const;

  // Snapshot of the raw bucket counters (invariant: their sum equals
  // count()).
  std::array<uint64_t, kNumBuckets> BucketCounts() const;

  // One cumulative (Prometheus-style) bucket: how many observations
  // were <= le_seconds. The final entry is always the unbounded +Inf
  // bucket (`infinite` set) whose count equals the snapshot total.
  struct CumulativeBucket {
    double le_seconds = 0.0;
    bool infinite = false;
    uint64_t cumulative_count = 0;
  };

  // Cumulative rendering over ONE atomic-ish snapshot of the buckets.
  // This is the single code path behind both the JSON `metrics` command
  // ("buckets" array) and the Prometheus `/metrics` exposition
  // (`_bucket{le=...}`), so the two surfaces cannot drift. Buckets past
  // the last non-empty one are trimmed; +Inf is always present.
  std::vector<CumulativeBucket> CumulativeBuckets() const;

  // {"count":n,"mean_ms":..,"p50_ms":..,"p95_ms":..,"min_ms":..,
  //  "max_ms":..,"buckets":[{"le_ms":..,"count":..},...,
  //  {"le_ms":"+Inf","count":n}]}
  JsonValue ToJson() const;

  // Adds `other`'s observations into this histogram (bucket-wise adds,
  // min/max folds). Used to aggregate per-shard histograms into one
  // service-wide view; each side's counters are read relaxed, so the
  // merge is a consistent-enough snapshot, not a linearizable one.
  void MergeFrom(const LatencyHistogram& other);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micros_{0};
  std::atomic<uint64_t> min_micros_{UINT64_MAX};
  std::atomic<uint64_t> max_micros_{0};
};

// Label axes for the per-strategy / per-engine breakdown. The indices
// are assigned by the session layer (see RepairSession), which maps its
// Strategy / ConflictEngineKind enums onto these names.
inline constexpr size_t kNumStrategyLabels = 5;
inline constexpr size_t kNumEngineLabels = 2;
const char* StrategyLabelName(size_t index);  // "random", "opti-join", ...
const char* EngineLabelName(size_t index);    // "scratch", "incremental"

// Counters and phase-latency histograms for one (strategy, engine)
// label pair. Phase histograms are indexed by trace::Phase and record
// the per-command time attributed to that phase; turn_delay records the
// engine-compute delay of each question (Prop. 4.10's measured bound).
struct LabeledMetrics {
  std::atomic<uint64_t> sessions{0};
  std::atomic<uint64_t> questions{0};
  std::atomic<uint64_t> answers{0};
  LatencyHistogram turn_delay;
  std::array<LatencyHistogram, trace::kNumPhases> phases;

  bool Touched() const;

  void MergeFrom(const LabeledMetrics& other);

  // {"sessions":..,"questions":..,"answers":..,"turn_delay":{..},
  //  "phase_chase":{..}, ...} — only phases with observations appear.
  JsonValue ToJson() const;
};

// The service's aggregate state. One instance per SessionManager.
struct ServiceMetrics {
  // Session lifecycle.
  std::atomic<uint64_t> sessions_opened{0};
  std::atomic<uint64_t> sessions_completed{0};  // closed via `close`
  std::atomic<uint64_t> sessions_evicted{0};    // reaped by the idle TTL
  std::atomic<uint64_t> sessions_failed{0};     // create/step errors
  std::atomic<int64_t> sessions_active{0};

  // Dialogue traffic.
  std::atomic<uint64_t> questions_served{0};
  std::atomic<uint64_t> answers_applied{0};

  // Wire traffic.
  std::atomic<uint64_t> requests_total{0};
  std::atomic<uint64_t> errors_total{0};
  std::atomic<uint64_t> rejected_overload{0};
  // Commands refused at admission (overload, shutdown, WAL append
  // failure) — superset of rejected_overload. None of them executed.
  std::atomic<uint64_t> rejected_commands{0};
  // Commands cut off by the per-command deadline (--deadline-ms).
  std::atomic<uint64_t> deadline_exceeded{0};

  // Durability and degradation.
  std::atomic<uint64_t> wal_appends{0};
  std::atomic<uint64_t> wal_fsync_failures{0};
  std::atomic<uint64_t> wal_compactions{0};
  std::atomic<uint64_t> transcript_write_failures{0};
  std::atomic<uint64_t> sessions_recovered{0};   // rebuilt from WALs
  std::atomic<uint64_t> engine_fallbacks{0};     // incremental -> scratch
  std::atomic<uint64_t> worker_stalls{0};        // watchdog flags

  // Shared-base registry (service/base_registry.h). The gauges are kept
  // current by the one registry attached to this metrics instance
  // (shard 0 in a sharded daemon — MergeFrom sums, so only one shard
  // may carry them); base_forks counts the sessions each manager forked
  // from a shared base and merges like any counter.
  std::atomic<int64_t> bases_registered{0};   // gauge: live bases
  std::atomic<int64_t> base_rss_bytes{0};     // gauge: shared-segment bytes
  std::atomic<uint64_t> base_forks{0};        // counter: forked creates

  // Disk-degraded mode (service/wal.h): appends that hit ENOSPC/EIO,
  // commands rejected ResourceExhausted while the owning shard was
  // degraded, and a 0/1 gauge raised while the shard is degraded (the
  // sharded aggregate therefore counts degraded shards).
  std::atomic<uint64_t> wal_disk_full_failures{0};
  std::atomic<uint64_t> rejected_degraded{0};
  std::atomic<int64_t> wal_degraded{0};

  // Memory governance (service/resource_governor.h). The gauges are
  // kept current by the one governor attached to this metrics instance
  // (shard 0 in a sharded daemon, like the registry gauges); the
  // counters are per-shard and merge by summing.
  std::atomic<int64_t> mem_estimated_bytes{0};  // gauge: sessions + bases
  std::atomic<int64_t> mem_budget_bytes{0};     // gauge: --mem-budget
  std::atomic<int64_t> mem_pressure{0};         // gauge: 1 while shedding
  std::atomic<uint64_t> rejected_pressure{0};   // creates shed under pressure
  std::atomic<uint64_t> pressure_evictions{0};  // idle sessions evicted early

  // Readiness signals: monotonic-clock nanoseconds of the most recent
  // event (0 = never happened). The HTTP exporter's /readyz degrades
  // for a hold-down window after each (see SessionManager's readiness).
  std::atomic<int64_t> last_wal_fsync_failure_ns{0};
  std::atomic<int64_t> last_engine_demotion_ns{0};
  std::atomic<int64_t> last_wal_disk_full_ns{0};

  // Per-turn question-production delay (Prop. 4.10's service-latency
  // bound, measured as engine compute time — parked wall time between
  // wire commands is excluded) and end-to-end per-command service time.
  LatencyHistogram turn_delay;
  LatencyHistogram request_latency;
  // Time a command waited in the ready queue before a worker picked it
  // up (request_latency minus queue_wait ≈ execution time).
  LatencyHistogram queue_wait;
  // Time to fork a session from a shared base (KB fork + BeginShared +
  // registration) — the latency the copy-on-write split keeps O(delta).
  LatencyHistogram base_fork_latency;

  // The per-strategy / per-engine breakdown, indexed by the label
  // helpers above. Untouched label pairs are skipped in ToJson().
  std::array<std::array<LabeledMetrics, kNumEngineLabels>,
             kNumStrategyLabels>
      by_label;

  LabeledMetrics& ForLabels(size_t strategy_index, size_t engine_index) {
    return by_label[strategy_index % kNumStrategyLabels]
                   [engine_index % kNumEngineLabels];
  }

  JsonValue ToJson() const;

  // Folds `other` (one shard's metrics) into this aggregate: counters
  // and gauges add, readiness timestamps take the most recent, and
  // every histogram merges bucket-wise. The sharded daemon uses this to
  // answer the `metrics` command with the same shape a single-shard
  // daemon produces.
  void MergeFrom(const ServiceMetrics& other);
};

// Steady-clock nanoseconds since an arbitrary epoch; the readiness
// timestamps above are recorded against this clock.
int64_t MonotonicNowNs();

// Renders `metrics` in the Prometheus text exposition format (0.0.4):
// HELP/TYPE comments, `kbrepair_*` counters and gauges, and every
// latency histogram as cumulative `_bucket{le=...}` / `_sum` / `_count`
// series (per-strategy/per-engine histograms carry `strategy` and
// `engine` labels, phase histograms additionally `phase`). Appended to
// *out.
void AppendPrometheusText(const ServiceMetrics& metrics, std::string* out);

// Per-shard breakdown for a sharded daemon: a compact set of
// `kbrepair_shard_*{shard="<i>"}` series (active sessions, lifecycle
// counters, wire traffic, WAL appends, and a per-shard turn-delay
// histogram), one labeled line per shard with each metric's HELP/TYPE
// emitted exactly once. `shards[i]` is shard i's metrics. Intended to
// be appended AFTER the unlabeled aggregate from
// AppendPrometheusText(); a single-shard daemon skips it entirely so
// its exposition stays byte-stable.
void AppendShardPrometheusText(
    const std::vector<const ServiceMetrics*>& shards, std::string* out);

}  // namespace kbrepair

#endif  // KBREPAIR_SERVICE_METRICS_H_
