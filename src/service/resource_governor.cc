#include "service/resource_governor.h"

#include "service/metrics.h"

namespace kbrepair {

ResourceGovernor::ResourceGovernor(int64_t budget_bytes)
    : budget_bytes_(budget_bytes > 0 ? budget_bytes : 0) {}

void ResourceGovernor::AttachMetrics(ServiceMetrics* metrics) {
  metrics->mem_budget_bytes.store(budget_bytes_, std::memory_order_relaxed);
  metrics_.store(metrics, std::memory_order_release);
  PublishGauges();
}

void ResourceGovernor::AdjustSessionBytes(int64_t delta) {
  if (delta == 0) return;
  session_bytes_.fetch_add(delta, std::memory_order_relaxed);
  PublishGauges();
}

void ResourceGovernor::SetBaseBytes(int64_t bytes) {
  base_bytes_.store(bytes, std::memory_order_relaxed);
  PublishGauges();
}

int64_t ResourceGovernor::estimated_bytes() const {
  return session_bytes_.load(std::memory_order_relaxed) +
         base_bytes_.load(std::memory_order_relaxed);
}

bool ResourceGovernor::UnderPressure() const {
  return budget_bytes_ > 0 && estimated_bytes() >= budget_bytes_;
}

int64_t ResourceGovernor::BytesOverEvictTarget() const {
  if (budget_bytes_ <= 0) return 0;
  // Low watermark at 90%: once shedding starts, eviction aims below
  // budget so admission does not flap at the boundary.
  const int64_t target = budget_bytes_ - budget_bytes_ / 10;
  return estimated_bytes() - target;
}

std::string ResourceGovernor::ShedMessage() const {
  return "memory pressure: ~" + std::to_string(estimated_bytes()) +
         " bytes estimated against a " + std::to_string(budget_bytes_) +
         " byte budget; retry after idle sessions are evicted";
}

void ResourceGovernor::PublishGauges() {
  ServiceMetrics* metrics = metrics_.load(std::memory_order_acquire);
  if (metrics == nullptr) return;
  metrics->mem_estimated_bytes.store(estimated_bytes(),
                                     std::memory_order_relaxed);
  metrics->mem_pressure.store(UnderPressure() ? 1 : 0,
                              std::memory_order_relaxed);
}

}  // namespace kbrepair
