#include "service/http_exporter.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "service/metrics.h"
#include "util/failpoint.h"
#include "util/log.h"
#include "util/net.h"

namespace kbrepair {

namespace {

constexpr char kComponent[] = "http";

// A stuck or half-open scraper must not wedge the accept thread.
constexpr int kIoTimeoutSeconds = 2;

bool WriteAll(int fd, const std::string& data) {
  if (failpoint::ShouldFail("http.write")) return false;
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 503: return "Service Unavailable";
  }
  return "";
}

std::string BuildResponse(int status, const std::string& content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    ReasonPhrase(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

HttpExporter::HttpExporter(Options options, Hooks hooks)
    : options_(std::move(options)), hooks_(std::move(hooks)) {}

HttpExporter::~HttpExporter() { Stop(); }

Status HttpExporter::Start() {
  StatusOr<int> listener =
      net::ListenTcp(options_.bind_address, options_.port, 16);
  if (!listener.ok()) return listener.status();
  listen_fd_ = listener.value();

  StatusOr<int> bound_port = net::BoundTcpPort(listen_fd_);
  if (!bound_port.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return bound_port.status();
  }
  port_ = bound_port.value();

  if (!options_.port_file.empty()) {
    const Status written = net::WritePortFile(options_.port_file, port_);
    if (!written.ok()) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return written;
    }
  }

  start_ns_ = MonotonicNowNs();
  stopping_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  logging::Info(kComponent, "exporter listening")
      .With("address", options_.bind_address)
      .With("port", port_);
  return Status::Ok();
}

void HttpExporter::Stop() {
  if (!started_) return;
  started_ = false;
  stopping_.store(true, std::memory_order_relaxed);
  // Unblocks accept() with an error on every platform we target; the
  // loop then observes stopping_ and exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpExporter::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    StatusOr<int> accepted = net::AcceptConnection(listen_fd_);
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      logging::Error(kComponent, "accept failed")
          .With("error", accepted.status().message());
      break;
    }
    const int fd = accepted.value();
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      continue;  // benign retryable accept error
    }
    if (failpoint::ShouldFail("http.accept")) {
      // Simulated accept-path failure: the scraper sees a reset
      // connection, the exporter carries on.
      errors_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void HttpExporter::ServeConnection(int fd) {
  timeval timeout{};
  timeout.tv_sec = kIoTimeoutSeconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);

  // Read the request head (everything through the blank line). GETs
  // have no body, so this is the whole request.
  std::string request;
  bool complete = false;
  bool oversized = false;
  char buffer[1024];
  while (!complete) {
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // timeout, reset, or premature EOF
    }
    request.append(buffer, static_cast<size_t>(n));
    if (request.find("\r\n\r\n") != std::string::npos ||
        request.find("\n\n") != std::string::npos) {
      complete = true;
    } else if (request.size() > options_.max_request_bytes) {
      oversized = true;
      break;
    }
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  const auto fail = [&](int status, const std::string& message) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    WriteAll(fd, BuildResponse(status, "text/plain; charset=utf-8",
                               message + "\n"));
  };

  if (oversized) {
    fail(413, "request too large");
    return;
  }
  if (!complete) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return;  // nothing sensible to answer on a torn request
  }

  // Request line: METHOD SP TARGET SP HTTP/1.x
  const size_t line_end = request.find_first_of("\r\n");
  const std::string line = request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.find(' ', sp2 + 1) != std::string::npos ||
      line.compare(sp2 + 1, 7, "HTTP/1.") != 0) {
    fail(400, "malformed request line");
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = target.find('?');
  if (query != std::string::npos) target.resize(query);

  if (method != "GET") {
    fail(405, "only GET is supported");
    return;
  }

  std::string body;
  if (target == "/metrics") {
    hooks_.append_metrics(&body);
    // The exporter's own counters ride along, so scrape health is
    // visible from the scrape itself.
    body += "# HELP kbrepair_http_requests_total HTTP requests handled by "
            "the exporter.\n";
    body += "# TYPE kbrepair_http_requests_total counter\n";
    body += "kbrepair_http_requests_total " +
            std::to_string(requests_.load(std::memory_order_relaxed)) + "\n";
    body += "# HELP kbrepair_http_errors_total HTTP requests answered with "
            "an error (or dropped by a failpoint).\n";
    body += "# TYPE kbrepair_http_errors_total counter\n";
    body += "kbrepair_http_errors_total " +
            std::to_string(errors_.load(std::memory_order_relaxed)) + "\n";
    body += "# HELP kbrepair_uptime_seconds Seconds since the exporter "
            "started.\n";
    body += "# TYPE kbrepair_uptime_seconds gauge\n";
    char uptime[32];
    std::snprintf(uptime, sizeof uptime, "%.3f",
                  static_cast<double>(MonotonicNowNs() - start_ns_) / 1e9);
    body += std::string("kbrepair_uptime_seconds ") + uptime + "\n";
    WriteAll(fd, BuildResponse(200, "text/plain; version=0.0.4; charset=utf-8",
                               body));
    return;
  }
  if (target == "/healthz") {
    WriteAll(fd, BuildResponse(200, "text/plain; charset=utf-8", "ok\n"));
    return;
  }
  if (target == "/readyz") {
    const std::vector<std::string> causes = hooks_.readiness_causes();
    if (causes.empty()) {
      WriteAll(fd, BuildResponse(200, "text/plain; charset=utf-8", "ready\n"));
    } else {
      errors_.fetch_add(1, std::memory_order_relaxed);
      body = "not ready\n";
      for (const std::string& cause : causes) body += cause + "\n";
      WriteAll(fd, BuildResponse(503, "text/plain; charset=utf-8", body));
    }
    return;
  }
  if (target == "/statusz") {
    WriteAll(fd, BuildResponse(200, "application/json",
                               hooks_.statusz().Dump() + "\n"));
    return;
  }
  fail(404, "unknown path (try /metrics, /healthz, /readyz, /statusz)");
}

}  // namespace kbrepair
