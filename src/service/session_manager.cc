#include "service/session_manager.h"

#include <fstream>
#include <utility>

#include "util/logging.h"

namespace kbrepair {

namespace {

// Commands that do not address an existing session.
bool IsIndependentCommand(const std::string& command) {
  return command == "create" || command == "metrics";
}

}  // namespace

SessionManager::SessionManager(ServiceConfig config)
    : config_(std::move(config)) {
  if (config_.num_workers == 0) config_.num_workers = 1;
  if (config_.max_queue == 0) config_.max_queue = 1;
  workers_.reserve(config_.num_workers);
  for (size_t i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  reaper_ = std::thread([this] { ReaperLoop(); });
}

SessionManager::~SessionManager() { Shutdown(); }

void SessionManager::Submit(ServiceRequest request, Completion done) {
  metrics_.requests_total.fetch_add(1, std::memory_order_relaxed);
  Task task;
  task.request = std::move(request);
  task.done = std::move(done);

  Status rejection = Status::Ok();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      rejection = Status::FailedPrecondition("service is shutting down");
    } else if (tasks_in_flight_ >= config_.max_queue) {
      metrics_.rejected_overload.fetch_add(1, std::memory_order_relaxed);
      rejection = Status::FailedPrecondition(
          "service overloaded (" + std::to_string(tasks_in_flight_) +
          " commands in flight, max " + std::to_string(config_.max_queue) +
          ")");
    } else if (IsIndependentCommand(task.request.command)) {
      ++tasks_in_flight_;
      ready_.push_back(std::move(task));
      work_cv_.notify_one();
      return;
    } else if (task.request.session_id.empty()) {
      rejection = Status::InvalidArgument(
          "command '" + task.request.command + "' needs a 'session' id");
    } else {
      auto it = sessions_.find(task.request.session_id);
      if (it == sessions_.end()) {
        rejection = Status::NotFound("unknown session '" +
                                     task.request.session_id + "'");
      } else {
        ++tasks_in_flight_;
        SessionEntry& entry = it->second;
        entry.waiting.push_back(std::move(task));
        // A session key sits in ready_ at most once: it is enqueued only
        // on the idle -> busy transition, and the owning worker re-enqueues
        // it (or clears `busy`) when it finishes a command.
        if (!entry.busy) {
          entry.busy = true;
          ready_.push_back(it->first);
        }
        work_cv_.notify_one();
        return;
      }
    }
  }
  Complete(task, rejection, JsonValue::Null());
}

void SessionManager::SubmitLine(const std::string& line,
                                std::function<void(std::string)> emit) {
  StatusOr<ServiceRequest> parsed = ParseRequestLine(line);
  if (!parsed.ok()) {
    metrics_.requests_total.fetch_add(1, std::memory_order_relaxed);
    metrics_.errors_total.fetch_add(1, std::memory_order_relaxed);
    emit(ErrorResponseForLine(line, parsed.status()));
    return;
  }
  ServiceRequest request = std::move(parsed).value();
  std::string id = request.id;
  Submit(std::move(request),
         [id = std::move(id), emit = std::move(emit)](Status status,
                                                      JsonValue result) {
           ServiceRequest echo;
           echo.id = id;
           emit(status.ok() ? OkResponseLine(echo, std::move(result))
                            : ErrorResponseLine(echo, status));
         });
}

StatusOr<JsonValue> SessionManager::Execute(ServiceRequest request) {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  Status status = Status::Ok();
  JsonValue result;
  Submit(std::move(request), [&](Status s, JsonValue r) {
    std::lock_guard<std::mutex> lock(mu);
    status = std::move(s);
    result = std::move(r);
    ready = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return ready; });
  if (!status.ok()) return status;
  return result;
}

void SessionManager::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shut_down_) return;
    stopping_ = true;
    drain_cv_.wait(lock, [this] { return tasks_in_flight_ == 0; });
    exiting_ = true;
    shut_down_ = true;
  }
  work_cv_.notify_all();
  reaper_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  if (reaper_.joinable()) reaper_.join();
  // Single-threaded from here: flush transcripts of sessions that were
  // never closed, then drop them.
  for (const auto& [id, entry] : sessions_) {
    if (!config_.transcript_dir.empty() && entry.session != nullptr) {
      WriteTranscriptFile(id, entry.session->TranscriptJson().Dump());
    }
  }
  sessions_.clear();
}

void SessionManager::WorkerLoop() {
  for (;;) {
    ReadyItem item{std::string()};
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return exiting_ || !ready_.empty(); });
      if (ready_.empty()) return;  // exiting_ after drain
      item = std::move(ready_.front());
      ready_.pop_front();
    }
    if (std::holds_alternative<Task>(item)) {
      RunIndependent(std::move(std::get<Task>(item)));
    } else {
      RunSessionCommand(std::get<std::string>(item));
    }
  }
}

void SessionManager::RunIndependent(Task task) {
  if (task.request.command == "create") {
    RunCreate(std::move(task));
    return;
  }
  // metrics
  Complete(task, Status::Ok(), MetricsJson());
  TaskDone();
}

void SessionManager::RunCreate(Task task) {
  std::string id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = "s-" + std::to_string(++next_session_);
  }
  StatusOr<std::unique_ptr<RepairSession>> created =
      RepairSession::Create(id, task.request.params);
  if (!created.ok()) {
    metrics_.sessions_failed.fetch_add(1, std::memory_order_relaxed);
    Complete(task, created.status(), JsonValue::Null());
    TaskDone();
    return;
  }
  std::unique_ptr<RepairSession> session = std::move(created).value();
  // Compute the response before registering: once the entry is visible,
  // another worker could legally run a command against it.
  JsonValue info = session->StatusInfo();
  {
    std::lock_guard<std::mutex> lock(mu_);
    SessionEntry entry;
    entry.session = std::move(session);
    entry.last_activity = std::chrono::steady_clock::now();
    sessions_.emplace(id, std::move(entry));
    metrics_.sessions_opened.fetch_add(1, std::memory_order_relaxed);
    metrics_.sessions_active.fetch_add(1, std::memory_order_relaxed);
  }
  Complete(task, Status::Ok(), std::move(info));
  TaskDone();
}

void SessionManager::RunSessionCommand(const std::string& key) {
  Task task;
  RepairSession* session = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(key);
    KBREPAIR_DCHECK(it != sessions_.end()) << "scheduled session vanished";
    KBREPAIR_DCHECK(!it->second.waiting.empty());
    task = std::move(it->second.waiting.front());
    it->second.waiting.pop_front();
    session = it->second.session.get();
  }

  // The busy flag keeps every other worker (and the reaper) away from
  // this session, so the handler runs without holding mu_.
  StatusOr<JsonValue> outcome =
      DispatchToSession(session, task.request);
  const bool closing = task.request.command == "close" && outcome.ok();
  std::string transcript_dump;
  if (closing && !config_.transcript_dir.empty()) {
    transcript_dump = session->TranscriptJson().Dump();
  }

  std::vector<Task> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(key);
    KBREPAIR_DCHECK(it != sessions_.end());
    it->second.last_activity = std::chrono::steady_clock::now();
    if (closing) {
      metrics_.sessions_completed.fetch_add(1, std::memory_order_relaxed);
      metrics_.sessions_active.fetch_sub(1, std::memory_order_relaxed);
      while (!it->second.waiting.empty()) {
        orphaned.push_back(std::move(it->second.waiting.front()));
        it->second.waiting.pop_front();
      }
      sessions_.erase(it);
    } else if (!it->second.waiting.empty()) {
      ready_.push_back(key);
      work_cv_.notify_one();
    } else {
      it->second.busy = false;
    }
  }

  if (!transcript_dump.empty()) WriteTranscriptFile(key, transcript_dump);
  if (outcome.ok()) {
    Complete(task, Status::Ok(), std::move(outcome).value());
  } else {
    Complete(task, outcome.status(), JsonValue::Null());
  }
  TaskDone();
  for (Task& orphan : orphaned) {
    Complete(orphan, Status::NotFound("session '" + key + "' was closed"),
             JsonValue::Null());
    TaskDone();
  }
}

StatusOr<JsonValue> SessionManager::DispatchToSession(
    RepairSession* session, const ServiceRequest& request) {
  if (request.command == "ask") return session->Ask(&metrics_);
  if (request.command == "answer") {
    return session->Answer(request.params, &metrics_);
  }
  if (request.command == "status") return session->StatusInfo();
  if (request.command == "snapshot") return session->Snapshot();
  if (request.command == "close") {
    return session->Close(request.params, &metrics_);
  }
  return Status::InvalidArgument("unknown command '" + request.command + "'");
}

JsonValue SessionManager::MetricsJson() {
  JsonValue out = metrics_.ToJson();
  JsonValue service = JsonValue::Object();
  service.Set("workers",
              JsonValue::Number(static_cast<int64_t>(config_.num_workers)));
  {
    std::lock_guard<std::mutex> lock(mu_);
    service.Set("commands_in_flight",
                JsonValue::Number(static_cast<int64_t>(tasks_in_flight_)));
    service.Set("sessions_registered",
                JsonValue::Number(static_cast<int64_t>(sessions_.size())));
  }
  out.Set("service", std::move(service));
  return out;
}

void SessionManager::Complete(Task& task, const Status& status,
                              JsonValue result) {
  metrics_.request_latency.Observe(task.timer.ElapsedSeconds());
  if (!status.ok()) {
    metrics_.errors_total.fetch_add(1, std::memory_order_relaxed);
  }
  if (task.done) task.done(status, std::move(result));
}

void SessionManager::TaskDone() {
  std::lock_guard<std::mutex> lock(mu_);
  KBREPAIR_DCHECK(tasks_in_flight_ > 0);
  --tasks_in_flight_;
  if (tasks_in_flight_ == 0) drain_cv_.notify_all();
}

void SessionManager::ReaperLoop() {
  for (;;) {
    std::vector<std::pair<std::string, std::string>> flushes;
    {
      std::unique_lock<std::mutex> lock(mu_);
      auto interval = std::chrono::milliseconds(
          config_.idle_ttl_seconds > 0
              ? std::max<int64_t>(
                    10, static_cast<int64_t>(config_.idle_ttl_seconds * 250))
              : 500);
      reaper_cv_.wait_for(lock, interval, [this] { return exiting_; });
      if (exiting_) return;
      if (config_.idle_ttl_seconds <= 0) continue;
      const auto now = std::chrono::steady_clock::now();
      for (auto it = sessions_.begin(); it != sessions_.end();) {
        SessionEntry& entry = it->second;
        const double idle =
            std::chrono::duration<double>(now - entry.last_activity).count();
        if (!entry.busy && entry.waiting.empty() &&
            idle > config_.idle_ttl_seconds) {
          if (!config_.transcript_dir.empty()) {
            flushes.emplace_back(it->first,
                                 entry.session->TranscriptJson().Dump());
          }
          metrics_.sessions_evicted.fetch_add(1, std::memory_order_relaxed);
          metrics_.sessions_active.fetch_sub(1, std::memory_order_relaxed);
          it = sessions_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (const auto& [id, dump] : flushes) WriteTranscriptFile(id, dump);
  }
}

void SessionManager::WriteTranscriptFile(const std::string& session_id,
                                         const std::string& dump) const {
  const std::string path =
      config_.transcript_dir + "/" + session_id + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return;  // best effort; the transcript also lives in memory
  out << dump << "\n";
}

}  // namespace kbrepair
