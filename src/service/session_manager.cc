#include "service/session_manager.h"

#include <stdio.h>
#include <stdlib.h>

#include <algorithm>
#include <utility>

#include "service/wal.h"
#include "util/failpoint.h"
#include "util/fs.h"
#include "util/log.h"
#include "util/logging.h"
#include "util/trace.h"

namespace kbrepair {

namespace {

constexpr char kComponent[] = "session_manager";

// Commands that do not address an existing session.
bool IsIndependentCommand(const std::string& command) {
  return command == "create" || command == "metrics" ||
         command == "trace" || command == "register-base" ||
         command == "list-bases" || command == "failpoint";
}

// Root span names must be string literals (ScopedSpan stores the
// pointer), so map each wire command to a static name.
const char* RpcSpanName(const std::string& command) {
  if (command == "create") return "rpc.create";
  if (command == "metrics") return "rpc.metrics";
  if (command == "trace") return "rpc.trace";
  if (command == "register-base") return "rpc.register-base";
  if (command == "list-bases") return "rpc.list-bases";
  if (command == "failpoint") return "rpc.failpoint";
  if (command == "ask") return "rpc.ask";
  if (command == "answer") return "rpc.answer";
  if (command == "status") return "rpc.status";
  if (command == "snapshot") return "rpc.snapshot";
  if (command == "close") return "rpc.close";
  return "rpc.other";
}

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// A worker owning one command for longer than this is considered
// stalled. With deadlines enabled a handler should finish within one
// deadline; 4x leaves room for the cancel-poll granularity.
int64_t StallThresholdMs(int64_t deadline_ms) {
  return deadline_ms > 0 ? std::max<int64_t>(4 * deadline_ms, 200) : 10000;
}

}  // namespace

SessionManager::SessionManager(ServiceConfig config)
    : config_(std::move(config)) {
  if (config_.num_workers == 0) config_.num_workers = 1;
  if (config_.max_queue == 0) config_.max_queue = 1;
  if (config_.wal_compact_every == 0) config_.wal_compact_every = 1;
  worker_busy_since_.reset(new std::atomic<int64_t>[config_.num_workers]);
  for (size_t i = 0; i < config_.num_workers; ++i) {
    worker_busy_since_[i].store(0, std::memory_order_relaxed);
  }
  stall_flagged_.assign(config_.num_workers, 0);
  // Memory governor: adopt the (cross-shard) instance from the config,
  // or own a private one whose gauges land in this manager's metrics.
  governor_ = config_.governor;
  if (governor_ == nullptr) {
    governor_ = std::make_shared<ResourceGovernor>(config_.mem_budget_bytes);
    governor_->AttachMetrics(&metrics_);
  }
  // Shared-base registry: adopt the (cross-shard) instance from the
  // config, or own a private one whose bases.jsonl lives next to the
  // WALs. An owned registry recovers its log here — before session
  // recovery, which may need to re-fork base-backed sessions — and this
  // manager's metrics carry its gauges.
  registry_ = config_.base_registry;
  if (registry_ == nullptr) {
    registry_ = std::make_shared<BaseRegistry>(config_.wal_dir);
    if (config_.recover && !config_.wal_dir.empty()) {
      (void)registry_->RecoverFromLog();
    }
    registry_->AttachMetrics(&metrics_);
    registry_->AttachGovernor(governor_);
  }
  // Threads spawn only after every member they read (governor_,
  // registry_) is in place: the reaper's first sweep can beat the rest
  // of this constructor on a loaded machine.
  workers_.reserve(config_.num_workers);
  for (size_t i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  reaper_ = std::thread([this] { ReaperLoop(); });
  if (!config_.trace_dir.empty()) {
    trace::Recorder::Instance().Enable(config_.trace_dir);
  }
  // Recovery runs on the constructing thread, before the caller can
  // submit anything; workers and reaper are already live but see each
  // session only once it is registered under mu_.
  if (config_.recover && !config_.wal_dir.empty()) RecoverSessions();
}

SessionManager::~SessionManager() { Shutdown(); }

void SessionManager::Submit(ServiceRequest request, Completion done) {
  metrics_.requests_total.fetch_add(1, std::memory_order_relaxed);
  Task task;
  task.request = std::move(request);
  task.done = std::move(done);

  Status rejection = Status::Ok();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Shutdown and overload rejections are Unavailable: the command was
    // never executed, so clients may retry it (with backoff) verbatim.
    if (stopping_) {
      metrics_.rejected_commands.fetch_add(1, std::memory_order_relaxed);
      rejection = Status::Unavailable("service is shutting down");
    } else if (tasks_in_flight_ >= config_.max_queue) {
      metrics_.rejected_overload.fetch_add(1, std::memory_order_relaxed);
      metrics_.rejected_commands.fetch_add(1, std::memory_order_relaxed);
      rejection = Status::Unavailable(
          "service overloaded (" + std::to_string(tasks_in_flight_) +
          " commands in flight, max " + std::to_string(config_.max_queue) +
          ")");
    } else if ((task.request.command == "create" ||
                task.request.command == "answer") &&
               WalDegraded()) {
      // Disk-degraded read-only mode: the commands that must append to
      // the WAL are shed at admission. status/snapshot/close still run —
      // closing sessions (WAL unlink) is how disk space comes back.
      metrics_.rejected_degraded.fetch_add(1, std::memory_order_relaxed);
      metrics_.rejected_commands.fetch_add(1, std::memory_order_relaxed);
      metrics_.wal_degraded.store(1, std::memory_order_relaxed);
      rejection = Status::ResourceExhausted(
          "WAL disk degraded (read-only): '" + task.request.command +
          "' needs a durable log append; retry with backoff once the log "
          "directory is writable again");
    } else if (task.request.command == "create" &&
               governor_->UnderPressure()) {
      metrics_.rejected_pressure.fetch_add(1, std::memory_order_relaxed);
      metrics_.rejected_commands.fetch_add(1, std::memory_order_relaxed);
      rejection = Status::ResourceExhausted(governor_->ShedMessage());
      // Start evicting right away instead of on the next reaper tick.
      reaper_kick_ = true;
      reaper_cv_.notify_all();
    } else if (IsIndependentCommand(task.request.command)) {
      ++tasks_in_flight_;
      ready_.push_back(std::move(task));
      work_cv_.notify_one();
      return;
    } else if (task.request.session_id.empty()) {
      rejection = Status::InvalidArgument(
          "command '" + task.request.command + "' needs a 'session' id");
    } else {
      auto it = sessions_.find(task.request.session_id);
      if (it == sessions_.end()) {
        rejection = Status::NotFound("unknown session '" +
                                     task.request.session_id + "'");
      } else {
        ++tasks_in_flight_;
        SessionEntry& entry = it->second;
        entry.waiting.push_back(std::move(task));
        // A session key sits in ready_ at most once: it is enqueued only
        // on the idle -> busy transition, and the owning worker re-enqueues
        // it (or clears `busy`) when it finishes a command.
        if (!entry.busy) {
          entry.busy = true;
          ready_.push_back(it->first);
        }
        work_cv_.notify_one();
        return;
      }
    }
  }
  Complete(task, rejection, JsonValue::Null());
}

uint64_t SessionManager::LastSessionNumber() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_session_;
}

size_t SessionManager::CommandsInFlight() {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_in_flight_;
}

size_t SessionManager::SessionsRegistered() {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

void SessionManager::SubmitLine(const std::string& line,
                                std::function<void(std::string)> emit) {
  StatusOr<ServiceRequest> parsed = ParseRequestLine(line);
  if (!parsed.ok()) {
    metrics_.requests_total.fetch_add(1, std::memory_order_relaxed);
    metrics_.errors_total.fetch_add(1, std::memory_order_relaxed);
    emit(ErrorResponseForLine(line, parsed.status()));
    return;
  }
  ServiceRequest request = std::move(parsed).value();
  std::string id = request.id;
  Submit(std::move(request),
         [id = std::move(id), emit = std::move(emit)](Status status,
                                                      JsonValue result) {
           ServiceRequest echo;
           echo.id = id;
           emit(status.ok() ? OkResponseLine(echo, std::move(result))
                            : ErrorResponseLine(echo, status));
         });
}

StatusOr<JsonValue> SessionManager::Execute(ServiceRequest request) {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  Status status = Status::Ok();
  JsonValue result;
  Submit(std::move(request), [&](Status s, JsonValue r) {
    std::lock_guard<std::mutex> lock(mu);
    status = std::move(s);
    result = std::move(r);
    ready = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return ready; });
  if (!status.ok()) return status;
  return result;
}

void SessionManager::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shut_down_) return;
    stopping_ = true;
    drain_cv_.wait(lock, [this] { return tasks_in_flight_ == 0; });
    exiting_ = true;
    shut_down_ = true;
  }
  work_cv_.notify_all();
  reaper_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  if (reaper_.joinable()) reaper_.join();
  // Final span flush: anything still buffered goes to one last trace
  // file so post-mortem tooling sees the tail of the run.
  if (!config_.trace_dir.empty() && trace::Recorder::enabled()) {
    (void)trace::Recorder::Instance().DrainToFile();
  }
  // Workers and reaper are gone, but the HTTP exporter thread may still
  // call StatuszJson()/ReadinessCauses(); keep touching sessions_ under
  // the lock. Flush transcripts of sessions that were never closed,
  // then drop them.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, entry] : sessions_) {
      if (!config_.transcript_dir.empty() && entry.session != nullptr) {
        WriteTranscriptFile(id, entry.session->TranscriptJson().Dump());
      }
      // The governor may outlive this shard (it is shared); hand the
      // bytes back so surviving shards see an accurate estimate.
      ReleaseChargeLocked(entry);
    }
    sessions_.clear();
  }
  logging::Info(kComponent, "shutdown complete");
}

void SessionManager::WorkerLoop(size_t worker_index) {
  std::atomic<int64_t>& busy_since = worker_busy_since_[worker_index];
  for (;;) {
    ReadyItem item{std::string()};
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return exiting_ || !ready_.empty(); });
      if (ready_.empty()) return;  // exiting_ after drain
      item = std::move(ready_.front());
      ready_.pop_front();
    }
    busy_since.store(SteadyNowNs(), std::memory_order_relaxed);
    if (std::holds_alternative<Task>(item)) {
      RunIndependent(std::move(std::get<Task>(item)));
    } else {
      RunSessionCommand(std::get<std::string>(item));
    }
    busy_since.store(0, std::memory_order_relaxed);
  }
}

void SessionManager::RunIndependent(Task task) {
  metrics_.queue_wait.Observe(task.timer.ElapsedSeconds());
  trace::ScopedSpan span(RpcSpanName(task.request.command));
  if (task.request.command == "create") {
    RunCreate(std::move(task));
    return;
  }
  if (task.request.command == "trace") {
    Complete(task, Status::Ok(), TraceJson(task.request.params));
    TaskDone();
    return;
  }
  if (task.request.command == "register-base") {
    StatusOr<JsonValue> registered =
        registry_->Register(task.request.params);
    if (registered.ok()) {
      Complete(task, Status::Ok(), std::move(registered).value());
    } else {
      Complete(task, registered.status(), JsonValue::Null());
    }
    TaskDone();
    return;
  }
  if (task.request.command == "list-bases") {
    Complete(task, Status::Ok(), registry_->ListJson());
    TaskDone();
    return;
  }
  if (task.request.command == "failpoint") {
    // Runtime fault-injection control for chaos harnesses driving a
    // live daemon: arm specs, disarm one point, or reset everything.
    // Failpoints are process-global, so any shard serves this.
    const JsonValue& params = task.request.params;
    Status applied = Status::Ok();
    if (params.Get("reset").AsBool(false)) failpoint::Reset();
    if (params.Get("disarm").is_string()) {
      failpoint::Disarm(params.Get("disarm").AsString());
    }
    if (params.Get("spec").is_string()) {
      applied = failpoint::Configure(params.Get("spec").AsString());
    }
    if (!applied.ok()) {
      Complete(task, applied, JsonValue::Null());
      TaskDone();
      return;
    }
    JsonValue out = JsonValue::Object();
    JsonValue armed = JsonValue::Array();
    for (const std::string& name : failpoint::ArmedNames()) {
      armed.Append(JsonValue::String(name));
    }
    out.Set("armed", std::move(armed));
    Complete(task, Status::Ok(), std::move(out));
    TaskDone();
    return;
  }
  // metrics
  Complete(task, Status::Ok(), MetricsJson());
  TaskDone();
}

void SessionManager::RunCreate(Task task) {
  std::string id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!task.request.assigned_session_id.empty()) {
      // The sharded front-end already chose the id (so it routes to this
      // shard). Keep our own counter ahead of it, so a later
      // self-assigned id can never collide.
      id = task.request.assigned_session_id;
      if (id.size() > 2 && id.compare(0, 2, "s-") == 0) {
        char* end = nullptr;
        const unsigned long long n = ::strtoull(id.c_str() + 2, &end, 10);
        if (end != nullptr && *end == '\0' && n > next_session_) {
          next_session_ = n;
        }
      }
    } else {
      id = "s-" + std::to_string(++next_session_);
    }
  }
  // Correlate every log line below (WAL failures, engine demotions in
  // the census) with the session being created.
  logging::ScopedSessionId log_scope(id);
  // Log the create before building the session: a crash between the two
  // recovers an empty session instead of losing an acknowledged one. If
  // the log cannot be made durable the command is rejected outright.
  std::unique_ptr<SessionWal> wal;
  if (!config_.wal_dir.empty()) {
    StatusOr<std::unique_ptr<SessionWal>> opened =
        SessionWal::Open(config_.wal_dir, id);
    Status logged = opened.status();
    bool fsync_failed = false;
    bool disk_full = false;
    if (opened.ok()) {
      wal = std::move(opened).value();
      logged = wal->Append(SessionWal::CreateRecord(task.request.params),
                           &fsync_failed, &disk_full);
    }
    if (!logged.ok()) {
      if (fsync_failed) {
        metrics_.wal_fsync_failures.fetch_add(1, std::memory_order_relaxed);
        metrics_.last_wal_fsync_failure_ns.store(MonotonicNowNs(),
                                                 std::memory_order_relaxed);
      }
      if (disk_full) {
        // Flip the shard into disk-degraded mode: further create/answer
        // traffic is shed at admission until the reaper's write probe
        // sees the directory writable again.
        metrics_.wal_disk_full_failures.fetch_add(1,
                                                  std::memory_order_relaxed);
        metrics_.last_wal_disk_full_ns.store(MonotonicNowNs(),
                                             std::memory_order_relaxed);
        metrics_.wal_degraded.store(1, std::memory_order_relaxed);
        logged = Status::ResourceExhausted("WAL disk full: " +
                                           logged.message());
      }
      logging::Warn(kComponent, "create rejected: WAL append failed")
          .With("error", logged.message());
      metrics_.rejected_commands.fetch_add(1, std::memory_order_relaxed);
      if (wal != nullptr) (void)wal->Remove();
      Complete(task, logged, JsonValue::Null());
      TaskDone();
      return;
    }
    metrics_.wal_appends.fetch_add(1, std::memory_order_relaxed);
  }
  const trace::PhaseTotals phases_before = trace::ThreadPhaseTotals();
  // A create naming a registered base forks the shared snapshot in
  // O(delta); everything else builds a private KB the pre-registry way.
  const std::string base_name = task.request.params.Get("base").AsString();
  StatusOr<std::unique_ptr<RepairSession>> created = Status::Ok();
  if (!base_name.empty()) {
    StatusOr<BaseRegistry::Handle> base = registry_->Acquire(base_name);
    if (!base.ok()) {
      created = base.status();
    } else {
      WallTimer fork_timer;
      created = RepairSession::CreateFromBase(id, task.request.params,
                                              std::move(base).value(),
                                              config_.deadline_ms);
      if (created.ok()) {
        metrics_.base_forks.fetch_add(1, std::memory_order_relaxed);
        metrics_.base_fork_latency.Observe(fork_timer.ElapsedSeconds());
      }
    }
  } else {
    created =
        RepairSession::Create(id, task.request.params, config_.deadline_ms);
  }
  if (!created.ok()) {
    // Never-registered sessions must not resurrect on recovery.
    if (wal != nullptr) (void)wal->Remove();
    metrics_.sessions_failed.fetch_add(1, std::memory_order_relaxed);
    Complete(task, created.status(), JsonValue::Null());
    TaskDone();
    return;
  }
  std::unique_ptr<RepairSession> session = std::move(created).value();
  // The initial census (Begin) ran on this thread; attribute its phase
  // time to the session's (strategy, engine) slot.
  session->ObservePhases(&metrics_,
                         trace::ThreadPhaseTotals().Since(phases_before));
  session->RecordOpened(&metrics_);
  if (wal != nullptr) {
    session->AttachWal(std::move(wal), config_.wal_compact_every);
  }
  // Compute the response before registering: once the entry is visible,
  // another worker could legally run a command against it.
  JsonValue info = session->StatusInfo();
  {
    std::lock_guard<std::mutex> lock(mu_);
    SessionEntry entry;
    entry.session = std::move(session);
    entry.last_activity = std::chrono::steady_clock::now();
    auto emplaced = sessions_.emplace(id, std::move(entry));
    ChargeSessionLocked(emplaced.first->second);
    metrics_.sessions_opened.fetch_add(1, std::memory_order_relaxed);
    metrics_.sessions_active.fetch_add(1, std::memory_order_relaxed);
  }
  Complete(task, Status::Ok(), std::move(info));
  TaskDone();
}

void SessionManager::RunSessionCommand(const std::string& key) {
  Task task;
  RepairSession* session = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(key);
    KBREPAIR_DCHECK(it != sessions_.end()) << "scheduled session vanished";
    KBREPAIR_DCHECK(!it->second.waiting.empty());
    task = std::move(it->second.waiting.front());
    it->second.waiting.pop_front();
    session = it->second.session.get();
  }
  // Queue wait includes time parked behind earlier commands of the same
  // session — that is real scheduling delay, not execution time.
  metrics_.queue_wait.Observe(task.timer.ElapsedSeconds());
  // Every log line the handler emits (WAL append, compaction, demotion,
  // deadline) carries this session id without explicit plumbing.
  logging::ScopedSessionId log_scope(key);

  // The busy flag keeps every other worker (and the reaper) away from
  // this session, so the handler runs without holding mu_.
  StatusOr<JsonValue> outcome = [&]() -> StatusOr<JsonValue> {
    trace::ScopedSpan span(RpcSpanName(task.request.command));
    if (span.recording()) span.Annotate("session=" + key);
    if (failpoint::ShouldFail("worker.stall")) {
      // Simulate a wedged handler: hold the worker past the watchdog
      // threshold, then fail the command the way an expired deadline
      // would (the command had no effect; retrying is safe).
      const int64_t stall_ms = std::min<int64_t>(
          std::max<int64_t>(2 * StallThresholdMs(config_.deadline_ms), 1200),
          3000);
      std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
      return Status::DeadlineExceeded("worker stalled (failpoint)");
    }
    session->ArmDeadline(config_.deadline_ms);
    StatusOr<JsonValue> result = DispatchToSession(session, task.request);
    session->DisarmDeadline();
    return result;
  }();
  const bool closing = task.request.command == "close" && outcome.ok();
  std::string transcript_dump;
  if (closing && !config_.transcript_dir.empty()) {
    transcript_dump = session->TranscriptJson().Dump();
  }

  std::vector<Task> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(key);
    KBREPAIR_DCHECK(it != sessions_.end());
    it->second.last_activity = std::chrono::steady_clock::now();
    if (closing) {
      ReleaseChargeLocked(it->second);
      metrics_.sessions_completed.fetch_add(1, std::memory_order_relaxed);
      metrics_.sessions_active.fetch_sub(1, std::memory_order_relaxed);
      while (!it->second.waiting.empty()) {
        orphaned.push_back(std::move(it->second.waiting.front()));
        it->second.waiting.pop_front();
      }
      sessions_.erase(it);
    } else if (!it->second.waiting.empty()) {
      ready_.push_back(key);
      work_cv_.notify_one();
    } else {
      it->second.busy = false;
    }
    if (!closing) ChargeSessionLocked(it->second);
  }

  if (!transcript_dump.empty()) WriteTranscriptFile(key, transcript_dump);
  if (outcome.ok()) {
    Complete(task, Status::Ok(), std::move(outcome).value());
  } else {
    Complete(task, outcome.status(), JsonValue::Null());
  }
  TaskDone();
  for (Task& orphan : orphaned) {
    Complete(orphan, Status::NotFound("session '" + key + "' was closed"),
             JsonValue::Null());
    TaskDone();
  }
}

StatusOr<JsonValue> SessionManager::DispatchToSession(
    RepairSession* session, const ServiceRequest& request) {
  if (request.command == "ask") return session->Ask(&metrics_);
  if (request.command == "answer") {
    return session->Answer(request.params, &metrics_);
  }
  if (request.command == "status") return session->StatusInfo();
  if (request.command == "snapshot") return session->Snapshot();
  if (request.command == "close") {
    // While the shard is disk-degraded the close record is skipped: the
    // append would fail anyway, and the WAL unlink is what frees space.
    return session->Close(request.params, &metrics_, WalDegraded());
  }
  return Status::InvalidArgument("unknown command '" + request.command + "'");
}

JsonValue SessionManager::MetricsJson() {
  JsonValue out = metrics_.ToJson();
  JsonValue service = JsonValue::Object();
  service.Set("workers",
              JsonValue::Number(static_cast<int64_t>(config_.num_workers)));
  {
    std::lock_guard<std::mutex> lock(mu_);
    service.Set("commands_in_flight",
                JsonValue::Number(static_cast<int64_t>(tasks_in_flight_)));
    service.Set("sessions_registered",
                JsonValue::Number(static_cast<int64_t>(sessions_.size())));
  }
  out.Set("service", std::move(service));
  return out;
}

std::vector<std::string> SessionManager::ReadinessCauses() {
  std::vector<std::string> causes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || shut_down_) causes.push_back("shutdown-in-progress");
  }
  // A worker currently past the stall threshold means new commands can
  // queue behind a wedged one — stop sending traffic here until it
  // clears.
  const int64_t threshold_ns =
      StallThresholdMs(config_.deadline_ms) * 1000000;
  const int64_t now_ns = SteadyNowNs();
  for (size_t i = 0; i < config_.num_workers; ++i) {
    const int64_t since =
        worker_busy_since_[i].load(std::memory_order_relaxed);
    if (since != 0 && now_ns - since > threshold_ns) {
      causes.push_back("worker-stalled: worker " + std::to_string(i) +
                       " busy " + std::to_string((now_ns - since) / 1000000) +
                       " ms");
      break;  // one cause line is enough
    }
  }
  // Recent degrading events keep the instance out of rotation for a
  // hold-down window: a disk that failed one fsync is likely to fail
  // the next, and a demoted engine means the latency bound regressed.
  const int64_t hold_ns =
      static_cast<int64_t>(kReadinessHoldDownSeconds * 1e9);
  const int64_t mono_now = MonotonicNowNs();
  const int64_t last_fsync =
      metrics_.last_wal_fsync_failure_ns.load(std::memory_order_relaxed);
  if (last_fsync != 0 && mono_now - last_fsync < hold_ns) {
    causes.push_back("recent-wal-fsync-failure");
  }
  const int64_t last_demotion =
      metrics_.last_engine_demotion_ns.load(std::memory_order_relaxed);
  if (last_demotion != 0 && mono_now - last_demotion < hold_ns) {
    causes.push_back("recent-engine-demotion");
  }
  // Level-based (no hold-down): these clear the instant the condition
  // does, because the reaper probe / evictions are what resolve them.
  if (WalDegraded()) causes.push_back("wal-disk-degraded");
  if (governor_->UnderPressure()) causes.push_back("memory-pressure");
  return causes;
}

bool SessionManager::WalDegraded() const {
  const int64_t last_full =
      metrics_.last_wal_disk_full_ns.load(std::memory_order_relaxed);
  return last_full != 0 &&
         last_full > disk_recovered_ns_.load(std::memory_order_relaxed);
}

void SessionManager::ChargeSessionLocked(SessionEntry& entry) {
  if (entry.session == nullptr) return;
  const int64_t now = entry.session->EstimateMemoryBytes();
  governor_->AdjustSessionBytes(now - entry.charged_bytes);
  entry.charged_bytes = now;
}

void SessionManager::ReleaseChargeLocked(SessionEntry& entry) {
  governor_->AdjustSessionBytes(-entry.charged_bytes);
  entry.charged_bytes = 0;
}

void SessionManager::EvictForPressureLocked(
    std::vector<std::pair<std::string, std::string>>* flushes) {
  if (governor_->BytesOverEvictTarget() <= 0) return;
  // Oldest first: the session idle the longest is the least likely to
  // come back, and recovery (its WAL survives the eviction) makes the
  // eviction loss-free for clients that do.
  std::vector<std::pair<std::chrono::steady_clock::time_point, std::string>>
      idle;
  for (const auto& [id, entry] : sessions_) {
    if (!entry.busy && entry.waiting.empty()) {
      idle.emplace_back(entry.last_activity, id);
    }
  }
  std::sort(idle.begin(), idle.end());
  for (const auto& [when, id] : idle) {
    if (governor_->BytesOverEvictTarget() <= 0) break;
    (void)when;
    auto it = sessions_.find(id);
    if (it == sessions_.end()) continue;
    if (!config_.transcript_dir.empty()) {
      flushes->emplace_back(id, it->second.session->TranscriptJson().Dump());
    }
    const int64_t freed = it->second.charged_bytes;
    ReleaseChargeLocked(it->second);
    metrics_.pressure_evictions.fetch_add(1, std::memory_order_relaxed);
    metrics_.sessions_evicted.fetch_add(1, std::memory_order_relaxed);
    metrics_.sessions_active.fetch_sub(1, std::memory_order_relaxed);
    logging::Info(kComponent, "evicted session under memory pressure")
        .With("session", id)
        .With("freed_bytes", freed);
    sessions_.erase(it);
  }
}

JsonValue SessionManager::StatuszJson() {
  JsonValue out = JsonValue::Object();
  out.Set("uptime_s", JsonValue::Number(
                          static_cast<double>(MonotonicNowNs() - start_ns_) /
                          1e9));
  out.Set("workers",
          JsonValue::Number(static_cast<int64_t>(config_.num_workers)));
  out.Set("max_queue",
          JsonValue::Number(static_cast<int64_t>(config_.max_queue)));
  out.Set("deadline_ms", JsonValue::Number(config_.deadline_ms));
  out.Set("idle_ttl_s", JsonValue::Number(config_.idle_ttl_seconds));
  out.Set("wal", JsonValue::Bool(!config_.wal_dir.empty()));
  out.Set("wal_degraded", JsonValue::Bool(WalDegraded()));
  out.Set("mem_budget_bytes", JsonValue::Number(governor_->budget_bytes()));
  out.Set("mem_estimated_bytes",
          JsonValue::Number(governor_->estimated_bytes()));
  out.Set("mem_pressure", JsonValue::Bool(governor_->UnderPressure()));
  out.Set("tracing", JsonValue::Bool(!config_.trace_dir.empty()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.Set("stopping", JsonValue::Bool(stopping_));
    out.Set("commands_in_flight",
            JsonValue::Number(static_cast<int64_t>(tasks_in_flight_)));
    out.Set("queue_depth",
            JsonValue::Number(static_cast<int64_t>(ready_.size())));
    JsonValue ids = JsonValue::Array();
    for (const auto& [id, entry] : sessions_) {
      (void)entry;
      ids.Append(JsonValue::String(id));
    }
    out.Set("sessions", std::move(ids));
  }
  out.Set("sessions_active",
          JsonValue::Number(
              metrics_.sessions_active.load(std::memory_order_relaxed)));
  JsonValue readiness = JsonValue::Array();
  for (const std::string& cause : ReadinessCauses()) {
    readiness.Append(JsonValue::String(cause));
  }
  out.Set("readiness_causes", std::move(readiness));
  return out;
}

JsonValue SessionManager::TraceJson(const JsonValue& params) {
  trace::Recorder& recorder = trace::Recorder::Instance();
  JsonValue out = JsonValue::Object();
  const bool enabled = trace::Recorder::enabled();
  out.Set("enabled", JsonValue::Bool(enabled));
  if (!enabled) {
    out.Set("spans", JsonValue::Array());
    return out;
  }
  std::vector<trace::SpanRecord> spans;
  if (recorder.has_sink()) {
    StatusOr<std::string> file = recorder.DrainToFile(&spans);
    if (file.ok()) {
      out.Set("file", JsonValue::String(*file));
    } else {
      // The spans were still drained; surface the sink failure.
      out.Set("file_error", JsonValue::String(file.status().message()));
    }
  } else {
    spans = recorder.Drain();
  }
  // Responses are one wire line; cap the inline span list (the full
  // drain is in the file when a sink is configured).
  const int64_t limit = params.Get("limit").AsInt(4096);
  JsonValue array = JsonValue::Array();
  int64_t emitted = 0;
  for (const trace::SpanRecord& span : spans) {
    if (emitted >= limit) break;
    array.Append(trace::SpanToJson(span));
    ++emitted;
  }
  out.Set("spans", std::move(array));
  out.Set("total_spans",
          JsonValue::Number(static_cast<int64_t>(spans.size())));
  out.Set("dropped",
          JsonValue::Number(static_cast<int64_t>(recorder.dropped())));
  return out;
}

void SessionManager::Complete(Task& task, const Status& status,
                              JsonValue result) {
  metrics_.request_latency.Observe(task.timer.ElapsedSeconds());
  if (!status.ok()) {
    metrics_.errors_total.fetch_add(1, std::memory_order_relaxed);
    if (status.code() == StatusCode::kDeadlineExceeded) {
      metrics_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      logging::Warn(kComponent, "command deadline exceeded")
          .With("command", task.request.command)
          .With("elapsed_s", task.timer.ElapsedSeconds());
    }
  }
  if (task.done) task.done(status, std::move(result));
}

void SessionManager::TaskDone() {
  std::lock_guard<std::mutex> lock(mu_);
  KBREPAIR_DCHECK(tasks_in_flight_ > 0);
  --tasks_in_flight_;
  if (tasks_in_flight_ == 0) drain_cv_.notify_all();
}

void SessionManager::ReaperLoop() {
  for (;;) {
    std::vector<std::pair<std::string, std::string>> flushes;
    bool probe_disk = false;
    bool pressure = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      auto interval = std::chrono::milliseconds(
          config_.idle_ttl_seconds > 0
              ? std::max<int64_t>(
                    10, static_cast<int64_t>(config_.idle_ttl_seconds * 250))
              : 500);
      // React fast while unhealthy: disk-recovery probes and pressure
      // eviction should land within tens of milliseconds, not half a
      // second — clients are being shed the whole time.
      if (WalDegraded() || governor_->BytesOverEvictTarget() > 0) {
        interval = std::min<std::chrono::milliseconds>(
            interval, std::chrono::milliseconds(50));
      }
      reaper_cv_.wait_for(lock, interval,
                          [this] { return exiting_ || reaper_kick_; });
      reaper_kick_ = false;
      if (exiting_) return;
      CheckWorkerStalls(std::chrono::steady_clock::now());
      metrics_.wal_degraded.store(WalDegraded() ? 1 : 0,
                                  std::memory_order_relaxed);
      probe_disk = WalDegraded() && !config_.wal_dir.empty();
      if (config_.idle_ttl_seconds > 0) {
        const auto now = std::chrono::steady_clock::now();
        for (auto it = sessions_.begin(); it != sessions_.end();) {
          SessionEntry& entry = it->second;
          const double idle =
              std::chrono::duration<double>(now - entry.last_activity)
                  .count();
          if (!entry.busy && entry.waiting.empty() &&
              idle > config_.idle_ttl_seconds) {
            if (!config_.transcript_dir.empty()) {
              flushes.emplace_back(it->first,
                                   entry.session->TranscriptJson().Dump());
            }
            ReleaseChargeLocked(entry);
            metrics_.sessions_evicted.fetch_add(1, std::memory_order_relaxed);
            metrics_.sessions_active.fetch_sub(1, std::memory_order_relaxed);
            logging::Info(kComponent, "evicted idle session")
                .With("session", it->first)
                .With("idle_s", idle);
            it = sessions_.erase(it);
          } else {
            ++it;
          }
        }
      }
      EvictForPressureLocked(&flushes);
      pressure = governor_->UnderPressure();
    }
    for (const auto& [id, dump] : flushes) WriteTranscriptFile(id, dump);
    if (probe_disk) {
      // File I/O outside the lock. A successful probe timestamps past
      // every failure seen so far, so WalDegraded() flips healthy; a
      // failure that lands after the probe re-degrades, as it should.
      const Status probed = ProbeWalDirWritable(config_.wal_dir);
      if (probed.ok()) {
        disk_recovered_ns_.store(MonotonicNowNs(), std::memory_order_relaxed);
        metrics_.wal_degraded.store(0, std::memory_order_relaxed);
        logging::Info(kComponent,
                      "WAL directory writable again; leaving disk-degraded "
                      "mode");
      }
    }
    // Orphaned shared bases age out on the same cadence. Refcounts keep
    // any base with live sessions (on any shard) safe; the sweep is
    // mutex-serialized, so shards sharing one registry may all drive it.
    // Under memory pressure every orphaned base goes immediately — they
    // are pure cache and re-registerable.
    registry_->SweepExpired(pressure ? 1e-9 : config_.idle_ttl_seconds);
  }
}

void SessionManager::WriteTranscriptFile(const std::string& session_id,
                                         const std::string& dump) {
  const std::string path =
      config_.transcript_dir + "/" + session_id + ".json";
  // Atomic (tmp + fsync + rename): readers never see a torn transcript,
  // and failures are visible instead of silently dropping the file.
  const Status status = AtomicWriteFile(path, dump + "\n");
  if (!status.ok()) {
    metrics_.transcript_write_failures.fetch_add(1, std::memory_order_relaxed);
    logging::Error(kComponent, "transcript flush failed")
        .With("session", session_id)
        .With("path", path)
        .With("error", status.message());
  }
}

void SessionManager::RecoverSessions() {
  for (const std::string& id : ListWalSessionIds(config_.wal_dir)) {
    const std::string path = config_.wal_dir + "/" + id + ".wal";
    // Keep fresh "s-N" ids ahead of every WAL ever seen — even ones we
    // quarantine — so a new session never shadows an old log.
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (id.size() > 2 && id.compare(0, 2, "s-") == 0) {
        char* end = nullptr;
        const unsigned long long n = ::strtoull(id.c_str() + 2, &end, 10);
        if (end != nullptr && *end == '\0' && n > next_session_) {
          next_session_ = n;
        }
      }
    }
    StatusOr<WalRecovery> read = ReadWalFile(path, id);
    Status failure = read.status();
    std::unique_ptr<RepairSession> session;
    if (read.ok()) {
      if (read->closed) {
        // The close was logged before it ran, so the session is done as
        // far as any acknowledged command goes; drop its log.
        StatusOr<std::unique_ptr<SessionWal>> wal =
            SessionWal::Open(config_.wal_dir, id);
        if (wal.ok()) (void)(*wal)->Remove();
        continue;
      }
      if (read->dropped_torn_tail) {
        logging::Warn(kComponent,
                      "WAL: dropped torn tail record (crash mid-append)")
            .With("session", id)
            .With("path", path)
            .With("record", static_cast<uint64_t>(read->torn_record_index))
            .With("offset", read->torn_byte_offset);
      }
      // A create record carrying "base" re-forks from the registry
      // (recovered before sessions — see the constructor) instead of
      // rebuilding a private KB; the replayed dialogue is identical
      // either way.
      const std::string base_name =
          read->create_params.Get("base").AsString();
      StatusOr<std::unique_ptr<RepairSession>> recovered = Status::Ok();
      if (!base_name.empty()) {
        StatusOr<BaseRegistry::Handle> base = registry_->Acquire(base_name);
        if (base.ok()) {
          recovered = RepairSession::RecoverFromBase(
              id, read->create_params, std::move(base).value(),
              read->entries);
          if (recovered.ok()) {
            metrics_.base_forks.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          recovered = base.status();
        }
      } else {
        recovered =
            RepairSession::Recover(id, read->create_params, read->entries);
      }
      if (recovered.ok()) {
        session = std::move(recovered).value();
      } else {
        failure = recovered.status();
      }
    }
    if (session == nullptr) {
      // Keep the daemon up: set the broken log aside for inspection and
      // carry on recovering the rest.
      logging::Error(kComponent, "could not recover session; quarantining WAL")
          .With("session", id)
          .With("error", failure.message())
          .With("quarantine", path + ".corrupt");
      if (::rename(path.c_str(), (path + ".corrupt").c_str()) != 0) {
        logging::Error(kComponent, "quarantine rename failed")
            .With("session", id)
            .With("path", path);
      }
      metrics_.sessions_failed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    StatusOr<std::unique_ptr<SessionWal>> wal =
        SessionWal::Open(config_.wal_dir, id);
    if (wal.ok()) {
      session->AttachWal(std::move(wal).value(), config_.wal_compact_every);
    } else {
      logging::Warn(kComponent,
                    "session recovered but its WAL could not be reopened")
          .With("session", id)
          .With("error", wal.status().message());
    }
    session->RecordOpened(&metrics_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      SessionEntry entry;
      entry.session = std::move(session);
      entry.last_activity = std::chrono::steady_clock::now();
      auto emplaced = sessions_.emplace(id, std::move(entry));
      ChargeSessionLocked(emplaced.first->second);
    }
    metrics_.sessions_recovered.fetch_add(1, std::memory_order_relaxed);
    metrics_.sessions_opened.fetch_add(1, std::memory_order_relaxed);
    metrics_.sessions_active.fetch_add(1, std::memory_order_relaxed);
    logging::Info(kComponent, "recovered session")
        .With("session", id)
        .With("answers_replayed", read->entries.size());
  }
}

void SessionManager::CheckWorkerStalls(
    std::chrono::steady_clock::time_point now) {
  const int64_t threshold_ns =
      StallThresholdMs(config_.deadline_ms) * 1000000;
  const int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          now.time_since_epoch())
          .count();
  for (size_t i = 0; i < config_.num_workers; ++i) {
    const int64_t since =
        worker_busy_since_[i].load(std::memory_order_relaxed);
    if (since != 0 && now_ns - since > threshold_ns &&
        stall_flagged_[i] != since) {
      stall_flagged_[i] = since;  // one increment per stuck command
      metrics_.worker_stalls.fetch_add(1, std::memory_order_relaxed);
      logging::Warn(kComponent, "worker has owned one command past the "
                                "stall threshold")
          .With("worker", i)
          .With("busy_ms", (now_ns - since) / 1000000)
          .With("threshold_ms", threshold_ns / 1000000);
    }
  }
}

}  // namespace kbrepair
