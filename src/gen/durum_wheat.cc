#include "gen/durum_wheat.h"

#include <array>
#include <string>
#include <vector>

#include "util/logging.h"


namespace kbrepair {

namespace {

// Agronomy-flavoured predicate stems (from the paper's excerpt and the
// MTSR 2016 companion paper's domain).
constexpr std::array<const char*, 20> kPredicateStems = {
    "hasPrecedent",     "isCultivatedOn",  "isAtGrowingStage",
    "isPerformedOn",    "requiresSoil",    "treatedWith",
    "hasDisease",       "appliedOn",       "harvestedAt",
    "sownIn",           "rotatesWith",     "fertilizedWith",
    "irrigatedBy",      "hasGrowthStage",  "precededBy",
    "hasVariety",       "hasYield",        "infestedBy",
    "protectedBy",      "suitableFor",
};

constexpr std::array<const char*, 12> kConstantStems = {
    "soil",      "parcel",   "durum",   "soybean",  "sorghum", "vacoparis",
    "tillering", "nitrogen", "fungus",  "rotation", "stage",   "season",
};

}  // namespace

StatusOr<DurumWheatKb> GenerateDurumWheatKb(
    const DurumWheatOptions& options) {
  // The reconstruction is deterministic by design (the cluster layout is
  // solved to hit the published characteristics exactly); the seed is
  // reserved for future randomized padding.
  (void)options.seed;
  DurumWheatKb result;
  KnowledgeBase& kb = result.kb;
  SymbolTable& symbols = kb.symbols();

  uint64_t constant_counter = 0;
  auto fresh_constant = [&]() {
    const char* stem =
        kConstantStems[constant_counter % kConstantStems.size()];
    return symbols.InternConstant(std::string(stem) + "_" +
                                  std::to_string(++constant_counter));
  };
  size_t predicate_counter = 0;
  auto fresh_predicate = [&](int arity) {
    const char* stem =
        kPredicateStems[predicate_counter % kPredicateStems.size()];
    return symbols.InternPredicate(
        std::string(stem) + std::to_string(predicate_counter++), arity);
  };

  const TermId j0 = symbols.InternVariable("J0");
  const TermId j1 = symbols.InternVariable("J1");
  const TermId l0 = symbols.InternVariable("L0");
  const TermId l1 = symbols.InternVariable("L1");
  const TermId l2 = symbols.InternVariable("L2");

  // ---------------------------------------------------------------------
  // Eight 2-atom CDDs: q0(J0, L0), q1(J0, L1) -> ⊥.
  //
  // Seven are violated by an (8,2) grid cluster — 8 q0-variants and 2
  // q1-variants sharing one join constant: 16 conflicts over 10 atoms,
  // each conflict overlapping 8 others (the published avg scope) and
  // each q1 "hub" sitting in 8 conflicts, which is what lets opti-mcd
  // resolve many conflicts per question, as in Figure 2(c). The eighth
  // is a (13,1) star — 13 conflicts through a single hub, mirroring the
  // paper's best case where one question settles ~13 conflicts.
  //
  // Cluster 6 is *routed*: its q0 facts are asserted as chain origins
  // and only reach q0 through a TGD, so its 16 conflicts surface during
  // the chase.
  struct PairCluster {
    PredicateId q0, q1;
    int m0 = 8;
    int m1 = 2;
    PredicateId origin = kInvalidPredicate;  // routed clusters only
  };
  std::vector<PairCluster> pair_clusters;
  for (int c = 0; c < 8; ++c) {
    PairCluster cluster;
    cluster.q0 = fresh_predicate(2);
    cluster.q1 = fresh_predicate(2);
    if (c == 7) {
      cluster.m0 = 13;
      cluster.m1 = 1;
    }
    KBREPAIR_ASSIGN_OR_RETURN(
        Cdd cdd, Cdd::Create({Atom(cluster.q0, {j0, l0}),
                              Atom(cluster.q1, {j0, l1})},
                             symbols));
    kb.cdds().push_back(std::move(cdd));
    if (c == 6) {
      cluster.origin = symbols.InternPredicate("plannedTreatment", 2);
      KBREPAIR_ASSIGN_OR_RETURN(
          Tgd chain,
          Tgd::Create({Atom(cluster.origin, {j0, l0})},
                      {Atom(cluster.q0, {j0, l0})}, symbols));
      kb.tgds().push_back(std::move(chain));
    }
    pair_clusters.push_back(cluster);
  }

  // ---------------------------------------------------------------------
  // Five 3-atom CDDs: q0(J0, L0), q1(J0, J1), q2(J1, L1) -> ⊥,
  // each violated by one (2,2,3) cluster: 12 conflicts over 7 atoms.
  struct TripleCluster {
    PredicateId q0, q1, q2;
  };
  std::vector<TripleCluster> triple_clusters;
  for (int c = 0; c < 5; ++c) {
    TripleCluster cluster;
    cluster.q0 = fresh_predicate(2);
    cluster.q1 = fresh_predicate(2);
    cluster.q2 = fresh_predicate(2);
    KBREPAIR_ASSIGN_OR_RETURN(
        Cdd cdd, Cdd::Create({Atom(cluster.q0, {j0, l0}),
                              Atom(cluster.q1, {j0, j1}),
                              Atom(cluster.q2, {j1, l1})},
                             symbols));
    kb.cdds().push_back(std::move(cdd));
    triple_clusters.push_back(cluster);
  }

  // ---------------------------------------------------------------------
  // Remaining v1 constraints (satisfied by the data): 27 - 13 = 14.
  auto add_satisfied_cdds = [&](size_t count) -> Status {
    for (size_t c = 0; c < count; ++c) {
      const PredicateId a = fresh_predicate(2);
      const PredicateId b = fresh_predicate(2);
      KBREPAIR_ASSIGN_OR_RETURN(
          Cdd cdd,
          Cdd::Create({Atom(a, {j0, l0}), Atom(b, {j0, l1})}, symbols));
      kb.cdds().push_back(std::move(cdd));
    }
    return Status::Ok();
  };
  KBREPAIR_RETURN_IF_ERROR(add_satisfied_cdds(14));

  // ---------------------------------------------------------------------
  // v2: five projection constraints over the triple clusters — they are
  // violated by atoms already in conflict, adding conflicts but no new
  // dirty atoms — plus 68 satisfied constraints (total 100 CDDs).
  if (options.version == DurumWheatVersion::kV2) {
    for (int c = 0; c < 5; ++c) {
      const TripleCluster& cluster = triple_clusters[static_cast<size_t>(c)];
      if (c < 3) {
        // q0(J0, L0), q1(J0, L1): 2 x 2 = 4 extra conflicts.
        KBREPAIR_ASSIGN_OR_RETURN(
            Cdd cdd, Cdd::Create({Atom(cluster.q0, {j0, l0}),
                                  Atom(cluster.q1, {j0, l1})},
                                 symbols));
        kb.cdds().push_back(std::move(cdd));
        result.info.planned_conflicts += 4;
        result.info.planned_naive_conflicts += 4;
      } else {
        // q1(L0, J1), q2(J1, L2): 2 x 3 = 6 extra conflicts.
        KBREPAIR_ASSIGN_OR_RETURN(
            Cdd cdd, Cdd::Create({Atom(cluster.q1, {l0, j1}),
                                  Atom(cluster.q2, {j1, l2})},
                                 symbols));
        kb.cdds().push_back(std::move(cdd));
        result.info.planned_conflicts += 6;
        result.info.planned_naive_conflicts += 6;
      }
    }
    KBREPAIR_RETURN_IF_ERROR(add_satisfied_cdds(68));
  }

  // ---------------------------------------------------------------------
  // Facts for the pair clusters: m0 q0-variants and m1 q1-variants
  // sharing one join constant and differing in the lone position.
  for (const PairCluster& cluster : pair_clusters) {
    const TermId join_a = fresh_constant();
    const bool routed = cluster.origin != kInvalidPredicate;
    for (int m = 0; m < cluster.m0; ++m) {
      kb.facts().Add(Atom(routed ? cluster.origin : cluster.q0,
                          {join_a, fresh_constant()}));
    }
    for (int m = 0; m < cluster.m1; ++m) {
      kb.facts().Add(Atom(cluster.q1, {join_a, fresh_constant()}));
    }
    const size_t conflicts =
        static_cast<size_t>(cluster.m0) * static_cast<size_t>(cluster.m1);
    result.info.planned_conflicts += conflicts;
    if (routed) {
      result.info.planned_chase_conflicts += conflicts;
    } else {
      result.info.planned_naive_conflicts += conflicts;
    }
    result.info.atoms_in_conflicts +=
        static_cast<size_t>(cluster.m0 + cluster.m1);
  }

  // Facts for the triple clusters: multiplicities (2, 2, 3); lone
  // positions take fresh constants per variant.
  for (const TripleCluster& cluster : triple_clusters) {
    const TermId join_a = fresh_constant();
    const TermId join_b = fresh_constant();
    for (int m = 0; m < 2; ++m) {
      kb.facts().Add(Atom(cluster.q0, {join_a, fresh_constant()}));
    }
    for (int m = 0; m < 2; ++m) {
      kb.facts().Add(Atom(cluster.q1, {join_a, join_b}));
    }
    for (int m = 0; m < 3; ++m) {
      kb.facts().Add(Atom(cluster.q2, {join_b, fresh_constant()}));
    }
    result.info.planned_conflicts += 12;
    result.info.planned_naive_conflicts += 12;
    result.info.atoms_in_conflicts += 7;
  }

  // ---------------------------------------------------------------------
  // Noise TGDs: 260 rules over 20 shared crop/soil predicates, two facts
  // each -> 13 rules fire per predicate per fact = 520 derived atoms.
  std::vector<PredicateId> noise_predicates;
  for (int n = 0; n < 20; ++n) {
    noise_predicates.push_back(fresh_predicate(2));
  }
  const TermId x = symbols.InternVariable("X");
  const TermId y = symbols.InternVariable("Y");
  const TermId z = symbols.InternVariable("Z");
  const size_t existing_tgds = kb.tgds().size();
  for (size_t t = 0; existing_tgds + t < 269; ++t) {
    const PredicateId body_pred = noise_predicates[t % 20];
    const PredicateId head_pred = fresh_predicate(2);
    KBREPAIR_ASSIGN_OR_RETURN(
        Tgd tgd, Tgd::Create({Atom(body_pred, {x, y})},
                             {Atom(head_pred, {x, z})}, symbols));
    kb.tgds().push_back(std::move(tgd));
  }
  for (const PredicateId pred : noise_predicates) {
    kb.facts().Add(Atom(pred, {fresh_constant(), fresh_constant()}));
    kb.facts().Add(Atom(pred, {fresh_constant(), fresh_constant()}));
  }

  // ---------------------------------------------------------------------
  // Padding to 567 atoms with conflict-free agronomy facts.
  size_t pad_counter = 0;
  std::vector<PredicateId> pad_predicates;
  for (int p = 0; p < 15; ++p) pad_predicates.push_back(fresh_predicate(2));
  while (kb.facts().size() < 567) {
    const PredicateId pred = pad_predicates[pad_counter++ % 15];
    kb.facts().Add(Atom(pred, {fresh_constant(), fresh_constant()}));
  }

  result.info.num_facts = kb.facts().size();
  result.info.num_tgds = kb.tgds().size();
  result.info.num_cdds = kb.cdds().size();

  KBREPAIR_RETURN_IF_ERROR(kb.Validate());
  return result;
}

}  // namespace kbrepair
