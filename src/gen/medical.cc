#include "gen/medical.h"

#include <string>

#include "util/logging.h"
#include "util/rng.h"

namespace kbrepair {

StatusOr<MedicalKb> GenerateMedicalKb(const MedicalKbOptions& options) {
  if (options.star_width < 1) {
    return Status::InvalidArgument("star_width must be >= 1");
  }
  Rng rng(options.seed);
  MedicalKb result;
  KnowledgeBase& kb = result.kb;
  SymbolTable& symbols = kb.symbols();

  const PredicateId prescribed = symbols.InternPredicate("prescribed", 2);
  const PredicateId has_allergy = symbols.InternPredicate("hasAllergy", 2);
  const PredicateId incompatible =
      symbols.InternPredicate("incompatible", 2);
  const PredicateId has_pain = symbols.InternPredicate("hasPain", 2);
  const PredicateId painkiller_for =
      symbols.InternPredicate("isPainKillerFor", 2);

  const TermId d = symbols.InternVariable("D");
  const TermId p = symbols.InternVariable("P");
  const TermId x = symbols.InternVariable("X");
  const TermId y = symbols.InternVariable("Y");
  const TermId z = symbols.InternVariable("Z");

  // Figure 1's rules. Every argument position of every CDD body atom
  // carries a join variable: the join-position share is 100%.
  {
    KBREPAIR_ASSIGN_OR_RETURN(
        Tgd painkillers,
        Tgd::Create({Atom(painkiller_for, {x, y}), Atom(has_pain, {z, y})},
                    {Atom(prescribed, {x, z})}, symbols));
    painkillers.set_label("painkillers");
    kb.tgds().push_back(std::move(painkillers));

    KBREPAIR_ASSIGN_OR_RETURN(
        Cdd allergy, Cdd::Create({Atom(prescribed, {d, p}),
                                  Atom(has_allergy, {p, d})},
                                 symbols));
    allergy.set_label("allergy");
    kb.cdds().push_back(std::move(allergy));

    KBREPAIR_ASSIGN_OR_RETURN(
        Cdd incompat, Cdd::Create({Atom(prescribed, {x, z}),
                                   Atom(prescribed, {y, z}),
                                   Atom(incompatible, {x, y})},
                                  symbols));
    incompat.set_label("incompat");
    kb.cdds().push_back(std::move(incompat));
  }

  uint64_t counter = 0;
  auto drug = [&]() {
    return symbols.InternConstant("drug" + std::to_string(++counter));
  };
  auto patient = [&]() {
    return symbols.InternConstant("patient" + std::to_string(++counter));
  };
  auto pain = [&]() {
    return symbols.InternConstant("pain" + std::to_string(++counter));
  };

  // --- Allergy conflicts: prescribed(d, p) + hasAllergy(p, d).
  for (size_t c = 0; c < options.num_allergy_conflicts; ++c) {
    const TermId dc = drug();
    const TermId pc = patient();
    kb.facts().Add(Atom(prescribed, {dc, pc}));
    kb.facts().Add(Atom(has_allergy, {pc, dc}));
    result.info.planned_conflicts += 1;
    result.info.planned_naive_conflicts += 1;
    result.info.atoms_in_conflicts += 2;
  }

  // --- Incompatibility stars.
  for (size_t s = 0; s < options.num_incompat_stars; ++s) {
    const TermId anchor_drug = drug();
    const TermId star_patient = patient();
    const bool routed = rng.Bernoulli(options.routed_star_share);
    if (routed) {
      // The anchor prescription is derived: the patient has a pain the
      // anchor drug treats (Figure 1b's painkiller chain).
      const TermId star_pain = pain();
      kb.facts().Add(Atom(has_pain, {star_patient, star_pain}));
      kb.facts().Add(Atom(painkiller_for, {anchor_drug, star_pain}));
      result.info.atoms_in_conflicts += 2;
    } else {
      kb.facts().Add(Atom(prescribed, {anchor_drug, star_patient}));
      result.info.atoms_in_conflicts += 1;
    }
    for (int w = 0; w < options.star_width; ++w) {
      const TermId other_drug = drug();
      kb.facts().Add(Atom(prescribed, {other_drug, star_patient}));
      kb.facts().Add(Atom(incompatible, {anchor_drug, other_drug}));
      result.info.atoms_in_conflicts += 2;
      result.info.planned_conflicts += 1;
      if (routed) {
        result.info.planned_chase_conflicts += 1;
      } else {
        result.info.planned_naive_conflicts += 1;
      }
    }
  }

  // --- Padding: clean prescriptions and allergies over disjoint
  // patients/drugs (no joins, hence no conflicts).
  while (kb.facts().size() < options.num_facts) {
    if (rng.Bernoulli(0.5)) {
      kb.facts().Add(Atom(prescribed, {drug(), patient()}));
    } else {
      kb.facts().Add(Atom(has_allergy, {patient(), drug()}));
    }
  }

  result.info.num_facts = kb.facts().size();
  result.info.join_position_share = 1.0;  // by construction (see header)

  KBREPAIR_RETURN_IF_ERROR(kb.Validate());
  return result;
}

}  // namespace kbrepair
