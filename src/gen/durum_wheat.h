// Reconstruction of the Durum Wheat knowledge base (Section 6).
//
// The paper's real-world KB [Arioua, Buche, Croitoru, MTSR 2016] is a
// manually curated agronomy KB that is not publicly distributed. What the
// repair algorithms observe about it, however, is fully described by the
// published characteristics table:
//
//             | atoms | chase | TGDs | CDDs | conflicts | ratio | scope
//   Durum v1  |  567  | 1075  | 269  |  27  |   185     |  14%  |  8.1
//   Durum v2  |  567  | 1075  | 269  | 100  |   212     |  14%  |  7.8
//
// plus: avg 1.4 atoms per overlap, 2–3 atoms per conflict, and ~90% join
// positions inside conflicts. This module rebuilds a KB hitting those
// targets with an agronomy-flavoured vocabulary drawn from the paper's
// own excerpt (hasPrecedent, isCultivatedOn, durum_wheat, soil,
// fertilization, isAtGrowingStage, ...):
//
//  * thirteen violation clusters: seven (8,2) grids over 2-atom CDDs
//    (16 conflicts over 10 atoms each, every conflict overlapping 8
//    others — the published avg scope — and each q1 "hub" in 8
//    conflicts), one (13,1) star (13 conflicts through a single hub, the
//    paper's ~13-conflicts-per-question best case for opti-mcd), and
//    five 3-atom CDD clusters with multiplicities (2,2,3): 185 planned
//    conflicts in total, as published. The conflict-atom count lands at
//    ≈119 (21%) instead of the published 79 (14%) — the price of
//    matching the conflict count, overlap scope and hub structure
//    simultaneously; see EXPERIMENTS.md;
//  * v2 adds 73 CDDs: five "projection" constraints over the 3-atom
//    clusters' predicates that add ~24 conflicts re-using the *same*
//    atoms (the paper notes v2's new conflicts involve the same atoms),
//    and 68 satisfied constraints;
//  * one grid cluster is routed through a depth-1 TGD chain so that part
//    of the inconsistency only surfaces during the chase, as in the
//    paper's two-phase discussion;
//  * 260 noise TGDs over 20 shared crop/soil predicates with two facts
//    each contribute ≈520 derived atoms, matching the published chase
//    size.

#ifndef KBREPAIR_GEN_DURUM_WHEAT_H_
#define KBREPAIR_GEN_DURUM_WHEAT_H_

#include <cstdint>

#include "rules/knowledge_base.h"
#include "util/status.h"

namespace kbrepair {

enum class DurumWheatVersion {
  kV1,  // 27 CDDs
  kV2,  // 100 CDDs (extra constraints, same facts)
};

struct DurumWheatOptions {
  DurumWheatVersion version = DurumWheatVersion::kV1;
  uint64_t seed = 20180326;  // EDBT 2018 opening day
};

struct DurumWheatInfo {
  size_t num_facts = 0;
  size_t num_tgds = 0;
  size_t num_cdds = 0;
  size_t planned_conflicts = 0;
  size_t planned_naive_conflicts = 0;
  size_t planned_chase_conflicts = 0;
  size_t atoms_in_conflicts = 0;
};

struct DurumWheatKb {
  KnowledgeBase kb;
  DurumWheatInfo info;
};

StatusOr<DurumWheatKb> GenerateDurumWheatKb(const DurumWheatOptions& options);

}  // namespace kbrepair

#endif  // KBREPAIR_GEN_DURUM_WHEAT_H_
