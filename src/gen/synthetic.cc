#include "gen/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"
#include "util/rng.h"

namespace kbrepair {

namespace {

// Blueprint of one CDD: its body atoms with, per argument position, the
// join-variable index it carries (-1 for a lone variable).
struct CddBlueprint {
  // predicate of each body atom
  std::vector<PredicateId> predicates;
  // per atom, per position: join-variable index or -1
  std::vector<std::vector<int>> join_slots;
  size_t num_join_variables = 0;
  // Chain feeding this CDD (slot = which body atom), or -1.
  int chain_index = -1;
  int chain_slot = -1;
};

// Blueprint of one TGD chain: origin predicate, intermediate predicates,
// final predicate equal to the fed CDD body atom's predicate.
struct ChainBlueprint {
  std::vector<PredicateId> predicates;  // depth + 1 entries; last = target
};

}  // namespace

StatusOr<SyntheticKb> GenerateSyntheticKb(
    const SyntheticKbOptions& options) {
  if (options.cdd_min_atoms < 2 || options.cdd_max_atoms < options.cdd_min_atoms) {
    return Status::InvalidArgument("CDD body size range must be >= 2");
  }
  if (options.min_arity < 2 || options.max_arity < options.min_arity) {
    return Status::InvalidArgument("arity range must start at >= 2");
  }
  if (options.num_cdds == 0) {
    return Status::InvalidArgument("at least one CDD is required");
  }
  if (options.min_multiplicity < 1 ||
      options.max_multiplicity < options.min_multiplicity) {
    return Status::InvalidArgument("multiplicity range must start at >= 1");
  }
  if (options.num_tgds > 0 && options.conflict_depth < 1) {
    return Status::InvalidArgument("conflict depth must be >= 1 with TGDs");
  }

  Rng rng(options.seed);
  SyntheticKb result;
  KnowledgeBase& kb = result.kb;
  SymbolTable& symbols = kb.symbols();
  const std::string& prefix = options.name_prefix;

  uint64_t constant_counter = 0;
  auto fresh_constant = [&symbols, &constant_counter, &prefix]() {
    return symbols.InternConstant(prefix + "_c" +
                                  std::to_string(++constant_counter));
  };

  // ---------------------------------------------------------------------
  // 1. CDD blueprints and the CDDs themselves.
  //
  // Each CDD gets its own fresh predicates: this keeps the conflict
  // structure exactly equal to the planned clusters (no accidental
  // cross-constraint homomorphisms), mirroring the controlled generation
  // the paper describes.
  std::vector<CddBlueprint> blueprints;
  blueprints.reserve(options.num_cdds);
  for (size_t c = 0; c < options.num_cdds; ++c) {
    CddBlueprint bp;
    const int s = static_cast<int>(
        rng.UniformInt(options.cdd_min_atoms, options.cdd_max_atoms));
    int total_positions = 0;
    for (int j = 0; j < s; ++j) {
      const int arity = static_cast<int>(
          rng.UniformInt(options.min_arity, options.max_arity));
      bp.predicates.push_back(symbols.InternPredicate(
          prefix + std::to_string(c) + "_" + std::to_string(j), arity));
      bp.join_slots.emplace_back(arity, -1);
      total_positions += arity;
    }
    // Connect consecutive atoms with join variables J_0..J_{s-2}: J_j
    // appears in atoms j and j+1 at random positions.
    for (int j = 0; j + 1 < s; ++j) {
      const int join_var = j;
      std::vector<int>& left = bp.join_slots[static_cast<size_t>(j)];
      std::vector<int>& right = bp.join_slots[static_cast<size_t>(j + 1)];
      // Pick a free position in each atom (positions outnumber the two
      // chain variables because arity >= 2).
      auto place = [&rng](std::vector<int>& slots, int var) {
        std::vector<size_t> free_slots;
        for (size_t k = 0; k < slots.size(); ++k) {
          if (slots[k] == -1) free_slots.push_back(k);
        }
        KBREPAIR_CHECK(!free_slots.empty());
        slots[rng.Choose(free_slots)] = var;
      };
      place(left, join_var);
      place(right, join_var);
    }
    bp.num_join_variables = static_cast<size_t>(s - 1);

    // Add extra occurrences of existing join variables until the target
    // join-position share is reached (or no free slot remains).
    const int baseline_join_positions = 2 * (s - 1);
    int join_positions = baseline_join_positions;
    const int wanted = static_cast<int>(std::lround(
        options.join_position_share * static_cast<double>(total_positions)));
    while (join_positions < wanted) {
      std::vector<std::pair<size_t, size_t>> free_slots;
      for (size_t j = 0; j < bp.join_slots.size(); ++j) {
        for (size_t k = 0; k < bp.join_slots[j].size(); ++k) {
          if (bp.join_slots[j][k] == -1) free_slots.emplace_back(j, k);
        }
      }
      if (free_slots.empty()) break;
      const auto [aj, ak] = rng.Choose(free_slots);
      bp.join_slots[aj][ak] =
          static_cast<int>(rng.UniformIndex(bp.num_join_variables));
      ++join_positions;
    }
    blueprints.push_back(std::move(bp));
  }

  // ---------------------------------------------------------------------
  // 2. TGD chains (conflict depth).
  std::vector<ChainBlueprint> chains;
  if (options.num_tgds > 0) {
    const size_t num_chains =
        std::max<size_t>(1, options.num_tgds /
                                static_cast<size_t>(options.conflict_depth));
    for (size_t k = 0; k < num_chains; ++k) {
      CddBlueprint& bp = blueprints[k % blueprints.size()];
      if (bp.chain_index != -1) continue;  // one chain per CDD
      const int slot =
          static_cast<int>(rng.UniformIndex(bp.predicates.size()));
      const PredicateId target = bp.predicates[static_cast<size_t>(slot)];
      const int arity = symbols.predicate_arity(target);

      ChainBlueprint chain;
      for (int step = 0; step < options.conflict_depth; ++step) {
        chain.predicates.push_back(symbols.InternPredicate(
            prefix + "_chain" + std::to_string(k) + "_" +
                std::to_string(step),
            arity));
      }
      chain.predicates.push_back(target);

      // Identity-propagating rules chain_i(X1..Xa) -> chain_{i+1}(X1..Xa):
      // no existentials, so the chain carries the cluster's join
      // constants all the way to the constraint.
      std::vector<TermId> vars;
      for (int v = 0; v < arity; ++v) {
        vars.push_back(symbols.InternVariable("X" + std::to_string(v + 1)));
      }
      for (size_t step = 0; step + 1 < chain.predicates.size(); ++step) {
        std::vector<Atom> body = {Atom(chain.predicates[step], vars)};
        std::vector<Atom> head = {Atom(chain.predicates[step + 1], vars)};
        KBREPAIR_ASSIGN_OR_RETURN(
            Tgd tgd, Tgd::Create(std::move(body), std::move(head), symbols));
        kb.tgds().push_back(std::move(tgd));
      }
      bp.chain_index = static_cast<int>(chains.size());
      bp.chain_slot = slot;
      chains.push_back(std::move(chain));
    }
  }

  // ---------------------------------------------------------------------
  // 3. Materialize the CDDs.
  for (const CddBlueprint& bp : blueprints) {
    std::vector<TermId> join_vars;
    for (size_t v = 0; v < bp.num_join_variables; ++v) {
      join_vars.push_back(symbols.InternVariable("J" + std::to_string(v)));
    }
    std::vector<Atom> body;
    int lone_counter = 0;
    for (size_t j = 0; j < bp.predicates.size(); ++j) {
      std::vector<TermId> args;
      for (int slot : bp.join_slots[j]) {
        if (slot >= 0) {
          args.push_back(join_vars[static_cast<size_t>(slot)]);
        } else {
          args.push_back(symbols.InternVariable(
              "L" + std::to_string(lone_counter++)));
        }
      }
      body.emplace_back(bp.predicates[j], std::move(args));
    }
    KBREPAIR_ASSIGN_OR_RETURN(Cdd cdd, Cdd::Create(std::move(body), symbols));
    kb.cdds().push_back(std::move(cdd));
  }

  // ---------------------------------------------------------------------
  // 4. Violation clusters until the inconsistency target is met.
  const size_t target_conflict_atoms = static_cast<size_t>(std::lround(
      options.inconsistency_ratio * static_cast<double>(options.num_facts)));
  size_t conflict_atoms = 0;
  size_t join_positions_in_conflict_atoms = 0;
  size_t positions_in_conflict_atoms = 0;
  size_t cluster_round_robin = 0;

  while (conflict_atoms < target_conflict_atoms) {
    const size_t c = cluster_round_robin++ % blueprints.size();
    const CddBlueprint& bp = blueprints[c];
    const bool routed = bp.chain_index >= 0 &&
                        rng.Bernoulli(options.routed_violation_share);

    // Shared join constants for the cluster.
    std::vector<TermId> join_constants;
    for (size_t v = 0; v < bp.num_join_variables; ++v) {
      join_constants.push_back(fresh_constant());
    }

    size_t cluster_conflicts = 1;
    int multiplied_atoms = 0;
    for (size_t j = 0; j < bp.predicates.size(); ++j) {
      const bool via_chain =
          routed && static_cast<int>(j) == bp.chain_slot;
      bool has_lone_slot = false;
      for (int slot : bp.join_slots[j]) {
        has_lone_slot = has_lone_slot || slot == -1;
      }
      // A routed atom with no lone positions would emit value-identical
      // chain origins, which the restricted chase collapses into one
      // derived atom — cap its multiplicity so planned conflict counts
      // stay exact. The max_multiplied_atoms budget likewise forces
      // multiplicity 1 once spent.
      const bool budget_spent =
          options.max_multiplied_atoms >= 0 &&
          multiplied_atoms >= options.max_multiplied_atoms;
      const int multiplicity =
          (via_chain && !has_lone_slot) || budget_spent
              ? 1
              : static_cast<int>(rng.UniformInt(
                    options.min_multiplicity, options.max_multiplicity));
      if (multiplicity > 1) ++multiplied_atoms;
      cluster_conflicts *= static_cast<size_t>(multiplicity);
      const PredicateId pred =
          via_chain ? chains[static_cast<size_t>(bp.chain_index)]
                          .predicates.front()
                    : bp.predicates[j];
      for (int m = 0; m < multiplicity; ++m) {
        std::vector<TermId> args;
        for (int slot : bp.join_slots[j]) {
          if (slot >= 0) {
            args.push_back(join_constants[static_cast<size_t>(slot)]);
            ++join_positions_in_conflict_atoms;
          } else {
            args.push_back(fresh_constant());
          }
          ++positions_in_conflict_atoms;
        }
        kb.facts().Add(Atom(pred, std::move(args)));
        ++conflict_atoms;
      }
    }
    result.info.planned_conflicts += cluster_conflicts;
    if (routed) {
      result.info.planned_chase_conflicts += cluster_conflicts;
    } else {
      result.info.planned_naive_conflicts += cluster_conflicts;
    }
  }
  result.info.atoms_in_conflicts = conflict_atoms;
  result.info.join_position_share =
      positions_in_conflict_atoms == 0
          ? 0.0
          : static_cast<double>(join_positions_in_conflict_atoms) /
                static_cast<double>(positions_in_conflict_atoms);

  // ---------------------------------------------------------------------
  // 5. Noise TGDs (chase growth, never any violation).
  for (size_t t = 0; t < options.num_noise_tgds; ++t) {
    const PredicateId body_pred = symbols.InternPredicate(
        prefix + "_noise" + std::to_string(t), 2);
    const PredicateId head_pred = symbols.InternPredicate(
        prefix + "_derived" + std::to_string(t), 2);
    const TermId x = symbols.InternVariable("X");
    const TermId y = symbols.InternVariable("Y");
    const TermId z = symbols.InternVariable("Z");
    std::vector<Atom> body = {Atom(body_pred, {x, y})};
    std::vector<Atom> head = {Atom(head_pred, {x, z})};
    KBREPAIR_ASSIGN_OR_RETURN(
        Tgd tgd, Tgd::Create(std::move(body), std::move(head), symbols));
    kb.tgds().push_back(std::move(tgd));
    if (rng.Bernoulli(options.noise_tgd_fire_share) &&
        kb.facts().size() < options.num_facts) {
      kb.facts().Add(Atom(body_pred, {fresh_constant(), fresh_constant()}));
    }
  }

  // ---------------------------------------------------------------------
  // 6. Padding to n_F with conflict-free atoms.
  size_t pad_counter = 0;
  while (kb.facts().size() < options.num_facts) {
    if (rng.Bernoulli(options.padding_on_constraint_predicates)) {
      // A constraint predicate with entirely fresh constants: its join
      // positions hold values used nowhere else, so no homomorphism can
      // pass through it.
      const CddBlueprint& bp = blueprints[rng.UniformIndex(blueprints.size())];
      const size_t j = rng.UniformIndex(bp.predicates.size());
      std::vector<TermId> args;
      for (size_t k = 0; k < bp.join_slots[j].size(); ++k) {
        args.push_back(fresh_constant());
      }
      kb.facts().Add(Atom(bp.predicates[j], std::move(args)));
    } else {
      const PredicateId pred = symbols.InternPredicate(
          prefix + "_pad" + std::to_string(pad_counter++ % 17), 2);
      kb.facts().Add(Atom(pred, {fresh_constant(), fresh_constant()}));
    }
  }

  result.info.num_facts = kb.facts().size();
  result.info.inconsistency_ratio =
      static_cast<double>(conflict_atoms) /
      static_cast<double>(result.info.num_facts);

  KBREPAIR_RETURN_IF_ERROR(kb.Validate());
  return result;
}

}  // namespace kbrepair
