// Synthetic knowledge-base generator (Section 6, "Synthetic KBs").
//
// Reproduces the paper's generation procedure:
//  * a vocabulary of predicates with arities drawn uniformly from a
//    configurable range ([2,10] in the paper);
//  * CDDs with a configurable number of body atoms (s ∈ [5,10] in the
//    paper) connected through join variables; the share of argument
//    positions holding join variables is tunable (v_join);
//  * TGDs arranged in chains so that violating a CDD can require a
//    configurable number d_K of chase steps (the paper's conflict depth),
//    plus optional existential "noise" TGDs that only grow the chase;
//  * facts generated as *violation clusters* until the requested
//    inconsistency ratio (atoms involved in at least one conflict / n_F)
//    is reached, then padded with conflict-free atoms.
//
// A violation cluster instantiates one CDD body with shared join
// constants; each body atom receives `multiplicity` ground variants
// differing in their lone (non-join) positions, so a cluster with
// multiplicities (m_1..m_s) yields Π m_j overlapping conflicts over
// Σ m_j atoms — the overlap structure behind the paper's "avg scope"
// indicator. A *routed* cluster replaces one body atom's instances with
// chain-origin facts, so its conflicts only appear after d_K chase steps.
//
// All constants minted by distinct clusters are distinct, so the set of
// conflicts is exactly the set of planned grid homomorphisms — a property
// the generator's tests verify against the conflict enumerator.

#ifndef KBREPAIR_GEN_SYNTHETIC_H_
#define KBREPAIR_GEN_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rules/knowledge_base.h"
#include "util/status.h"

namespace kbrepair {

struct SyntheticKbOptions {
  uint64_t seed = 1;

  // Total atoms n_F (violation clusters + padding). When the
  // inconsistency ratio requires more conflict atoms than num_facts, the
  // fact count grows to fit (used by the 100%-inconsistency runs).
  size_t num_facts = 1000;

  // r_inc: atoms involved in >= 1 conflict / n_F.
  double inconsistency_ratio = 0.10;

  // Constraints.
  size_t num_cdds = 20;
  int cdd_min_atoms = 2;   // s range; the paper uses [5,10]
  int cdd_max_atoms = 4;
  int min_arity = 2;       // predicate arity range; the paper uses [2,10]
  int max_arity = 4;
  // Target share of CDD argument positions holding join variables
  // (v_join). At least the connecting chain of join variables is always
  // present; extra join variables are added until the share is met.
  double join_position_share = 0.3;

  // Violation clusters: per-body-atom multiplicity range.
  int min_multiplicity = 1;
  int max_multiplicity = 2;
  // At most this many body atoms per cluster receive multiplicity > 1
  // (-1 = unlimited). Caps the grid product for long CDD bodies so the
  // conflict count per cluster stays in the paper's regime.
  int max_multiplied_atoms = -1;

  // TGDs. num_tgds chain rules are arranged into chains of length
  // conflict_depth (so num_tgds / conflict_depth chains); each chain
  // feeds one CDD body atom. routed_violation_share of the clusters of a
  // chain-fed CDD are routed through the chain.
  size_t num_tgds = 0;
  int conflict_depth = 1;
  double routed_violation_share = 0.5;

  // Existential noise TGDs (they grow the chase but never violate
  // anything); noise_tgd_fire_share of them get one triggering fact.
  size_t num_noise_tgds = 0;
  double noise_tgd_fire_share = 0.5;

  // Share of padding atoms placed on constraint predicates (with fresh
  // constants, hence conflict-free) instead of dedicated pad predicates.
  double padding_on_constraint_predicates = 0.3;

  // Prefix for generated symbol names; lets callers (e.g., the Durum
  // Wheat reconstruction) flavour the vocabulary.
  std::string name_prefix = "p";
};

// Ground truth the generator knows by construction.
struct SyntheticKbInfo {
  size_t num_facts = 0;
  size_t atoms_in_conflicts = 0;
  size_t planned_conflicts = 0;        // naive + chase-only
  size_t planned_naive_conflicts = 0;  // visible without chasing
  size_t planned_chase_conflicts = 0;  // routed through TGD chains
  double inconsistency_ratio = 0.0;
  // Share of conflict-atom argument positions that hold join variables.
  double join_position_share = 0.0;
};

struct SyntheticKb {
  KnowledgeBase kb;
  SyntheticKbInfo info;
};

// Generates a KB per the options. The result passes
// KnowledgeBase::Validate() (weakly-acyclic TGDs, meaningful CDDs).
StatusOr<SyntheticKb> GenerateSyntheticKb(const SyntheticKbOptions& options);

}  // namespace kbrepair

#endif  // KBREPAIR_GEN_SYNTHETIC_H_
