// Medical-domain workload generator: Figure 1's hospital vocabulary at
// scale, with the join-position profile the paper attributes to its
// real-world KB.
//
// The paper explains why `random` nearly matches `opti-join` on Durum
// Wheat: "the percentage of join positions in conflicts is close to
// 90%. This makes the probability of choosing a join position with
// random strategy very high." This generator produces exactly that
// regime: its constraints are Figure 1's
//
//   [allergy]  prescribed(D, P), hasAllergy(P, D) -> ⊥
//   [incompat] prescribed(X, P), prescribed(Y, P), incompatible(X, Y) -> ⊥
//
// in which *every* argument position is a join position (share = 100%),
// so random question positions are always resolving ones. Conflict
// structure:
//
//  * allergy conflicts: one prescribed/hasAllergy pair per dirty
//    prescription (disjoint, scope 0);
//  * incompatibility stars: a poly-pharmacy patient prescribed one
//    anchor drug plus k drugs incompatible with it yields k conflicts
//    all sharing the anchor prescription — the hub structure opti-mcd
//    exploits;
//  * optionally, a share of the anchor prescriptions is *routed* through
//    Figure 1's painkiller TGD (the anchor drug is only prescribed
//    because the patient has a pain the drug treats), so those stars
//    surface during the chase.
//
// Padding consists of clean prescriptions and allergies over disjoint
// patients/drugs.

#ifndef KBREPAIR_GEN_MEDICAL_H_
#define KBREPAIR_GEN_MEDICAL_H_

#include <cstdint>

#include "rules/knowledge_base.h"
#include "util/status.h"

namespace kbrepair {

struct MedicalKbOptions {
  uint64_t seed = 1;
  size_t num_facts = 500;

  // Disjoint allergy conflicts (2 atoms each).
  size_t num_allergy_conflicts = 10;

  // Incompatibility stars: each has one anchor prescription and
  // star_width incompatible co-prescriptions (star_width conflicts over
  // 2*star_width + 1 atoms).
  size_t num_incompat_stars = 5;
  int star_width = 4;

  // Share of stars whose anchor prescription is derived by the
  // painkiller TGD instead of asserted (conflicts surface in the chase).
  double routed_star_share = 0.0;
};

struct MedicalKbInfo {
  size_t num_facts = 0;
  size_t planned_conflicts = 0;
  size_t planned_naive_conflicts = 0;
  size_t planned_chase_conflicts = 0;
  size_t atoms_in_conflicts = 0;
  // Share of conflict-atom argument positions that are join positions —
  // 1.0 by construction for this vocabulary.
  double join_position_share = 0.0;
};

struct MedicalKb {
  KnowledgeBase kb;
  MedicalKbInfo info;
};

StatusOr<MedicalKb> GenerateMedicalKb(const MedicalKbOptions& options);

}  // namespace kbrepair

#endif  // KBREPAIR_GEN_MEDICAL_H_
