// Quickstart: the paper's running example (Figure 1) end to end.
//
// Builds the hospital-prescriptions KB, shows that it is inconsistent,
// enumerates its conflicts, and repairs it twice: once with an oracle
// that has the repair of Example 4.9 in mind (the inquiry provably
// reconstructs exactly that repair), and once with a random simulated
// user.

#include <iostream>

#include "parser/dlgp_parser.h"
#include "repair/conflict.h"
#include "repair/consistency.h"
#include "repair/inquiry.h"
#include "repair/user.h"

namespace {

constexpr const char* kHospitalKb = R"(
% Figure 1 (b): facts
prescribed(aspirin, john).
hasAllergy(john, aspirin).
hasAllergy(mike, penicillin).
hasPain(john, migraine).
isPainKillerFor(nsaids, migraine).
incompatible(aspirin, nsaids).

% TGD: a painkiller for a pain someone has gets prescribed to them
prescribed(X, Z) :- isPainKillerFor(X, Y), hasPain(Z, Y).

% CDDs
! :- prescribed(X, Y), hasAllergy(Y, X).
! :- prescribed(X, Z), prescribed(Y, Z), incompatible(X, Y).
)";

}  // namespace

int main() {
  using namespace kbrepair;

  StatusOr<KnowledgeBase> parsed = ParseDlgp(kHospitalKb);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.status() << "\n";
    return 1;
  }
  KnowledgeBase kb = std::move(parsed).value();
  if (Status status = kb.Validate(); !status.ok()) {
    std::cerr << "invalid KB: " << status << "\n";
    return 1;
  }

  std::cout << "=== The knowledge base (Figure 1b) ===\n"
            << PrintDlgp(kb) << "\n";

  StatusOr<bool> consistent = IsConsistent(kb);
  std::cout << "Consistent? " << (consistent.value() ? "yes" : "no")
            << "\n\n";

  // Enumerate the conflicts (Example 2.4 finds exactly two).
  ConflictFinder finder(&kb.symbols(), &kb.tgds(), &kb.cdds());
  StatusOr<std::vector<Conflict>> conflicts =
      finder.AllConflicts(kb.facts());
  std::cout << "=== Conflicts (Example 2.4) ===\n";
  for (const Conflict& conflict : conflicts.value()) {
    std::cout << "violated CDD: "
              << kb.cdds()[conflict.cdd_index].ToString(kb.symbols())
              << "\n  supported by original facts:";
    for (AtomId id : conflict.support) {
      std::cout << " " << kb.facts().atom(id).ToString(kb.symbols());
    }
    std::cout << "\n";
  }

  // --- Inquiry with an oracle (in the spirit of Example 4.9; the
  // paper's literal oracle answer (hasPain(John,Migraine),1,Mike) is not
  // an admissible fix under Definition 3.1 because Mike is outside
  // adom(hasPain, 1)). Our oracle has this u-repair in mind:
  //   hasAllergy(john, aspirin)   becomes hasAllergy(mike, aspirin)
  //     (mike ∈ adom(hasAllergy, 1) — resolves the allergy conflict)
  //   incompatible(aspirin, nsaids) becomes incompatible(<unknown>, nsaids)
  //     (a labeled null — resolves the incompatibility conflict)
  std::cout << "\n=== Inquiry with an oracle (Example 4.9 style) ===\n";
  const TermId mike = kb.symbols().InternConstant("mike");
  const TermId unknown = kb.symbols().MakeFreshNull();
  std::vector<Fix> oracle_fixes;
  for (AtomId id = 0; id < kb.facts().size(); ++id) {
    const std::string name =
        kb.facts().atom(id).ToString(kb.symbols());
    if (name == "hasAllergy(john,aspirin)") {
      oracle_fixes.push_back(Fix{id, 0, mike});
    } else if (name == "incompatible(aspirin,nsaids)") {
      oracle_fixes.push_back(Fix{id, 0, unknown});
    }
  }
  OracleUser oracle(oracle_fixes, &kb.symbols());

  InquiryOptions options;
  options.strategy = Strategy::kRandom;  // full-position questions
  options.seed = 7;
  InquiryEngine engine(&kb, options);
  StatusOr<InquiryResult> result = engine.Run(oracle);
  if (!result.ok()) {
    std::cerr << "inquiry failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << "questions asked: " << result->num_questions() << "\n";
  for (const Fix& fix : result->applied_fixes) {
    // Render against the original facts: "(original atom, position,
    // new value)", the paper's fix notation.
    std::cout << "applied fix " << fix.ToString(kb.symbols(), kb.facts())
              << "\n";
  }
  std::cout << "repaired facts:\n"
            << result->facts.ToString(kb.symbols()) << "\n";

  // --- Inquiry with a random simulated user, opti-mcd strategy.
  std::cout << "=== Inquiry with a random user (opti-mcd) ===\n";
  RandomUser random_user(/*seed=*/42);
  InquiryOptions mcd_options;
  mcd_options.strategy = Strategy::kOptiMcd;
  mcd_options.seed = 42;
  InquiryEngine mcd_engine(&kb, mcd_options);
  StatusOr<InquiryResult> mcd_result = mcd_engine.Run(random_user);
  if (!mcd_result.ok()) {
    std::cerr << "inquiry failed: " << mcd_result.status() << "\n";
    return 1;
  }
  std::cout << "questions asked: " << mcd_result->num_questions() << "\n"
            << "repaired facts:\n"
            << mcd_result->facts.ToString(kb.symbols());

  // Verify the outcome is consistent.
  ConsistencyChecker checker(&kb.symbols(), &kb.tgds(), &kb.cdds());
  std::cout << "\nrepaired KB consistent? "
            << (checker.IsConsistentOpt(mcd_result->facts).value() ? "yes"
                                                                   : "no")
            << "\n";
  return 0;
}
