// kb_analyze: a data steward's diagnostic CLI over a DLGP knowledge
// base. Prints validation results, the chase footprint, the full
// conflict census with overlap indicators, per-CDD violation counts,
// the conflict-hypergraph hot spots, and a dry-run repair estimate
// (questions needed per strategy with a simulated user).
//
// Usage:
//   kb_analyze [kb.dlgp] [--queries] [--dot] [--explain]
// With no argument, analyzes the built-in hospital example.
//   --explain  print a full explanation of every conflict
//   --dot      print the conflict hypergraph in GraphViz DOT format
//   --queries  read conjunctive queries from stdin (one per line, DLGP
//              query syntax ?(X) :- body.) and print certain answers
//   --cqa      like --queries, but evaluate under consistent query
//              answering: answers holding in EVERY minimal null-valued
//              update repair (repair/cqa.h; small KBs only)

#include <algorithm>
#include <iostream>
#include <map>
#include <string>

#include "chase/chase.h"
#include "chase/query.h"
#include "parser/dlgp_parser.h"
#include "repair/conflict.h"
#include "repair/consistency.h"
#include "repair/cqa.h"
#include "repair/inquiry.h"
#include "repair/user.h"
#include "util/stats.h"

namespace {

constexpr const char* kDefaultKb = R"(
prescribed(aspirin, john).
hasAllergy(john, aspirin).
hasAllergy(mike, penicillin).
hasPain(john, migraine).
isPainKillerFor(nsaids, migraine).
incompatible(aspirin, nsaids).
prescribed(X, Z) :- isPainKillerFor(X, Y), hasPain(Z, Y).
! :- prescribed(X, Y), hasAllergy(Y, X).
! :- prescribed(X, Z), prescribed(Y, Z), incompatible(X, Y).
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace kbrepair;

  bool run_queries = false;
  bool run_cqa = false;
  bool dump_dot = false;
  bool explain = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--queries") {
      run_queries = true;
    } else if (arg == "--cqa") {
      run_cqa = true;
    } else if (arg == "--dot") {
      dump_dot = true;
    } else if (arg == "--explain") {
      explain = true;
    } else {
      path = arg;
    }
  }

  StatusOr<KnowledgeBase> parsed =
      path.empty() ? ParseDlgp(kDefaultKb) : LoadDlgpFile(path);
  if (!parsed.ok()) {
    std::cerr << "load error: " << parsed.status() << "\n";
    return 1;
  }
  KnowledgeBase kb = std::move(parsed).value();

  std::cout << "== validation ==\n";
  if (Status status = kb.Validate(); !status.ok()) {
    std::cout << "INVALID: " << status << "\n";
    return 1;
  }
  std::cout << "OK: " << kb.facts().size() << " facts ("
            << kb.facts().NumPositions() << " positions), "
            << kb.tgds().size() << " TGDs (weakly acyclic), "
            << kb.cdds().size() << " CDDs\n";

  std::cout << "\n== chase ==\n";
  StatusOr<ChaseResult> chased =
      RunChase(kb.facts(), kb.tgds(), kb.symbols());
  if (!chased.ok()) {
    std::cerr << "chase failed: " << chased.status() << "\n";
    return 1;
  }
  std::cout << "Cl(F): " << chased->facts().size() << " atoms ("
            << chased->num_derived() << " derived)\n";

  std::cout << "\n== conflicts ==\n";
  ConflictFinder finder(&kb.symbols(), &kb.tgds(), &kb.cdds());
  StatusOr<std::vector<Conflict>> all = finder.AllConflicts(kb.facts());
  if (!all.ok()) {
    std::cerr << "conflict enumeration failed: " << all.status() << "\n";
    return 1;
  }
  const size_t naive = finder.NaiveConflicts(kb.facts()).size();
  const OverlapIndicators ind = ComputeOverlapIndicators(*all);
  std::cout << all->size() << " conflicts (" << naive << " naive, "
            << (all->size() - naive) << " chase-only)\n"
            << "atoms in conflicts: " << ind.atoms_in_conflicts << " ("
            << FormatDouble(100.0 *
                                static_cast<double>(ind.atoms_in_conflicts) /
                                static_cast<double>(
                                    std::max<size_t>(1, kb.facts().size())),
                            1)
            << "% inconsistency ratio)\n"
            << "avg scope: " << FormatDouble(ind.avg_scope, 2)
            << "   avg atoms per overlap: "
            << FormatDouble(ind.avg_atoms_per_overlap, 2) << "\n";

  // Per-CDD violation counts.
  std::map<size_t, size_t> per_cdd;
  for (const Conflict& conflict : *all) ++per_cdd[conflict.cdd_index];
  for (const auto& [cdd, count] : per_cdd) {
    std::cout << "  " << count << "x  "
              << kb.cdds()[cdd].ToString(kb.symbols()) << "\n";
  }

  if (explain) {
    std::cout << "\n== conflict explanations ==\n";
    for (const Conflict& conflict : *all) {
      std::cout << ExplainConflict(conflict, kb.cdds(), kb.facts(),
                                   kb.symbols(), &*chased);
    }
  }
  if (dump_dot) {
    std::cout << "\n== conflict hypergraph (GraphViz) ==\n"
              << ConflictHypergraphToDot(*all, kb.facts(), kb.symbols());
  }

  // Hypergraph hot spots: atoms in the most conflicts.
  std::map<AtomId, size_t> degree;
  for (const Conflict& conflict : *all) {
    for (AtomId id : conflict.support) ++degree[id];
  }
  std::vector<std::pair<size_t, AtomId>> hot;
  for (const auto& [id, d] : degree) hot.emplace_back(d, id);
  std::sort(hot.rbegin(), hot.rend());
  std::cout << "hot spots (top 5 atoms by conflict degree):\n";
  for (size_t i = 0; i < hot.size() && i < 5; ++i) {
    std::cout << "  deg " << hot[i].first << "  "
              << kb.facts().atom(hot[i].second).ToString(kb.symbols())
              << "\n";
  }

  if (!all->empty()) {
    std::cout << "\n== repair estimate (simulated user) ==\n";
    for (Strategy strategy :
         {Strategy::kRandom, Strategy::kOptiJoin, Strategy::kOptiProp,
          Strategy::kOptiMcd}) {
      RandomUser user(1);
      InquiryOptions options;
      options.strategy = strategy;
      options.seed = 1;
      InquiryEngine engine(&kb, options);
      StatusOr<InquiryResult> result = engine.Run(user);
      if (result.ok()) {
        std::cout << "  " << StrategyName(strategy) << ": "
                  << result->num_questions() << " questions, mean delay "
                  << FormatDouble(result->MeanDelaySeconds() * 1e3, 2)
                  << " ms\n";
      } else {
        std::cout << "  " << StrategyName(strategy) << ": "
                  << result.status() << "\n";
      }
    }
  }

  if (run_cqa) {
    std::cout << "\n== consistent query answering (one query per line; "
                 "empty line to stop) ==\n";
    std::string line;
    while (std::getline(std::cin, line) && !line.empty()) {
      StatusOr<ConjunctiveQuery> query = ParseDlgpQuery(line, kb);
      if (!query.ok()) {
        std::cout << "  parse error: " << query.status() << "\n";
        continue;
      }
      StatusOr<CqaResult> cqa = CqaAnswers(*query, kb);
      if (!cqa.ok()) {
        std::cout << "  evaluation error: " << cqa.status() << "\n";
        continue;
      }
      std::cout << "  over " << cqa->num_repairs
                << " minimal null-valued repair(s):\n";
      auto print_tuples = [&](const char* label,
                              const std::vector<AnswerTuple>& tuples) {
        std::cout << "  " << label << " (" << tuples.size() << "):\n";
        for (const AnswerTuple& tuple : tuples) {
          std::cout << "    (";
          for (size_t i = 0; i < tuple.size(); ++i) {
            if (i > 0) std::cout << ", ";
            std::cout << kb.symbols().term_name(tuple[i]);
          }
          std::cout << ")\n";
        }
      };
      print_tuples("consistent answers", cqa->consistent_answers);
      print_tuples("possible answers", cqa->possible_answers);
    }
  }

  if (run_queries) {
    std::cout << "\n== queries (one per line; empty line to stop) ==\n";
    std::string line;
    while (std::getline(std::cin, line) && !line.empty()) {
      StatusOr<ConjunctiveQuery> query = ParseDlgpQuery(line, kb);
      if (!query.ok()) {
        std::cout << "  parse error: " << query.status() << "\n";
        continue;
      }
      StatusOr<QueryAnswers> answers = AnswerQuery(*query, kb);
      if (!answers.ok()) {
        std::cout << "  evaluation error: " << answers.status() << "\n";
        continue;
      }
      if (query->answer_variables.empty()) {
        std::cout << "  " << (answers->boolean_result ? "true" : "false")
                  << "\n";
        continue;
      }
      std::cout << "  " << answers->certain.size()
                << " certain answer(s):\n";
      for (const AnswerTuple& tuple : answers->certain) {
        std::cout << "    (";
        for (size_t i = 0; i < tuple.size(); ++i) {
          if (i > 0) std::cout << ", ";
          std::cout << kb.symbols().term_name(tuple[i]);
        }
        std::cout << ")\n";
      }
    }
  }
  return 0;
}
