// Repairing the Durum Wheat knowledge base (the paper's real-world
// case study, Section 6) with each questioning strategy.
//
// Reconstructs the KB, prints its characteristics table, then runs the
// inquiry with a simulated user under all four strategies and reports
// questions asked, conflicts resolved per question, and delay times.

#include <cstdio>

#include "chase/chase.h"
#include "gen/durum_wheat.h"
#include "repair/conflict.h"
#include "repair/consistency.h"
#include "repair/inquiry.h"
#include "repair/user.h"

int main(int argc, char** argv) {
  using namespace kbrepair;

  const DurumWheatVersion version =
      (argc > 1 && std::string(argv[1]) == "v2") ? DurumWheatVersion::kV2
                                                 : DurumWheatVersion::kV1;
  StatusOr<DurumWheatKb> durum = GenerateDurumWheatKb({version});
  if (!durum.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 durum.status().ToString().c_str());
    return 1;
  }
  KnowledgeBase& kb = durum->kb;

  StatusOr<ChaseResult> chased =
      RunChase(kb.facts(), kb.tgds(), kb.symbols());
  ConflictFinder finder(&kb.symbols(), &kb.tgds(), &kb.cdds());
  StatusOr<std::vector<Conflict>> conflicts =
      finder.AllConflicts(kb.facts());
  if (!chased.ok() || !conflicts.ok()) {
    std::fprintf(stderr, "analysis failed\n");
    return 1;
  }

  std::printf("Durum Wheat %s\n",
              version == DurumWheatVersion::kV1 ? "v1" : "v2");
  std::printf("  facts: %zu   chased: %zu   TGDs: %zu   CDDs: %zu\n",
              kb.facts().size(), chased->facts().size(), kb.tgds().size(),
              kb.cdds().size());
  std::printf("  conflicts: %zu (%zu naive, %zu chase-only)\n",
              conflicts->size(), durum->info.planned_naive_conflicts,
              durum->info.planned_chase_conflicts);

  // A taste of the content, like the paper's excerpt table.
  std::printf("\nSample facts:\n");
  for (AtomId id = 0; id < 3 && id < kb.facts().size(); ++id) {
    std::printf("  %s\n", kb.facts().atom(id).ToString(kb.symbols()).c_str());
  }
  std::printf("Sample TGD:  %s\n",
              kb.tgds().front().ToString(kb.symbols()).c_str());
  std::printf("Sample CDD:  %s\n",
              kb.cdds().front().ToString(kb.symbols()).c_str());

  std::printf("\n%-12s %-12s %-22s %-18s\n", "strategy", "questions",
              "conflicts/question", "mean delay (ms)");
  for (Strategy strategy :
       {Strategy::kRandom, Strategy::kOptiJoin, Strategy::kOptiProp,
        Strategy::kOptiMcd}) {
    RandomUser user(2018);
    InquiryOptions options;
    options.strategy = strategy;
    options.seed = 2018;
    InquiryEngine engine(&kb, options);
    StatusOr<InquiryResult> result = engine.Run(user);
    if (!result.ok()) {
      std::fprintf(stderr, "inquiry failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    ConsistencyChecker checker(&kb.symbols(), &kb.tgds(), &kb.cdds());
    const bool consistent = checker.IsConsistentOpt(result->facts).value();
    std::printf("%-12s %-12zu %-22.2f %-18.2f%s\n", StrategyName(strategy),
                result->num_questions(), result->ConflictsPerQuestion(),
                result->MeanDelaySeconds() * 1e3,
                consistent ? "" : "  [INCONSISTENT!]");
  }
  return 0;
}
