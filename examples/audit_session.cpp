// Auditable repair sessions: record an inquiry's full transcript,
// generate the markdown repair report, then replay the transcript
// against a fresh engine and verify the outcome is reproduced exactly —
// the workflow a data-curation team needs to review and sign off on
// repairs.

#include <iostream>

#include "parser/dlgp_parser.h"
#include "repair/consistency.h"
#include "repair/inquiry.h"
#include "repair/report.h"
#include "repair/session_log.h"
#include "repair/user_models.h"

namespace {

constexpr const char* kKb = R"(
% Figure 1 (b), plus the unrelated mike/penicillin fact.
prescribed(aspirin, john).
hasAllergy(john, aspirin).
hasAllergy(mike, penicillin).
hasPain(john, migraine).
isPainKillerFor(nsaids, migraine).
incompatible(aspirin, nsaids).
[painkillers] prescribed(X, Z) :- isPainKillerFor(X, Y), hasPain(Z, Y).
[allergy] ! :- prescribed(X, Y), hasAllergy(Y, X).
[incompat] ! :- prescribed(X, Z), prescribed(Y, Z), incompatible(X, Y).
)";

}  // namespace

int main() {
  using namespace kbrepair;

  StatusOr<KnowledgeBase> parsed = ParseDlgp(kKb);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.status() << "\n";
    return 1;
  }
  KnowledgeBase kb = std::move(parsed).value();
  if (Status status = kb.Validate(); !status.ok()) {
    std::cerr << "invalid KB: " << status << "\n";
    return 1;
  }

  // --- 1. Run an inquiry while recording the transcript.
  RandomUser steward(2018);
  SessionTranscript transcript;
  TranscriptUser recording(&steward, &transcript);
  InquiryOptions options;
  options.strategy = Strategy::kOptiMcd;
  options.seed = 2018;
  InquiryEngine engine(&kb, options);
  StatusOr<InquiryResult> result = engine.Run(recording);
  if (!result.ok()) {
    std::cerr << "inquiry failed: " << result.status() << "\n";
    return 1;
  }

  // --- 2. The audit report.
  std::cout << GenerateRepairReport(kb, *result, &transcript) << "\n";

  // --- 3. Replay the transcript with a fresh engine; the repair must
  // reproduce bit for bit (up to null renaming).
  ReplayUser replay(&transcript, &kb.symbols());
  InquiryEngine replay_engine(&kb, options);
  StatusOr<InquiryResult> replayed = replay_engine.Run(replay);
  if (!replayed.ok()) {
    std::cerr << "replay failed: " << replayed.status() << "\n";
    return 1;
  }
  const bool identical = EqualUpToNullRenaming(
      replayed->facts, result->facts, kb.symbols());
  std::cout << "## Replay\n\n- replay reproduced the repair: "
            << (identical ? "yes" : "NO — divergence!") << "\n- replayed "
            << replayed->num_questions() << " question(s), transcript "
            << (replay.Finished() ? "fully consumed" : "NOT consumed")
            << "\n";

  ConsistencyChecker checker(&kb.symbols(), &kb.tgds(), &kb.cdds());
  std::cout << "- repaired KB consistent: "
            << (checker.IsConsistentOpt(result->facts).value() ? "yes"
                                                               : "no")
            << "\n";
  return identical ? 0 : 1;
}
