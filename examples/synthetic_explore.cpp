// Exploring the synthetic-workload generator: sweep one knob, watch how
// the KB structure and the repair effort respond. A small CLI over the
// generator used by the benchmark harness.
//
// Usage:
//   synthetic_explore [ratio|depth|size] [strategy]
//
//   ratio: sweep inconsistency ratio 5%..40% at 500 atoms (default)
//   depth: sweep TGD conflict depth 1..4 (100% inconsistent, 300 atoms)
//   size:  sweep KB size 250..2000 atoms at 20% inconsistency

#include <cstdio>
#include <string>

#include "gen/synthetic.h"
#include "repair/conflict.h"
#include "repair/inquiry.h"
#include "repair/user.h"

namespace {

kbrepair::Strategy ParseStrategy(const std::string& name) {
  if (name == "random") return kbrepair::Strategy::kRandom;
  if (name == "opti-join") return kbrepair::Strategy::kOptiJoin;
  if (name == "opti-prop") return kbrepair::Strategy::kOptiProp;
  return kbrepair::Strategy::kOptiMcd;
}

void RunOne(const kbrepair::SyntheticKbOptions& options,
            kbrepair::Strategy strategy, const std::string& label) {
  using namespace kbrepair;
  StatusOr<SyntheticKb> generated = GenerateSyntheticKb(options);
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generated.status().ToString().c_str());
    return;
  }
  KnowledgeBase& kb = generated->kb;
  ConflictFinder finder(&kb.symbols(), &kb.tgds(), &kb.cdds());
  StatusOr<std::vector<Conflict>> conflicts =
      finder.AllConflicts(kb.facts());
  if (!conflicts.ok()) return;
  const OverlapIndicators ind = ComputeOverlapIndicators(*conflicts);

  RandomUser user(7);
  InquiryOptions inquiry_options;
  inquiry_options.strategy = strategy;
  inquiry_options.seed = 7;
  InquiryEngine engine(&kb, inquiry_options);
  StatusOr<InquiryResult> result = engine.Run(user);
  if (!result.ok()) {
    std::fprintf(stderr, "inquiry failed: %s\n",
                 result.status().ToString().c_str());
    return;
  }
  std::printf("%-14s atoms=%-6zu conflicts=%-5zu scope=%-6.1f "
              "questions=%-5zu conflicts/q=%-6.2f meanDelay=%.2fms\n",
              label.c_str(), kb.facts().size(), conflicts->size(),
              ind.avg_scope, result->num_questions(),
              result->ConflictsPerQuestion(),
              result->MeanDelaySeconds() * 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kbrepair;

  const std::string mode = argc > 1 ? argv[1] : "ratio";
  const Strategy strategy = ParseStrategy(argc > 2 ? argv[2] : "opti-mcd");
  std::printf("sweep=%s strategy=%s\n", mode.c_str(),
              StrategyName(strategy));

  SyntheticKbOptions base;
  base.seed = 1;
  base.num_cdds = 12;
  base.cdd_min_atoms = 2;
  base.cdd_max_atoms = 4;
  base.min_arity = 2;
  base.max_arity = 5;
  base.min_multiplicity = 1;
  base.max_multiplicity = 2;

  if (mode == "depth") {
    for (int depth = 1; depth <= 4; ++depth) {
      SyntheticKbOptions options = base;
      options.num_facts = 300;
      options.inconsistency_ratio = 1.0;
      options.num_tgds = static_cast<size_t>(30 * depth);
      options.conflict_depth = depth;
      options.routed_violation_share = 0.5;
      RunOne(options, strategy, "depth=" + std::to_string(depth));
    }
  } else if (mode == "size") {
    for (size_t size : {250u, 500u, 1000u, 2000u}) {
      SyntheticKbOptions options = base;
      options.num_facts = size;
      options.inconsistency_ratio = 0.2;
      RunOne(options, strategy, "size=" + std::to_string(size));
    }
  } else {
    for (double ratio : {0.05, 0.1, 0.2, 0.3, 0.4}) {
      SyntheticKbOptions options = base;
      options.num_facts = 500;
      options.inconsistency_ratio = ratio;
      RunOne(options, strategy,
             "ratio=" + std::to_string(static_cast<int>(100 * ratio)) +
                 "%");
    }
  }
  return 0;
}
