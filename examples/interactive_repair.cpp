// Interactive repair REPL: load a DLGP knowledge base (from a file or
// the built-in hospital example), then answer the engine's questions on
// stdin until the KB is consistent.
//
// Usage:
//   interactive_repair [kb.dlgp] [strategy]
//     strategy: random | opti-join | opti-prop | opti-mcd (default)
//
// Each question lists candidate fixes "(atom, position, new-value)";
// type the number of the fix that is true, or 'q' to abort.

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "parser/dlgp_parser.h"
#include "repair/consistency.h"
#include "repair/inquiry.h"
#include "repair/user.h"

namespace {

constexpr const char* kDefaultKb = R"(
% The paper's running example (Figure 1b).
prescribed(aspirin, john).
hasAllergy(john, aspirin).
hasAllergy(mike, penicillin).
hasPain(john, migraine).
isPainKillerFor(nsaids, migraine).
incompatible(aspirin, nsaids).
prescribed(X, Z) :- isPainKillerFor(X, Y), hasPain(Z, Y).
! :- prescribed(X, Y), hasAllergy(Y, X).
! :- prescribed(X, Z), prescribed(Y, Z), incompatible(X, Y).
)";

// A user that renders questions on stdout and reads choices from stdin.
class ConsoleUser : public kbrepair::User {
 public:
  std::optional<size_t> ChooseFix(const kbrepair::Question& question,
                                  const kbrepair::InquiryView& view) override {
    if (view.cdds != nullptr &&
        question.source_cdd < view.cdds->size()) {
      std::cout << "\nviolated constraint: "
                << (*view.cdds)[question.source_cdd].ToString(*view.symbols)
                << "\n";
    }
    std::cout << "KB: which fix is true from the following set?\n";
    for (size_t i = 0; i < question.fixes.size(); ++i) {
      const kbrepair::Fix& fix = question.fixes[i];
      const kbrepair::Atom& atom = view.facts->atom(fix.atom);
      std::cout << "  [" << i << "] " << atom.ToString(*view.symbols)
                << "  — set argument " << (fix.arg + 1) << " to "
                << view.symbols->term_name(fix.value);
      if (view.symbols->IsNull(fix.value)) {
        std::cout << " (an unknown value)";
      }
      std::cout << "\n";
    }
    while (true) {
      std::cout << "your answer (0-" << question.fixes.size() - 1
                << ", or q to abort): " << std::flush;
      std::string line;
      if (!std::getline(std::cin, line) || line == "q") return std::nullopt;
      std::istringstream stream(line);
      size_t choice = 0;
      if (stream >> choice && choice < question.fixes.size()) {
        return choice;
      }
      std::cout << "  please enter a number in range.\n";
    }
  }
};

kbrepair::Strategy ParseStrategy(const std::string& name) {
  if (name == "random") return kbrepair::Strategy::kRandom;
  if (name == "opti-join") return kbrepair::Strategy::kOptiJoin;
  if (name == "opti-prop") return kbrepair::Strategy::kOptiProp;
  return kbrepair::Strategy::kOptiMcd;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kbrepair;

  std::string text = kDefaultKb;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }
  const Strategy strategy =
      ParseStrategy(argc > 2 ? argv[2] : "opti-mcd");

  StatusOr<KnowledgeBase> parsed = ParseDlgp(text);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.status() << "\n";
    return 1;
  }
  KnowledgeBase kb = std::move(parsed).value();
  if (Status status = kb.Validate(); !status.ok()) {
    std::cerr << "invalid KB: " << status << "\n";
    return 1;
  }

  std::cout << "Loaded KB: " << kb.facts().size() << " facts, "
            << kb.tgds().size() << " TGDs, " << kb.cdds().size()
            << " CDDs. Strategy: " << StrategyName(strategy) << "\n";

  StatusOr<bool> consistent = IsConsistent(kb);
  if (!consistent.ok()) {
    std::cerr << "consistency check failed: " << consistent.status() << "\n";
    return 1;
  }
  if (consistent.value()) {
    std::cout << "The knowledge base is already consistent.\n";
    return 0;
  }

  ConsoleUser user;
  InquiryOptions options;
  options.strategy = strategy;
  InquiryEngine engine(&kb, options);
  StatusOr<InquiryResult> result = engine.Run(user);
  if (!result.ok()) {
    std::cerr << "\ninquiry aborted: " << result.status() << "\n";
    return 1;
  }

  std::cout << "\nConsistency restored after " << result->num_questions()
            << " question(s). Applied fixes:\n";
  for (const Fix& fix : result->applied_fixes) {
    // Render against the original facts (the paper's fix notation).
    std::cout << "  " << fix.ToString(kb.symbols(), kb.facts()) << "\n";
  }
  std::cout << "\nRepaired facts:\n"
            << result->facts.ToString(kb.symbols());
  return 0;
}
